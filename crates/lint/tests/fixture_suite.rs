//! The lint's self-test: run the engine over `tests/fixtures/` — a
//! miniature workspace seeded with one violation per rule edge case — and
//! pin every finding to its exact `file:line`.
//!
//! This is also the regression suite for the two bugs the lexer-based
//! lint fixes over the old awk/grep gate:
//!
//! 1. **comment/string blindness** — decoy `".unwrap("` literals and
//!    `panic!` in comments must produce *zero* findings;
//! 2. **the first-`#[cfg(test)]` early exit** — code after an early test
//!    module must still be scanned (`after_test_module.rs`).

use puffer_lint::{run, Config};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every seeded violation: (file, line, rule).
const EXPECTED: &[(&str, u32, &str)] = &[
    ("crates/badcrate/Cargo.toml", 12, "dep-allowlist"),
    ("crates/badcrate/Cargo.toml", 13, "dep-allowlist"),
    ("crates/badcrate/Cargo.toml", 19, "dep-allowlist"),
    ("crates/dist/src/after_test_module.rs", 23, "dist-no-panic"),
    ("crates/dist/src/after_test_module.rs", 26, "dist-no-instant"),
    ("crates/dist/src/after_test_module.rs", 26, "no-wall-clock-outside-probe"),
    ("crates/dist/src/after_test_module.rs", 29, "dist-no-instant"),
    ("crates/dist/src/after_test_module.rs", 29, "no-wall-clock-outside-probe"),
    ("crates/dist/src/bucket_apply.rs", 17, "bucket-apply-order-pinned"),
    ("crates/dist/src/guard_block.rs", 14, "guard-across-blocking-op"),
    ("crates/dist/src/lock_order.rs", 18, "lock-order-consistency"),
    ("crates/dist/src/lock_order.rs", 24, "lock-order-consistency"),
    ("crates/dist/src/nested_tests.rs", 20, "dist-no-panic"),
    ("crates/dist/src/nested_tests.rs", 30, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 15, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 19, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 24, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 28, "dist-no-panic"),
    ("crates/dist/src/pool_width.rs", 14, "dist-pool-width-via-membership"),
    ("crates/dist/src/reachable.rs", 24, "dist-panic-reachability"),
    ("crates/dist/src/reachable.rs", 25, "dist-panic-reachability"),
    ("crates/other/src/discards.rs", 12, "discarded-result"),
    ("crates/other/src/discards.rs", 16, "discarded-result"),
    ("crates/other/src/float_reduce.rs", 9, "nondeterministic-float-reduction"),
    ("crates/other/src/percentiles.rs", 7, "no-raw-percentile-math"),
    ("crates/other/src/wall_clock.rs", 3, "no-wall-clock-outside-probe"),
    ("crates/other/src/wall_clock.rs", 4, "no-wall-clock-outside-probe"),
    ("crates/other/src/wall_clock.rs", 7, "no-wall-clock-outside-probe"),
    ("crates/other/src/wall_clock.rs", 8, "no-wall-clock-outside-probe"),
    ("crates/tensor/src/matmul.rs", 17, "no-vec-alloc-in-kernel"),
    ("crates/tensor/src/matmul.rs", 21, "no-vec-alloc-in-kernel"),
    ("crates/tensor/src/simd.rs", 21, "simd-needs-feature-gate"),
    ("crates/tensor/src/simd_nodetect.rs", 7, "simd-needs-feature-gate"),
    ("crates/tensor/src/unsafe_blocks.rs", 7, "unsafe-needs-safety-comment"),
    ("crates/tensor/src/unsafe_blocks.rs", 18, "unsafe-needs-safety-comment"),
    ("crates/tensor/src/unsafe_blocks.rs", 30, "unsafe-needs-safety-comment"),
];

#[test]
fn every_seeded_violation_is_reported_at_its_exact_position() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let got: Vec<(String, u32, &str)> =
        report.diagnostics.iter().map(|d| (d.file.clone(), d.line, d.rule)).collect();
    let want: Vec<(String, u32, &str)> =
        EXPECTED.iter().map(|(f, l, r)| (f.to_string(), *l, *r)).collect();
    assert_eq!(got, want, "fixture findings diverged");
}

#[test]
fn decoys_produce_no_findings() {
    // panics.rs seeds its decoys (strings, comments, raw strings) in the
    // first 12 lines; nothing there may be flagged.
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.ends_with("panics.rs") && d.line < 14),
        "a decoy was flagged: {:?}",
        report.diagnostics
    );
    // And the probe fixture (raw Instant inside crates/probe) stays clean.
    assert!(!report.diagnostics.iter().any(|d| d.file.contains("probe")));
}

#[test]
fn awk_gate_regression_code_after_early_test_module_is_scanned() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let after: Vec<_> =
        report.diagnostics.iter().filter(|d| d.file.ends_with("after_test_module.rs")).collect();
    // The early test module ends on line 20; every finding sits below it —
    // exactly the region the awk gate never scanned.
    assert!(!after.is_empty(), "post-test-module code was not scanned");
    assert!(after.iter().all(|d| d.line > 20));
}

#[test]
fn pool_width_fixture_flags_only_the_unexempted_mutation() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let pool: Vec<_> =
        report.diagnostics.iter().filter(|d| d.rule == "dist-pool-width-via-membership").collect();
    // pool_width.rs seeds one live violation plus three exempt call sites
    // (string decoy, lint:allow, #[cfg(test)]); membership.rs — the module
    // that owns the pool width — must stay clean.
    assert_eq!(pool.len(), 1, "{pool:?}");
    assert!(pool[0].file.ends_with("pool_width.rs"));
    assert!(!report.diagnostics.iter().any(|d| d.file.ends_with("membership.rs")));
}

#[test]
fn bucket_apply_fixture_flags_only_the_unpinned_accumulation() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let apply: Vec<_> =
        report.diagnostics.iter().filter(|d| d.rule == "bucket-apply-order-pinned").collect();
    // bucket_apply.rs seeds one live violation plus four exempt sites
    // (comment/string decoys, plain store, indexed read, lint:allow,
    // #[cfg(test)]); the pinned owners bucket.rs/ring.rs never appear.
    assert_eq!(apply.len(), 1, "{apply:?}");
    assert!(apply[0].file.ends_with("bucket_apply.rs"));
}

#[test]
fn seeded_deep_unwrap_reports_its_full_call_chain_in_json() {
    // The acceptance case for dist-panic-reachability: reachable.rs seeds
    // an `.unwrap()` three calls below `Trainer::run` (run → round →
    // pack_refs → deep_unwrap), and the chain must survive into the
    // `--json` document verbatim.
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let unwrap_finding = report
        .diagnostics
        .iter()
        .find(|d| d.file.ends_with("reachable.rs") && d.message.contains("`.unwrap()`"))
        .expect("seeded deep unwrap not found");
    assert_eq!(unwrap_finding.rule, "dist-panic-reachability");
    assert_eq!(unwrap_finding.line, 25);
    assert!(
        unwrap_finding.message.contains("run → round → pack_refs → deep_unwrap"),
        "call chain missing from finding: {}",
        unwrap_finding.message
    );
    let json = report.to_json();
    assert!(
        json.contains("run → round → pack_refs → deep_unwrap"),
        "call chain missing from --json output"
    );
}

#[test]
fn semantic_fixtures_honor_allows_and_test_exemption() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    // reachable.rs: the allowed slice access (line 27) and the test-module
    // unwrap stay silent; only the two seeded sites fire.
    assert_eq!(report.diagnostics.iter().filter(|d| d.file.ends_with("reachable.rs")).count(), 2);
    // lock_order.rs: the c/d pair reverses like a/b but both sides carry
    // allows, and the test module's reversal is exempt — only a/b fires.
    let lock: Vec<_> =
        report.diagnostics.iter().filter(|d| d.file.ends_with("lock_order.rs")).collect();
    assert_eq!(lock.len(), 2, "{lock:?}");
    assert!(lock.iter().all(|d| d.line < 26), "suppressed c/d pair leaked: {lock:?}");
    // guard_block.rs / float_reduce.rs / discards.rs: exactly the
    // unsuppressed non-test sites from EXPECTED, nothing else.
    for (file, n) in [("guard_block.rs", 1), ("float_reduce.rs", 1), ("discards.rs", 2)] {
        assert_eq!(
            report.diagnostics.iter().filter(|d| d.file.ends_with(file)).count(),
            n,
            "{file} finding count"
        );
    }
}

#[test]
fn reachability_dedupes_the_plain_no_panic_finding() {
    // reachable.rs line 25 is an unwrap in dist non-test code: both
    // dist-no-panic and dist-panic-reachability match, but the report
    // keeps only the chain-carrying reachability finding.
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.file.ends_with("reachable.rs") && d.rule == "dist-no-panic"),
        "dist-no-panic finding not deduped against dist-panic-reachability"
    );
}

#[test]
fn rules_filter_restricts_findings() {
    let mut config = Config::new(fixtures_root());
    config.rules = Some(BTreeSet::from(["dep-allowlist".to_string()]));
    let report = run(&config).expect("fixture scan");
    assert_eq!(report.diagnostics.len(), 3);
    assert!(report.diagnostics.iter().all(|d| d.rule == "dep-allowlist"));

    config.rules = Some(BTreeSet::from(["unsafe-needs-safety-comment".to_string()]));
    let report = run(&config).expect("fixture scan");
    assert_eq!(report.diagnostics.len(), 3);
    assert!(report.diagnostics.iter().all(|d| d.file.ends_with("unsafe_blocks.rs")));
}

#[test]
fn design_doc_rule_table_matches_the_published_catalog() {
    // DESIGN.md §8's rule table and `rules::RULES` must name exactly the
    // same rules — the doc is the human half of the catalog, and a rule
    // added to one but not the other is a broken contract either way.
    let design_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("DESIGN.md");
    let design = std::fs::read_to_string(&design_path).expect("read DESIGN.md");
    let section = design
        .split("## 8.")
        .nth(1)
        .and_then(|rest| rest.split("\n## ").next())
        .expect("DESIGN.md §8 missing");
    let documented: BTreeSet<&str> = section
        .lines()
        .filter(|l| l.starts_with("| `"))
        .filter_map(|l| l.trim_start_matches("| `").split('`').next())
        .collect();
    let published: BTreeSet<&str> = puffer_lint::RULES.iter().map(|r| r.name).collect();
    assert_eq!(documented, published, "DESIGN.md §8 rule table out of sync with rules::RULES");
}

#[test]
fn scan_counts_cover_the_fixture_tree() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    assert_eq!(report.files_scanned, 19, "fixture .rs census changed");
    assert_eq!(report.manifests_scanned, 1, "fixture manifest census changed");
    assert!(!report.is_clean());
}
