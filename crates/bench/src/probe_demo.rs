//! Shared logic behind the `trace_demo` binary: a small faulty 4-worker
//! run of a Pufferfish *hybrid* model (dense + low-rank layers) with the
//! probe collecting, so the resulting Chrome trace shows every layer of
//! the stack at once — tensor-pool kernel chunks on the `puffer-pool-*`
//! threads, `nn` forward/backward/optimizer spans, the `dist` round
//! phases (compute/encode/allreduce/decode/apply — the Fig.-4 bins, with
//! the comm phase named after its collective), and structured fault
//! events with worker/step attribution.
//!
//! The demo lives in the library (not the binary) so the schema test can
//! run the exact same workload in memory and validate the trace it
//! renders.

use puffer_compress::none::NoCompression;
use puffer_dist::cost::ClusterProfile;
use puffer_dist::fault::FaultPlan;
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, DistOutcome, RunOptions};
use puffer_nn::activation::Relu;
use puffer_nn::linear::{Linear, LowRankLinear};
use puffer_nn::Sequential;
use puffer_probe as probe;
use puffer_tensor::{pool, Tensor};

/// Seed for the demo's model init, data, and fault sites.
pub const DEMO_SEED: u64 = 17;

/// Workers in the demo cluster.
pub const DEMO_WORKERS: usize = 4;

/// Steps the demo trains for.
pub const DEMO_STEPS: usize = 6;

/// The hybrid demo network: a dense first layer (the paper keeps early
/// layers full-rank) followed by a factorized middle layer.
fn demo_model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(12, 32, true, seed).expect("demo linear")),
        Box::new(Relu::new()),
        Box::new(LowRankLinear::new(32, 32, 4, true, seed + 1).expect("demo low-rank")),
        Box::new(Relu::new()),
        Box::new(Linear::new(32, 4, true, seed + 2).expect("demo head")),
    ])
}

fn demo_batches() -> Vec<(Tensor, Vec<usize>)> {
    (0..DEMO_STEPS)
        .map(|b| {
            let x = Tensor::randn(&[16, 12], 1.0, DEMO_SEED + 100 + b as u64);
            let labels = (0..16).map(|i| (i + b) % 4).collect();
            (x, labels)
        })
        .collect()
}

/// The demo's fault schedule: one straggler, one dropped-then-resent
/// message, one non-finite gradient (skipped step), one corrupted
/// message, and one worker crash — at least five distinct fault event
/// types on the trace.
pub fn demo_faults() -> FaultPlan {
    FaultPlan::new(DEMO_SEED)
        .with_slowdown(1, 2.5)
        .with_drop(2, 1)
        .with_nonfinite(0, 2)
        .with_corrupt(3, 1)
        .with_crash(3, 4)
}

/// What [`run_trace_demo`] produced, for the caller's summary.
pub struct DemoReport {
    /// The training run's outcome (breakdown, losses, fault report).
    pub outcome: DistOutcome,
    /// Steps the run executed.
    pub steps: usize,
    /// Workers the run started with.
    pub workers: usize,
}

/// Runs the demo workload. The probe must already be configured
/// (collecting); the caller flushes or drains the events afterwards.
///
/// # Panics
///
/// Panics if the training run itself errors — the injected faults are all
/// within what the trainer degrades through gracefully.
pub fn run_trace_demo() -> DemoReport {
    // Kernel warm-up at an explicit pool width: guarantees the trace shows
    // tensor-pool worker occupancy (`puffer-pool-*` thread lanes) even on
    // single-core machines, where the pool would otherwise stay inline.
    let prior_width = pool::num_threads();
    pool::set_num_threads(DEMO_WORKERS);
    {
        let _sp = probe::span("demo", "warmup_gemm");
        let a = Tensor::randn(&[128, 128], 1.0, DEMO_SEED + 1);
        let b = Tensor::randn(&[128, 128], 1.0, DEMO_SEED + 2);
        let _ = puffer_tensor::matmul::matmul(&a, &b).expect("warmup gemm");
    }

    let cfg = DistConfig {
        workers: DEMO_WORKERS,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(DEMO_WORKERS),
    };
    // Stamp the run header so the exported trace/metrics are
    // self-describing (and insight can reconcile against the configured
    // α–β profile). PUFFER_* env knobs ride along.
    probe::run_header(&[
        ("bench", "trace_demo".into()),
        ("seed", DEMO_SEED.into()),
        ("workers", DEMO_WORKERS.into()),
        ("steps", DEMO_STEPS.into()),
        ("scheme", "none".into()),
        ("alpha", cfg.profile.alpha.into()),
        ("beta", cfg.profile.beta.into()),
    ]);
    probe::run_header_env();
    let opts = RunOptions { faults: demo_faults(), ..RunOptions::default() };
    let mut comp = NoCompression::new();
    let data = demo_batches();
    let outcome = {
        let _sp = probe::span("demo", "faulty_hybrid_run");
        train_data_parallel_with(|_| demo_model(DEMO_SEED), &data, &mut comp, &cfg, &opts)
            .expect("the demo's faults must degrade gracefully, not abort")
    };
    pool::set_num_threads(prior_width);
    DemoReport { outcome, steps: data.len(), workers: DEMO_WORKERS }
}
