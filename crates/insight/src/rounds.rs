//! Per-round reconstruction: span trees, critical paths, and
//! compute/comm/straggler bound classification.
//!
//! The dist trainer stamps every phase span with its `step`, the comm
//! span with its collective name and `(nodes, bytes)` and each
//! `worker_compute` span with its worker id, so a full synchronous round
//! can be reassembled from the trace alone:
//!
//! ```text
//! round(step) = compute(slowest worker) → encode → allreduce → decode → apply
//! ```
//!
//! The **critical path** of a round is that chain with the slowest worker
//! identified by its measured compute *plus* any injected straggler delay
//! (the `straggler_delay` fault event carries `delay_us`; the trainer
//! sleeps it *after* closing the compute span, so the analyzer re-adds it
//! exactly as the aggregator's `slowest = max(compute)` saw it).
//!
//! **Overlapped rounds** (the bucketed trainer path) emit one collective
//! span *per bucket*, each stamped with `exposed_ns` — the share of its
//! modeled time not hidden under still-running backward. The analyzer
//! accumulates them: `comm_us` is the round's total modeled wire time,
//! `comm_exposed_us` the part that actually extended the round past the
//! compute phase. Classification and the critical path use the exposed
//! figure so hidden comm is never double-counted against compute; traces
//! without the `exposed_ns` arg (pre-overlap runs) expose everything.
//!
//! The **bound rule** (documented in DESIGN.md §12):
//! 1. a skipped round (non-finite guard) is `Skipped` — no round played;
//! 2. else, if ≥2 workers reported and the slowest exceeds
//!    [`STRAGGLER_FACTOR`] × the median, the round is `Straggler` —
//!    the cluster is not network-bound, one machine is;
//! 3. else, if *exposed* modeled comm ≥ the compute phase, the round is
//!    `Comm`;
//! 4. else `Compute`.

use crate::ingest::{num, RunData};
use std::collections::BTreeMap;

/// A round is straggler-bound when its slowest worker exceeds this factor
/// times the median worker compute.
pub const STRAGGLER_FACTOR: f64 = 1.5;

/// What dominates a round's wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Gradient computation dominates.
    Compute,
    /// The collective (α–β modeled wire time) dominates.
    Comm,
    /// One worker's outlier compute dominates (slowdown fault or skew).
    Straggler,
    /// The non-finite guard skipped the round; only compute was paid.
    Skipped,
}

impl Bound {
    /// Lower-case label used in reports and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Comm => "comm",
            Bound::Straggler => "straggler",
            Bound::Skipped => "skipped",
        }
    }
}

/// One observed collective span — one bucket's worth of modeled comm on
/// the overlapped path, the whole round's on the classic path. The α–β
/// fitter consumes these directly so every bucket size contributes its
/// own operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct CommObs {
    /// Span name (`"allreduce"`, `"tree_allreduce"`, `"hier_allreduce"`,
    /// `"allgather"`).
    pub collective: String,
    /// Participant count the span was priced at.
    pub nodes: u64,
    /// Hierarchical intra-group size, when the span stamped one.
    pub group: Option<u64>,
    /// Bytes each worker put on the wire for this span.
    pub bytes_per_worker: f64,
    /// Modeled duration (µs).
    pub dur_us: f64,
}

/// One link of a round's critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Phase name (`"compute"`, `"encode"`, `"allreduce"`, ...).
    pub phase: String,
    /// The worker the phase ran on (`None` for aggregator-side phases).
    pub worker: Option<u64>,
    /// Phase duration in microseconds.
    pub dur_us: f64,
}

/// One reconstructed synchronization round.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Global step index.
    pub step: u64,
    /// Participant count the comm phase was priced at.
    pub nodes: u64,
    /// Aggregator-side wall-clock of the whole round (µs).
    pub round_us: f64,
    /// Whether the non-finite guard skipped this round.
    pub skipped: bool,
    /// Per-worker compute (µs), straggler delay included.
    pub worker_compute_us: BTreeMap<u64, f64>,
    /// The worker on the critical path (slowest compute), if workers
    /// reported.
    pub slowest_worker: Option<u64>,
    /// The round's compute phase: the aggregator's `max(compute)` (µs).
    pub compute_us: f64,
    /// Encode phase (µs).
    pub encode_us: f64,
    /// Modeled collective time, all buckets summed (µs).
    pub comm_us: f64,
    /// The share of `comm_us` exposed past the compute phase (µs); equals
    /// `comm_us` on unoverlapped rounds.
    pub comm_exposed_us: f64,
    /// Collective that priced the comm phase (`"allreduce"`,
    /// `"tree_allreduce"`, `"hier_allreduce"`, or `"allgather"`).
    pub collective: Option<String>,
    /// Every collective span of the round, in trace order (one per bucket
    /// on the overlapped path).
    pub comm_obs: Vec<CommObs>,
    /// Bytes each worker put on the wire.
    pub bytes_per_worker: f64,
    /// Total encoded bytes across workers.
    pub bytes: f64,
    /// Decode phase (µs).
    pub decode_us: f64,
    /// Slowest worker-side apply of the broadcast mean (µs).
    pub apply_us: f64,
    /// The worker with the slowest apply.
    pub apply_worker: Option<u64>,
    /// Fault event names attributed to this step (sorted, deduplicated).
    pub faults: Vec<String>,
    /// The compute→encode→collective→decode→apply chain, slowest owners
    /// attributed.
    pub critical_path: Vec<PathSegment>,
    /// Bound classification (see the module docs for the rule).
    pub bound: Bound,
}

impl Round {
    /// The longest segment of the critical path.
    #[must_use]
    pub fn critical_phase(&self) -> Option<&PathSegment> {
        self.critical_path
            .iter()
            .max_by(|a, b| a.dur_us.partial_cmp(&b.dur_us).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[derive(Default)]
struct Builder {
    nodes: Option<u64>,
    round_us: f64,
    skipped: bool,
    worker_compute_us: BTreeMap<u64, f64>,
    compute_us: f64,
    encode_us: f64,
    comm_us: f64,
    comm_exposed_us: f64,
    collective: Option<String>,
    comm_obs: Vec<CommObs>,
    bytes_per_worker: f64,
    bytes: f64,
    decode_us: f64,
    apply: BTreeMap<u64, f64>,
    faults: Vec<String>,
}

/// Lower median: for an even count this takes the lower of the two middle
/// elements, so a 2-worker round can still flag its slower half as the
/// straggler (the upper median would equal the slowest and the rule could
/// never fire).
fn median_of(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(sorted.len() - 1) / 2]
}

/// Reconstructs every round recorded in `rd`, sorted by step.
#[must_use]
pub fn extract_rounds(rd: &RunData) -> Vec<Round> {
    let mut builders: BTreeMap<u64, Builder> = BTreeMap::new();
    for sp in &rd.spans {
        if sp.cat != "dist" {
            continue;
        }
        let Some(step) = num(&sp.args, "step").map(|s| s as u64) else {
            continue;
        };
        let b = builders.entry(step).or_default();
        match sp.name.as_str() {
            "round" => {
                b.round_us = sp.dur_us;
                if let Some(live) = num(&sp.args, "live") {
                    b.nodes.get_or_insert(live as u64);
                }
            }
            "worker_compute" => {
                if let Some(w) = num(&sp.args, "worker") {
                    *b.worker_compute_us.entry(w as u64).or_insert(0.0) += sp.dur_us;
                }
            }
            "compute" => {
                b.compute_us = sp.dur_us;
                if num(&sp.args, "skipped").is_some() {
                    b.skipped = true;
                }
            }
            "encode" => b.encode_us = sp.dur_us,
            "decode" => b.decode_us = sp.dur_us,
            "apply" => {
                if let Some(w) = num(&sp.args, "worker") {
                    *b.apply.entry(w as u64).or_insert(0.0) += sp.dur_us;
                }
            }
            "allreduce" | "allgather" | "tree_allreduce" | "hier_allreduce" => {
                // Accumulate: the overlapped path emits one span per
                // bucket, the classic path exactly one per round.
                b.comm_us += sp.dur_us;
                b.comm_exposed_us +=
                    num(&sp.args, "exposed_ns").map_or(sp.dur_us, |ns| ns / 1_000.0);
                b.collective = Some(sp.name.clone());
                let bpw = num(&sp.args, "bytes_per_worker").unwrap_or(0.0);
                b.bytes_per_worker += bpw;
                b.bytes += num(&sp.args, "bytes").unwrap_or(0.0);
                let nodes = num(&sp.args, "nodes");
                if let Some(n) = nodes {
                    b.nodes = Some(n as u64);
                }
                b.comm_obs.push(CommObs {
                    collective: sp.name.clone(),
                    nodes: nodes.map_or(0, |n| n as u64),
                    group: num(&sp.args, "group").map(|g| g as u64),
                    bytes_per_worker: bpw,
                    dur_us: sp.dur_us,
                });
            }
            _ => {}
        }
    }
    // Straggler delays happen after the worker_compute span closes; re-add
    // them so the analyzer sees the same per-worker totals the aggregator
    // timed. Then attach every fault event to its step.
    for inst in &rd.instants {
        if inst.cat != "fault" {
            continue;
        }
        let Some(step) = num(&inst.args, "step").map(|s| s as u64) else {
            continue;
        };
        let Some(b) = builders.get_mut(&step) else {
            continue;
        };
        if inst.name == "straggler_delay" {
            if let (Some(w), Some(d)) = (num(&inst.args, "worker"), num(&inst.args, "delay_us")) {
                *b.worker_compute_us.entry(w as u64).or_insert(0.0) += d;
            }
        }
        if !b.faults.contains(&inst.name) {
            b.faults.push(inst.name.clone());
        }
    }

    builders
        .into_iter()
        .map(|(step, b)| {
            let slowest_worker = b
                .worker_compute_us
                .iter()
                .max_by(|a, c| a.1.partial_cmp(c.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(w, _)| *w);
            let apply_worker = b
                .apply
                .iter()
                .max_by(|a, c| a.1.partial_cmp(c.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(w, _)| *w);
            let apply_us = apply_worker.and_then(|w| b.apply.get(&w)).copied().unwrap_or(0.0);
            let mut faults = b.faults;
            faults.sort();

            let bound = if b.skipped {
                Bound::Skipped
            } else {
                let mut computes: Vec<f64> = b.worker_compute_us.values().copied().collect();
                computes.sort_by(|a, c| a.partial_cmp(c).unwrap_or(std::cmp::Ordering::Equal));
                let median = median_of(&computes);
                let slowest = computes.last().copied().unwrap_or(0.0);
                if computes.len() >= 2 && median > 0.0 && slowest > STRAGGLER_FACTOR * median {
                    Bound::Straggler
                } else if b.comm_exposed_us >= b.compute_us {
                    // Only the *exposed* share competes with compute:
                    // comm hidden under backward already cost its time
                    // inside the compute phase.
                    Bound::Comm
                } else {
                    Bound::Compute
                }
            };

            let mut critical_path = vec![PathSegment {
                phase: "compute".to_string(),
                worker: slowest_worker,
                dur_us: b.compute_us,
            }];
            if !b.skipped {
                critical_path.push(PathSegment {
                    phase: "encode".to_string(),
                    worker: None,
                    dur_us: b.encode_us,
                });
                critical_path.push(PathSegment {
                    phase: b.collective.clone().unwrap_or_else(|| "comm".to_string()),
                    worker: None,
                    // The wall-clock chain only ever sees the exposed
                    // share; the hidden share ran under `compute`.
                    dur_us: b.comm_exposed_us,
                });
                critical_path.push(PathSegment {
                    phase: "decode".to_string(),
                    worker: None,
                    dur_us: b.decode_us,
                });
                if apply_worker.is_some() {
                    critical_path.push(PathSegment {
                        phase: "apply".to_string(),
                        worker: apply_worker,
                        dur_us: apply_us,
                    });
                }
            }

            let nodes = b.nodes.unwrap_or(b.worker_compute_us.len() as u64);
            let mut comm_obs = b.comm_obs;
            for o in &mut comm_obs {
                if o.nodes == 0 {
                    o.nodes = nodes;
                }
            }
            Round {
                step,
                nodes,
                round_us: b.round_us,
                skipped: b.skipped,
                worker_compute_us: b.worker_compute_us,
                slowest_worker,
                compute_us: b.compute_us,
                encode_us: b.encode_us,
                comm_us: b.comm_us,
                comm_exposed_us: b.comm_exposed_us,
                collective: b.collective,
                comm_obs,
                bytes_per_worker: b.bytes_per_worker,
                bytes: b.bytes,
                decode_us: b.decode_us,
                apply_us,
                apply_worker,
                faults,
                critical_path,
                bound,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{Args, SpanRec};
    use puffer_probe::json::Json;

    fn args(pairs: &[(&str, f64)]) -> Args {
        pairs.iter().map(|(k, v)| ((*k).to_string(), Json::Num(*v))).collect()
    }

    fn span(name: &str, dur_us: f64, a: Args) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            cat: "dist".to_string(),
            ts_us: 0.0,
            dur_us,
            tid: 1,
            args: a,
        }
    }

    fn round_spans(step: f64, computes: &[f64], comm: f64) -> Vec<SpanRec> {
        let mut spans =
            vec![span("round", 1000.0, args(&[("step", step), ("live", computes.len() as f64)]))];
        let mut slowest = 0.0f64;
        for (w, &c) in computes.iter().enumerate() {
            spans.push(span("worker_compute", c, args(&[("worker", w as f64), ("step", step)])));
            slowest = slowest.max(c);
        }
        spans.push(span("compute", slowest, args(&[("step", step)])));
        spans.push(span("encode", 5.0, args(&[("step", step)])));
        spans.push(span(
            "allreduce",
            comm,
            args(&[
                ("step", step),
                ("nodes", computes.len() as f64),
                ("bytes", 4000.0),
                ("bytes_per_worker", 1000.0),
            ]),
        ));
        spans.push(span("decode", 4.0, args(&[("step", step)])));
        for w in 0..computes.len() {
            spans.push(span(
                "apply",
                2.0 + w as f64,
                args(&[("worker", w as f64), ("step", step)]),
            ));
        }
        spans
    }

    #[test]
    fn classifies_compute_comm_and_straggler_rounds() {
        let mut rd = RunData::default();
        // step 0: balanced compute 100µs each, comm 20µs → compute-bound.
        rd.spans.extend(round_spans(0.0, &[100.0, 100.0, 100.0, 100.0], 20.0));
        // step 1: balanced compute 50µs, comm 300µs → comm-bound.
        rd.spans.extend(round_spans(1.0, &[50.0, 50.0, 50.0, 50.0], 300.0));
        // step 2: worker 2 at 5× the median → straggler-bound.
        rd.spans.extend(round_spans(2.0, &[100.0, 100.0, 500.0, 100.0], 300.0));
        let rounds = extract_rounds(&rd);
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[0].bound, Bound::Compute);
        assert_eq!(rounds[1].bound, Bound::Comm);
        assert_eq!(rounds[2].bound, Bound::Straggler);
        assert_eq!(rounds[2].slowest_worker, Some(2));
        assert_eq!(rounds[0].nodes, 4);
        assert_eq!(rounds[0].collective.as_deref(), Some("allreduce"));
        // Critical phase: compute at step 0, the collective at step 1.
        assert_eq!(rounds[0].critical_phase().unwrap().phase, "compute");
        assert_eq!(rounds[1].critical_phase().unwrap().phase, "allreduce");
        // The critical path chain covers all five phases with owners.
        let phases: Vec<&str> = rounds[0].critical_path.iter().map(|s| s.phase.as_str()).collect();
        assert_eq!(phases, vec!["compute", "encode", "allreduce", "decode", "apply"]);
        assert_eq!(rounds[0].critical_path[0].worker, rounds[0].slowest_worker);
        assert_eq!(rounds[0].apply_worker, Some(3), "slowest apply owner attributed");
    }

    #[test]
    fn overlapped_rounds_accumulate_buckets_and_classify_on_exposed_comm() {
        let mut rd = RunData::default();
        rd.spans.push(span("round", 1000.0, args(&[("step", 0.0), ("live", 2.0)])));
        for w in 0..2 {
            rd.spans.push(span(
                "worker_compute",
                100.0,
                args(&[("worker", w as f64), ("step", 0.0)]),
            ));
        }
        rd.spans.push(span("compute", 100.0, args(&[("step", 0.0)])));
        rd.spans.push(span("encode", 5.0, args(&[("step", 0.0)])));
        // Three bucket spans: 300µs of modeled comm, only 40µs exposed.
        for (i, (dur, exposed_us)) in [(100.0, 0.0), (150.0, 10.0), (50.0, 30.0)].iter().enumerate()
        {
            rd.spans.push(span(
                "tree_allreduce",
                *dur,
                args(&[
                    ("step", 0.0),
                    ("nodes", 2.0),
                    ("bytes", 2000.0),
                    ("bytes_per_worker", 1000.0),
                    ("bucket", i as f64),
                    ("exposed_ns", exposed_us * 1000.0),
                ]),
            ));
        }
        rd.spans.push(span("decode", 4.0, args(&[("step", 0.0)])));
        let rounds = extract_rounds(&rd);
        assert_eq!(rounds.len(), 1);
        let r = &rounds[0];
        assert_eq!(r.comm_us, 300.0, "total modeled comm sums the buckets");
        assert_eq!(r.comm_exposed_us, 40.0, "exposed comm sums exposed_ns");
        assert_eq!(r.bytes_per_worker, 3000.0);
        assert_eq!(r.bytes, 6000.0);
        assert_eq!(r.collective.as_deref(), Some("tree_allreduce"));
        assert_eq!(r.comm_obs.len(), 3);
        assert_eq!(r.comm_obs[1].dur_us, 150.0);
        assert_eq!(r.comm_obs[0].nodes, 2);
        // 300µs of comm but only 40µs exposed vs 100µs compute: the round
        // is compute-bound — hidden comm must not flip it.
        assert_eq!(r.bound, Bound::Compute);
        let coll = r.critical_path.iter().find(|s| s.phase == "tree_allreduce").unwrap();
        assert_eq!(coll.dur_us, 40.0, "critical path carries only exposed comm");
    }

    #[test]
    fn straggler_delay_events_are_readded_to_worker_compute() {
        let mut rd = RunData::default();
        // Worker 1's span measured 100µs but a 150µs injected delay makes
        // it the 2.5× straggler the aggregator actually waited for.
        rd.spans.extend(round_spans(0.0, &[100.0, 100.0], 50.0));
        rd.instants.push(crate::ingest::InstantRec {
            name: "straggler_delay".to_string(),
            cat: "fault".to_string(),
            ts_us: 0.0,
            tid: 1,
            args: args(&[("worker", 1.0), ("step", 0.0), ("delay_us", 150.0)]),
        });
        let rounds = extract_rounds(&rd);
        assert_eq!(rounds[0].worker_compute_us[&1], 250.0);
        assert_eq!(rounds[0].bound, Bound::Straggler);
        assert_eq!(rounds[0].slowest_worker, Some(1));
        assert_eq!(rounds[0].faults, vec!["straggler_delay".to_string()]);
    }

    #[test]
    fn skipped_rounds_short_circuit() {
        let mut rd = RunData::default();
        rd.spans.push(span("round", 100.0, args(&[("step", 0.0), ("live", 2.0)])));
        rd.spans.push(span("compute", 80.0, args(&[("step", 0.0), ("skipped", 1.0)])));
        let rounds = extract_rounds(&rd);
        assert_eq!(rounds[0].bound, Bound::Skipped);
        assert!(rounds[0].skipped);
        assert_eq!(rounds[0].critical_path.len(), 1, "skipped rounds end at compute");
    }
}
