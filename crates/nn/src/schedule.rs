//! Learning-rate schedules used by the paper's recipes.

/// A learning-rate schedule: a map from epoch index to learning rate.
pub trait LrSchedule {
    /// Learning rate to use during `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Piecewise-constant decay: multiply by `factor` at each milestone.
///
/// The paper's CIFAR recipe decays 0.1× at epochs 150 and 250 of 300; the
/// ImageNet recipe at epochs 30, 60 and 80 of 90 (appendix I).
#[derive(Debug, Clone)]
pub struct StepDecay {
    base_lr: f32,
    milestones: Vec<usize>,
    factor: f32,
}

impl StepDecay {
    /// Creates a step-decay schedule.
    pub fn new(base_lr: f32, milestones: Vec<usize>, factor: f32) -> Self {
        StepDecay { base_lr, milestones, factor }
    }

    /// The paper's CIFAR-10 schedule: lr 0.1, ×0.1 at epochs 150 and 250.
    pub fn cifar() -> Self {
        Self::new(0.1, vec![150, 250], 0.1)
    }

    /// The paper's ImageNet schedule: lr 0.1, ×0.1 at epochs 30, 60, 80.
    pub fn imagenet() -> Self {
        Self::new(0.1, vec![30, 60, 80], 0.1)
    }
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.factor.powi(passed as i32)
    }
}

/// Linear warm-up from `start_lr` to `peak_lr` over `warmup_epochs`, then
/// delegates to an inner schedule. Used in the paper's large-batch CIFAR
/// runs (0.1 → 1.6 over 5 epochs, following Goyal et al. 2017).
#[derive(Debug, Clone)]
pub struct LinearWarmup<S> {
    start_lr: f32,
    peak_lr: f32,
    warmup_epochs: usize,
    inner: S,
}

impl<S: LrSchedule> LinearWarmup<S> {
    /// Creates a warm-up wrapper around `inner`.
    pub fn new(start_lr: f32, peak_lr: f32, warmup_epochs: usize, inner: S) -> Self {
        LinearWarmup { start_lr, peak_lr, warmup_epochs, inner }
    }
}

impl<S: LrSchedule> LrSchedule for LinearWarmup<S> {
    fn lr_at(&self, epoch: usize) -> f32 {
        if self.warmup_epochs > 0 && epoch < self.warmup_epochs {
            let t = epoch as f32 / self.warmup_epochs as f32;
            self.start_lr + t * (self.peak_lr - self.start_lr)
        } else {
            self.inner.lr_at(epoch)
        }
    }
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f32);

impl LrSchedule for Constant {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Decay-on-plateau controller for the LSTM recipe: lr starts at `base_lr`
/// and is multiplied by `factor` whenever validation loss fails to improve
/// (paper: lr 20, ×0.25 on plateau). Stateful — drive it with
/// [`PlateauDecay::observe`].
#[derive(Debug, Clone)]
pub struct PlateauDecay {
    lr: f32,
    factor: f32,
    best: f32,
}

impl PlateauDecay {
    /// Creates a plateau controller.
    pub fn new(base_lr: f32, factor: f32) -> Self {
        PlateauDecay { lr: base_lr, factor, best: f32::INFINITY }
    }

    /// The paper's WikiText-2 LSTM controller (lr 20, ×0.25 on plateau).
    pub fn lstm_default() -> Self {
        Self::new(20.0, 0.25)
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Scales the learning rate by an external factor (the paper halves the
    /// LSTM lr at the warm-up → low-rank switch).
    pub fn scale_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    /// Feeds a validation loss; decays the lr if it did not improve.
    /// Returns the lr to use next epoch.
    pub fn observe(&mut self, val_loss: f32) -> f32 {
        if val_loss < self.best {
            self.best = val_loss;
        } else {
            self.lr *= self.factor;
        }
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_decay_milestones() {
        let s = StepDecay::cifar();
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(149), 0.1);
        assert!((s.lr_at(150) - 0.01).abs() < 1e-8);
        assert!((s.lr_at(250) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn imagenet_schedule() {
        let s = StepDecay::imagenet();
        assert_eq!(s.lr_at(29), 0.1);
        assert!((s.lr_at(30) - 0.01).abs() < 1e-8);
        assert!((s.lr_at(60) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(80) - 0.0001).abs() < 1e-10);
    }

    #[test]
    fn warmup_interpolates_then_delegates() {
        let s = LinearWarmup::new(0.1, 1.6, 5, StepDecay::new(1.6, vec![150], 0.1));
        assert_eq!(s.lr_at(0), 0.1);
        assert!((s.lr_at(4) - (0.1 + 0.8 * 1.5)).abs() < 1e-6);
        assert_eq!(s.lr_at(5), 1.6);
        assert!((s.lr_at(150) - 0.16).abs() < 1e-6);
    }

    #[test]
    fn plateau_decays_only_without_improvement() {
        let mut p = PlateauDecay::new(20.0, 0.25);
        assert_eq!(p.observe(5.0), 20.0); // improved
        assert_eq!(p.observe(4.0), 20.0); // improved
        assert_eq!(p.observe(4.5), 5.0); // plateau → decay
        assert_eq!(p.observe(3.0), 5.0); // improved again
        p.scale_lr(0.5);
        assert_eq!(p.lr(), 2.5);
    }

    #[test]
    fn constant_is_constant() {
        let c = Constant(0.01);
        assert_eq!(c.lr_at(0), c.lr_at(1000));
    }
}
