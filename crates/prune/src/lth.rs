//! Lottery Ticket Hypothesis iterative magnitude pruning with weight
//! rewinding (Frankle & Carbin 2018).

use puffer_nn::layer::Layer;
use puffer_tensor::Tensor;

/// Sparsity masks plus the initial weights needed for rewinding.
///
/// Masks cover exactly the parameters with
/// [`puffer_nn::Param::apply_weight_decay`] set (weight tensors); biases
/// and normalization affines are never pruned, matching the open-source
/// LTH implementation the paper uses.
#[derive(Debug, Clone)]
pub struct LotteryState {
    masks: Vec<Option<Vec<bool>>>,
    init_values: Vec<Tensor>,
}

impl LotteryState {
    /// Captures the initialization of a freshly built model.
    pub fn capture<M: Layer>(model: &M) -> Self {
        let params = model.params();
        LotteryState {
            masks: params
                .iter()
                .map(|p| p.apply_weight_decay.then(|| vec![true; p.len()]))
                .collect(),
            init_values: params.iter().map(|p| p.value.clone()).collect(),
        }
    }

    /// Number of surviving (unmasked) prunable weights.
    pub fn surviving(&self) -> usize {
        self.masks.iter().flatten().map(|m| m.iter().filter(|&&b| b).count()).sum()
    }

    /// Total prunable weights.
    pub fn prunable(&self) -> usize {
        self.masks.iter().flatten().map(Vec::len).sum()
    }

    /// Current sparsity (fraction pruned) in `[0, 1]`.
    pub fn sparsity(&self) -> f32 {
        let total = self.prunable();
        if total == 0 {
            0.0
        } else {
            1.0 - self.surviving() as f32 / total as f32
        }
    }

    /// Globally prunes `fraction` of the *surviving* weights by smallest
    /// magnitude (the standard per-round LTH rule, e.g. 0.2).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn prune_global<M: Layer>(&mut self, model: &M, fraction: f32) {
        assert!(fraction > 0.0 && fraction < 1.0, "prune fraction must be in (0, 1)");
        // Collect magnitudes of surviving weights.
        let params = model.params();
        let mut mags: Vec<f32> = Vec::new();
        for (p, mask) in params.iter().zip(&self.masks) {
            if let Some(m) = mask {
                for (v, &keep) in p.value.as_slice().iter().zip(m) {
                    if keep {
                        mags.push(v.abs());
                    }
                }
            }
        }
        if mags.is_empty() {
            return;
        }
        let k = ((mags.len() as f32 * fraction) as usize).min(mags.len() - 1);
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let threshold = mags[k];
        // Kill surviving weights strictly below the threshold (plus enough
        // at the threshold to approximate k, handled by <=-first-come).
        let mut to_kill = k;
        for (p, mask) in params.iter().zip(&mut self.masks) {
            if let Some(m) = mask {
                for (v, keep) in p.value.as_slice().iter().zip(m.iter_mut()) {
                    if *keep && to_kill > 0 && v.abs() <= threshold {
                        *keep = false;
                        to_kill -= 1;
                    }
                }
            }
        }
    }

    /// Rewinds surviving weights to their captured initial values and zeroes
    /// pruned ones ("winning ticket" reset).
    pub fn rewind<M: Layer>(&self, model: &mut M) {
        for ((p, mask), init) in
            model.params_mut().into_iter().zip(&self.masks).zip(&self.init_values)
        {
            match mask {
                None => {} // bias/BN: keep current values? LTH resets them too.
                Some(m) => {
                    for ((w, &keep), &w0) in
                        p.value.as_mut_slice().iter_mut().zip(m).zip(init.as_slice())
                    {
                        *w = if keep { w0 } else { 0.0 };
                    }
                }
            }
            if mask.is_none() {
                p.value = init.clone();
            }
        }
    }

    /// Applies masks to weights and gradients (call after every optimizer
    /// step so pruned weights stay dead).
    pub fn enforce<M: Layer>(&self, model: &mut M) {
        for (p, mask) in model.params_mut().into_iter().zip(&self.masks) {
            if let Some(m) = mask {
                for (w, &keep) in p.value.as_mut_slice().iter_mut().zip(m) {
                    if !keep {
                        *w = 0.0;
                    }
                }
                for (g, &keep) in p.grad.as_mut_slice().iter_mut().zip(m) {
                    if !keep {
                        *g = 0.0;
                    }
                }
            }
        }
    }

    /// Remaining parameter count of the whole model (pruned weights
    /// excluded, unprunable parameters included) — the x-axis of Figure 5.
    pub fn effective_params<M: Layer>(&self, model: &M) -> usize {
        let unprunable: usize = model
            .params()
            .iter()
            .zip(&self.masks)
            .filter(|(_, m)| m.is_none())
            .map(|(p, _)| p.len())
            .sum();
        unprunable + self.surviving()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_nn::activation::Relu;
    use puffer_nn::linear::Linear;
    use puffer_nn::{Mode, Sequential};
    use puffer_tensor::Tensor;

    fn mlp() -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, true, 1).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, true, 2).unwrap()),
        ])
    }

    #[test]
    fn capture_masks_only_weights() {
        let m = mlp();
        let state = LotteryState::capture(&m);
        // Two weight matrices prunable: 32 + 16 = 48; biases excluded.
        assert_eq!(state.prunable(), 48);
        assert_eq!(state.surviving(), 48);
        assert_eq!(state.sparsity(), 0.0);
        assert_eq!(state.effective_params(&m), m.param_count());
    }

    #[test]
    fn prune_removes_smallest_fraction() {
        let m = mlp();
        let mut state = LotteryState::capture(&m);
        state.prune_global(&m, 0.25);
        let surv = state.surviving();
        assert!((surv as i32 - 36).abs() <= 1, "survivors {surv}");
        // Iterative: another 25% of survivors.
        state.prune_global(&m, 0.25);
        assert!(state.surviving() < surv);
    }

    #[test]
    fn pruned_weights_are_smallest_by_magnitude() {
        let mut m = mlp();
        let mut state = LotteryState::capture(&m);
        state.prune_global(&m, 0.5);
        state.enforce(&mut m);
        // The max |w| among zeroed (pruned) positions must be <= min |w|
        // among survivors — use the masks to check.
        let params = m.params();
        let mut max_pruned = 0.0f32;
        let mut min_kept = f32::INFINITY;
        for (p, mask) in params.iter().zip(&state.masks) {
            if let Some(mask) = mask {
                for (w, &keep) in p.value.as_slice().iter().zip(mask) {
                    if keep {
                        min_kept = min_kept.min(w.abs());
                    }
                }
            }
        }
        // After enforce, pruned weights are exactly zero.
        for (p, mask) in params.iter().zip(&state.masks) {
            if let Some(mask) = mask {
                for (w, &keep) in p.value.as_slice().iter().zip(mask) {
                    if !keep {
                        max_pruned = max_pruned.max(w.abs());
                    }
                }
            }
        }
        assert_eq!(max_pruned, 0.0);
        assert!(min_kept > 0.0);
    }

    #[test]
    fn rewind_restores_survivors() {
        let mut m = mlp();
        let state0 = LotteryState::capture(&m);
        // "Train": perturb all weights.
        for p in m.params_mut() {
            p.value.map_inplace(|w| w + 1.0);
        }
        let mut state = state0.clone();
        state.prune_global(&m, 0.3);
        state.rewind(&mut m);
        // Survivors equal init, pruned are zero.
        for ((p, mask), init) in m.params().iter().zip(&state.masks).zip(&state.init_values) {
            if let Some(mask) = mask {
                for ((w, &keep), w0) in p.value.as_slice().iter().zip(mask).zip(init.as_slice()) {
                    if keep {
                        assert_eq!(w, w0);
                    } else {
                        assert_eq!(*w, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn enforce_keeps_gradients_masked() {
        let mut m = mlp();
        let mut state = LotteryState::capture(&m);
        state.prune_global(&m, 0.5);
        let x = Tensor::randn(&[3, 4], 1.0, 3);
        let _ = m.forward(&x, Mode::Train);
        let _ = m.backward(&Tensor::ones(&[3, 2]));
        state.enforce(&mut m);
        for (p, mask) in m.params().iter().zip(&state.masks) {
            if let Some(mask) = mask {
                for (g, &keep) in p.grad.as_slice().iter().zip(mask) {
                    if !keep {
                        assert_eq!(*g, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn effective_params_tracks_sparsity() {
        let m = mlp();
        let mut state = LotteryState::capture(&m);
        let before = state.effective_params(&m);
        state.prune_global(&m, 0.5);
        let after = state.effective_params(&m);
        assert!(after < before);
        assert_eq!(before - after, state.prunable() - state.surviving());
    }
}
