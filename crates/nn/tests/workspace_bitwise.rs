//! Satellite guarantee for the scratch-arena workspace: pooled execution
//! is **bitwise identical** to fresh-allocation execution. Recycled
//! buffers are zeroed (or fully overwritten) before use, and buffer reuse
//! never changes reduction order, so toggling the pool must not move a
//! single bit — for matmul, convolution and LSTM, at 1, 2 and 4 worker
//! threads (the programmatic form of `PUFFER_NUM_THREADS`), with the
//! parallel threshold forced to zero so the threaded kernels run even at
//! property-test sizes.

use proptest::prelude::*;
use puffer_nn::conv::Conv2d;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::lstm::{GateRank, LstmLayer};
use puffer_tensor::{matmul, pool, workspace, Tensor};
use std::sync::Mutex;

/// Workspace enablement, the pool size and the parallel threshold are all
/// process-global; every test in this binary serializes on this lock.
static GLOBAL: Mutex<()> = Mutex::new(());

const THREAD_GRID: [usize; 3] = [1, 2, 4];

/// Runs `f` with the workspace disabled (every buffer freshly allocated)
/// and then pooled on a deliberately dirtied arena, at each thread count,
/// returning `(threads, fresh, pooled)` triples for comparison.
fn fresh_vs_pooled(f: impl Fn() -> Vec<Tensor>) -> Vec<(usize, Vec<Tensor>, Vec<Tensor>)> {
    let _guard = GLOBAL.lock().unwrap();
    let prev_threads = pool::num_threads();
    let prev_threshold = matmul::parallel_threshold();
    matmul::set_parallel_threshold(0);
    let mut out = Vec::new();
    for &t in &THREAD_GRID {
        pool::set_num_threads(t);
        workspace::set_enabled(false);
        let fresh = f();
        workspace::set_enabled(true);
        // Leave stale garbage in the calling thread's arena so a pooled
        // buffer that skipped its zeroing would be caught.
        workspace::clear_thread_arena();
        drop(Tensor::full(&[1 << 12], f32::NAN));
        let pooled = f();
        out.push((t, fresh, pooled));
    }
    workspace::set_enabled(true);
    matmul::set_parallel_threshold(prev_threshold);
    pool::set_num_threads(prev_threads);
    out
}

fn assert_bitwise(runs: Vec<(usize, Vec<Tensor>, Vec<Tensor>)>) -> Result<(), TestCaseError> {
    for (threads, fresh, pooled) in runs {
        prop_assert_eq!(fresh.len(), pooled.len());
        for (i, (a, b)) in fresh.iter().zip(&pooled).enumerate() {
            prop_assert_eq!(
                a.shape(),
                b.shape(),
                "shape drift at tensor {} ({} threads)",
                i,
                threads
            );
            for (j, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "bit drift at tensor {} element {} ({} threads): {} vs {}",
                    i,
                    j,
                    threads,
                    x,
                    y
                );
            }
        }
    }
    Ok(())
}

fn tensor2(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn matmul_pooled_matches_fresh(
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = Tensor::randn(&[m, k], 1.0, seed);
        let b = Tensor::randn(&[k, n], 1.0, seed + 1);
        assert_bitwise(fresh_vs_pooled(|| {
            let c = matmul::matmul(&a, &b).unwrap();
            let ct = matmul::matmul_tn(&a, &c).unwrap();
            let cn = matmul::matmul_nt(&c, &b).unwrap();
            vec![c, ct, cn]
        }))?;
    }

    #[test]
    fn conv_pooled_matches_fresh(x in tensor2(2, 3 * 5 * 5), seed in 0u64..1000) {
        let x = x.reshape(&[2, 3, 5, 5]).unwrap();
        assert_bitwise(fresh_vs_pooled(|| {
            let mut conv = Conv2d::new(3, 4, 3, 1, 1, true, seed).unwrap();
            let y = conv.forward(&x, Mode::Train);
            let dx = conv.backward(&Tensor::ones(y.shape()));
            let mut grads: Vec<Tensor> =
                conv.params().iter().map(|p| p.grad.clone()).collect();
            grads.push(y);
            grads.push(dx);
            grads
        }))?;
    }

    #[test]
    fn lstm_pooled_matches_fresh(
        x0 in tensor2(2, 4),
        x1 in tensor2(2, 4),
        x2 in tensor2(2, 4),
        seed in 0u64..1000,
    ) {
        let xs = [x0, x1, x2];
        assert_bitwise(fresh_vs_pooled(|| {
            let mut lstm = LstmLayer::new(4, 5, GateRank::Full, seed).unwrap();
            let hs = lstm.forward_seq(&xs);
            let dhs: Vec<Tensor> = hs.iter().map(|h| Tensor::ones(h.shape())).collect();
            let dxs = lstm.backward_seq(&dhs);
            let mut out: Vec<Tensor> =
                lstm.params().iter().map(|p| p.grad.clone()).collect();
            out.extend(hs);
            out.extend(dxs);
            out
        }))?;
    }
}
