//! Shared building units for the CNN model zoo: conv/BN/ReLU units that are
//! either dense or factorized, plus the SVD warm-start surgery that converts
//! a trained dense unit into its low-rank twin (paper §3, Algorithm 1).

use puffer_nn::conv::{Conv2d, LowRankConv2d};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::linear::{Linear, LowRankLinear};
use puffer_nn::norm::BatchNorm2d;
use puffer_nn::param::Param;
use puffer_nn::Result;
use puffer_tensor::svd::truncated_svd_seeded;
use puffer_tensor::Tensor;

/// How a factorized layer is initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorInit {
    /// Truncated SVD of the current dense weight
    /// (`U = Ũ Σ^½`, `Vᵀ = Σ^½ Ṽᵀ`) — Pufferfish's vanilla warm-up.
    WarmStart,
    /// Fresh random factors — the "train low-rank from scratch" baseline.
    Random(u64),
}

/// Factorizes a dense convolution into a [`LowRankConv2d`] at `rank`.
///
/// # Errors
///
/// Propagates construction errors (rank out of range).
pub fn factorize_conv(conv: &Conv2d, rank: usize, init: FactorInit) -> Result<LowRankConv2d> {
    let (c_in, c_out, k, stride, padding) = conv.geometry();
    match init {
        FactorInit::Random(seed) => LowRankConv2d::new(c_in, c_out, k, stride, padding, rank, seed),
        FactorInit::WarmStart => {
            let unrolled = conv.unrolled_weight(); // (c_in k², c_out)
            let f = truncated_svd_seeded(&unrolled, rank, 0x5EED)?;
            let (u, vt) = f.split_balanced(); // u: (c_in k², r), vt: (r, c_out)
            let u4 = u.transpose().reshape(&[rank, c_in, k, k]).expect("factor element count");
            let v2 = vt.transpose(); // (c_out, r)
            LowRankConv2d::from_factors(u4, v2, stride, padding)
        }
    }
}

/// Factorizes a dense FC layer into a [`LowRankLinear`] at `rank`,
/// carrying the bias over unchanged.
///
/// # Errors
///
/// Propagates construction errors (rank out of range).
pub fn factorize_linear(layer: &Linear, rank: usize, init: FactorInit) -> Result<LowRankLinear> {
    match init {
        FactorInit::Random(seed) => {
            let mut lr = LowRankLinear::new(
                layer.in_features(),
                layer.out_features(),
                rank,
                layer.bias().is_some(),
                seed,
            )?;
            // Random factors, but keep the (possibly trained) bias.
            if let (Some(b), Some(p)) = (layer.bias(), lr.params_mut().pop()) {
                p.value = b.clone();
            }
            Ok(lr)
        }
        FactorInit::WarmStart => {
            let f = truncated_svd_seeded(layer.weight(), rank, 0x5EED)?;
            let (u, vt) = f.split_balanced();
            LowRankLinear::from_factors(u, vt, layer.bias().cloned())
        }
    }
}

/// A convolution that is either dense or factorized.
///
/// The variants intentionally differ in size: ConvKind values live inside
/// long-lived model structs, so boxing the larger one would only add an
/// indirection on the hot forward path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ConvKind {
    /// Full-rank convolution.
    Dense(Conv2d),
    /// Pufferfish-factorized convolution.
    LowRank(LowRankConv2d),
}

impl ConvKind {
    /// `(c_in, c_out, k, stride, padding)`.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        match self {
            ConvKind::Dense(c) => c.geometry(),
            ConvKind::LowRank(c) => c.geometry(),
        }
    }

    /// Whether this conv is factorized.
    pub fn is_low_rank(&self) -> bool {
        matches!(self, ConvKind::LowRank(_))
    }
}

impl Layer for ConvKind {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match self {
            ConvKind::Dense(c) => c.forward(input, mode),
            ConvKind::LowRank(c) => c.forward(input, mode),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match self {
            ConvKind::Dense(c) => c.backward(grad_output),
            ConvKind::LowRank(c) => c.backward(grad_output),
        }
    }

    fn params(&self) -> Vec<&Param> {
        match self {
            ConvKind::Dense(c) => c.params(),
            ConvKind::LowRank(c) => c.params(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            ConvKind::Dense(c) => c.params_mut(),
            ConvKind::LowRank(c) => c.params_mut(),
        }
    }

    fn describe(&self) -> String {
        match self {
            ConvKind::Dense(c) => c.describe(),
            ConvKind::LowRank(c) => c.describe(),
        }
    }
}

/// A conv → BN → optional ReLU unit, the repeated motif of VGG and ResNet.
#[derive(Debug)]
pub struct ConvBnUnit {
    /// The convolution (dense or factorized).
    pub conv: ConvKind,
    /// The batch normalization following it.
    pub bn: BatchNorm2d,
    /// Whether a ReLU follows BN (residual blocks apply ReLU after the add).
    pub relu: bool,
    relu_mask: Option<Vec<bool>>,
}

impl ConvBnUnit {
    /// Creates a dense unit.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors from the conv or BN.
    pub fn dense(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        padding: usize,
        relu: bool,
        seed: u64,
    ) -> Result<Self> {
        Ok(ConvBnUnit {
            conv: ConvKind::Dense(Conv2d::new(c_in, c_out, k, stride, padding, false, seed)?),
            bn: BatchNorm2d::new(c_out)?,
            relu,
            relu_mask: None,
        })
    }

    /// Creates a unit from explicit parts.
    pub fn from_parts(conv: ConvKind, bn: BatchNorm2d, relu: bool) -> Self {
        ConvBnUnit { conv, bn, relu, relu_mask: None }
    }

    /// Deep-copies a dense unit (weights, BN state). Hybrid conversion uses
    /// this for the layers below `K` that stay full-rank.
    ///
    /// # Errors
    ///
    /// Returns an error if the unit is already factorized.
    pub fn clone_dense(&self) -> Result<Self> {
        match &self.conv {
            ConvKind::Dense(c) => {
                let (_, _, _, stride, padding) = c.geometry();
                let conv = Conv2d::from_weight(c.weight().clone(), stride, padding)?;
                let mut bn = BatchNorm2d::new(self.bn.channels())?;
                bn.load_state(&self.bn.state())?;
                Ok(ConvBnUnit::from_parts(ConvKind::Dense(conv), bn, self.relu))
            }
            ConvKind::LowRank(_) => Err(puffer_nn::NnError::BadConfig {
                layer: "ConvBnUnit",
                reason: "cannot deep-copy an already-factorized unit".into(),
            }),
        }
    }

    /// Converts this unit into a factorized twin at `rank`, carrying the BN
    /// state over (the paper's warm-start copies BN weights and running
    /// statistics, §3).
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn to_low_rank(&self, rank: usize, init: FactorInit) -> Result<Self> {
        let conv = match &self.conv {
            ConvKind::Dense(c) => factorize_conv(c, rank, init)?,
            ConvKind::LowRank(_) => {
                // Already factorized: deep-copy by reusing the factors.
                return Err(puffer_nn::NnError::BadConfig {
                    layer: "ConvBnUnit",
                    reason: "unit is already low-rank".into(),
                });
            }
        };
        let mut bn = BatchNorm2d::new(self.bn.channels())?;
        bn.load_state(&self.bn.state())?;
        Ok(ConvBnUnit { conv: ConvKind::LowRank(conv), bn, relu: self.relu, relu_mask: None })
    }
}

impl Layer for ConvBnUnit {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let x = self.conv.forward(input, mode);
        let mut y = self.bn.forward(&x, mode);
        if self.relu {
            if mode == Mode::Train {
                self.relu_mask = Some(y.as_slice().iter().map(|&v| v > 0.0).collect());
            }
            y.map_inplace(|v| v.max(0.0));
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let g = if self.relu {
            let mask = self.relu_mask.as_ref().expect("backward before train-mode forward");
            let mut g = grad_output.clone();
            for (gv, &m) in g.as_mut_slice().iter_mut().zip(mask) {
                if !m {
                    *gv = 0.0;
                }
            }
            g
        } else {
            grad_output.clone()
        };
        let g = self.bn.backward(&g);
        self.conv.backward(&g)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.conv.params();
        v.extend(self.bn.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.conv.params_mut();
        v.extend(self.bn.params_mut());
        v
    }

    fn describe(&self) -> String {
        format!("{}+BN{}", self.conv.describe(), if self.relu { "+ReLU" } else { "" })
    }

    fn buffers(&self) -> Vec<Tensor> {
        self.bn.buffers()
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        self.bn.load_buffers(buffers);
    }
}

/// An FC layer that is either dense or factorized.
#[derive(Debug)]
pub enum FcKind {
    /// Full-rank FC.
    Dense(Linear),
    /// Factorized FC.
    LowRank(LowRankLinear),
}

impl FcKind {
    /// Converts a dense FC into a factorized twin.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; errors if already factorized.
    pub fn to_low_rank(&self, rank: usize, init: FactorInit) -> Result<Self> {
        match self {
            FcKind::Dense(l) => Ok(FcKind::LowRank(factorize_linear(l, rank, init)?)),
            FcKind::LowRank(_) => Err(puffer_nn::NnError::BadConfig {
                layer: "FcKind",
                reason: "layer is already low-rank".into(),
            }),
        }
    }

    /// `(in_features, out_features)`.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            FcKind::Dense(l) => (l.in_features(), l.out_features()),
            // Param order is [u (out×r), vt (r×in), bias?].
            FcKind::LowRank(l) => (l.params()[1].value.shape()[1], l.params()[0].value.shape()[0]),
        }
    }

    /// Whether this FC is factorized.
    pub fn is_low_rank(&self) -> bool {
        matches!(self, FcKind::LowRank(_))
    }
}

impl Layer for FcKind {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match self {
            FcKind::Dense(l) => l.forward(input, mode),
            FcKind::LowRank(l) => l.forward(input, mode),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match self {
            FcKind::Dense(l) => l.backward(grad_output),
            FcKind::LowRank(l) => l.backward(grad_output),
        }
    }

    fn params(&self) -> Vec<&Param> {
        match self {
            FcKind::Dense(l) => l.params(),
            FcKind::LowRank(l) => l.params(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            FcKind::Dense(l) => l.params_mut(),
            FcKind::LowRank(l) => l.params_mut(),
        }
    }

    fn describe(&self) -> String {
        match self {
            FcKind::Dense(l) => l.describe(),
            FcKind::LowRank(l) => l.describe(),
        }
    }
}

/// Rounds `channels × ratio` to a rank, clamping to the valid range
/// `[1, min(c_in·k², c_out)]`. The paper uses `ratio = 0.25` everywhere.
pub fn rank_for(channels: usize, ratio: f32, max: usize) -> usize {
    (((channels as f32) * ratio).round() as usize).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::stats::rel_error;

    #[test]
    fn warm_start_conv_approximates_dense() {
        let dense = Conv2d::new(4, 8, 3, 1, 1, false, 1).unwrap();
        // Full-rank warm start reproduces the dense conv exactly.
        let lr = factorize_conv(&dense, 8, FactorInit::WarmStart).unwrap();
        let x = Tensor::randn(&[2, 4, 5, 5], 1.0, 2);
        let mut d = dense;
        let mut l = lr;
        let yd = d.forward(&x, Mode::Eval);
        let yl = l.forward(&x, Mode::Eval);
        assert!(rel_error(&yd, &yl) < 1e-3, "{}", rel_error(&yd, &yl));
    }

    #[test]
    fn warm_start_beats_random_at_matching_dense() {
        let dense = Conv2d::new(4, 8, 3, 1, 1, false, 3).unwrap();
        let warm = factorize_conv(&dense, 4, FactorInit::WarmStart).unwrap();
        let cold = factorize_conv(&dense, 4, FactorInit::Random(9)).unwrap();
        let x = Tensor::randn(&[2, 4, 5, 5], 1.0, 4);
        let mut d = dense;
        let yd = d.forward(&x, Mode::Eval);
        let mut warm = warm;
        let mut cold = cold;
        let ew = rel_error(&yd, &warm.forward(&x, Mode::Eval));
        let ec = rel_error(&yd, &cold.forward(&x, Mode::Eval));
        assert!(ew < ec, "warm {ew} vs cold {ec}");
    }

    #[test]
    fn warm_start_linear_full_rank_exact() {
        let dense = Linear::new(6, 4, true, 5).unwrap();
        let lr = factorize_linear(&dense, 4, FactorInit::WarmStart).unwrap();
        let x = Tensor::randn(&[3, 6], 1.0, 6);
        let mut d = dense;
        let mut l = lr;
        assert!(rel_error(&d.forward(&x, Mode::Eval), &l.forward(&x, Mode::Eval)) < 1e-3);
    }

    #[test]
    fn conv_bn_unit_forward_backward() {
        let mut unit = ConvBnUnit::dense(3, 8, 3, 1, 1, true, 7).unwrap();
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, 8);
        let y = unit.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 6, 6]);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0)); // post-ReLU
        let g = unit.backward(&Tensor::ones(&[2, 8, 6, 6]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn unit_to_low_rank_carries_bn_state() {
        let mut unit = ConvBnUnit::dense(3, 8, 3, 1, 1, true, 9).unwrap();
        // Train a few steps so BN accumulates statistics.
        for s in 0..5 {
            let x = Tensor::randn(&[4, 3, 6, 6], 2.0, s);
            let _ = unit.forward(&x, Mode::Train);
        }
        let lr = unit.to_low_rank(2, FactorInit::WarmStart).unwrap();
        assert!(lr.conv.is_low_rank());
        assert_eq!(lr.bn.state(), unit.bn.state());
        // Double factorization is rejected.
        assert!(lr.to_low_rank(2, FactorInit::WarmStart).is_err());
    }

    #[test]
    fn fc_kind_round_trip() {
        let dense = FcKind::Dense(Linear::new(8, 4, true, 11).unwrap());
        assert!(!dense.is_low_rank());
        assert_eq!(dense.dims(), (8, 4));
        let lr = dense.to_low_rank(2, FactorInit::Random(1)).unwrap();
        assert!(lr.is_low_rank());
        assert_eq!(lr.dims(), (8, 4));
        assert!(lr.to_low_rank(2, FactorInit::Random(1)).is_err());
    }

    #[test]
    fn rank_for_clamps() {
        assert_eq!(rank_for(64, 0.25, 64), 16);
        assert_eq!(rank_for(2, 0.25, 64), 1);
        assert_eq!(rank_for(1000, 0.25, 64), 64);
    }
}
