//! **Figure 4(b)**: per-epoch breakdown and end-to-end convergence for
//! vanilla SGD, PowerSGD (rank 2), Signum, and Pufferfish — ResNet-18 on
//! CIFAR-10, 8-node cluster.
//!
//! Shape under reproduction (paper §4.2): PowerSGD has the *smallest
//! communication* but pays encode/decode; Pufferfish has no codec cost and
//! lower compute, so its **overall** epoch time wins:
//! 1.33× vs PowerSGD, 1.67× vs Signum, 1.92× vs vanilla.

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_compress::signum::Signum;
use puffer_compress::GradCompressor;
use puffer_dist::breakdown::measure_sequential_epoch;
use puffer_dist::cost::ClusterProfile;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use pufferfish::trainer::ImageModel;

const NODES: usize = 8;

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let profile = ClusterProfile::p3_like(NODES);
    let epochs = scale.pick(2, 4);
    let batches = data.train_batches(32, 0);
    println!("== Figure 4(b): ResNet-18 / CIFAR-10 breakdown, {NODES} nodes ==\n");

    let mut t = Table::new(vec![
        "method",
        "compute s/epoch",
        "encode+decode",
        "comm (modeled)",
        "total",
        "final loss",
    ]);
    let mut totals: Vec<(&str, f64)> = Vec::new();
    for method in ["vanilla-sgd", "powersgd-r2", "signum", "pufferfish"] {
        let mut model: ImageModel = match method {
            "pufferfish" => setups::resnet18(10, 1)
                .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart)
                .expect("hybrid")
                .into(),
            _ => setups::resnet18(10, 1).into(),
        };
        let mut vanilla_c;
        let mut power_c;
        let mut signum_c;
        let compressor: &mut dyn GradCompressor = match method {
            "powersgd-r2" => {
                power_c = PowerSgd::new(2, 7);
                &mut power_c
            }
            "signum" => {
                signum_c = Signum::new(0.9);
                &mut signum_c
            }
            _ => {
                vanilla_c = NoCompression::new();
                &mut vanilla_c
            }
        };
        let mut last = Default::default();
        let mut loss = f32::NAN;
        for _ in 0..epochs {
            let (bd, l) =
                measure_sequential_epoch(&mut model, &batches, NODES, compressor, &profile, 0.05)
                    .expect("epoch");
            last = bd;
            loss = l;
        }
        t.row(vec![
            method.into(),
            format!("{:.3}", last.compute.as_secs_f64()),
            format!("{:.3}", (last.encode + last.decode).as_secs_f64()),
            format!("{:.4}", last.comm.as_secs_f64()),
            format!("{:.3}", last.total().as_secs_f64()),
            format!("{loss:.3}"),
        ]);
        totals.push((method, last.total().as_secs_f64()));
        record_result(
            "fig4b_breakdown",
            &format!(
                "{method}: compute {:.3} codec {:.3} comm {:.4} total {:.3} loss {loss:.3}",
                last.compute.as_secs_f64(),
                (last.encode + last.decode).as_secs_f64(),
                last.comm.as_secs_f64(),
                last.total().as_secs_f64()
            ),
        );
    }
    t.print();
    let get = |m: &str| totals.iter().find(|(x, _)| *x == m).unwrap().1;
    let p = get("pufferfish");
    println!("\nper-epoch speedups of pufferfish: vs powersgd {:.2}x (paper 1.33x), vs signum {:.2}x (paper 1.67x), vs vanilla {:.2}x (paper 1.92x)",
        get("powersgd-r2") / p, get("signum") / p, get("vanilla-sgd") / p);
    println!("note: PowerSGD should show the smallest comm column but nonzero codec cost.");
}
