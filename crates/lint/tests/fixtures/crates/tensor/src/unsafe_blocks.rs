//! Fixture: unsafe-needs-safety-comment. Good and bad forms side by side.

struct SendPtr(*mut f32);

// SAFETY: only disjoint regions are ever dereferenced.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {} // line 7: flagged — needs its own comment

// SAFETY: caller guarantees `p` points at `len` initialized floats; a
// multi-line run still counts as one justification.
pub unsafe fn documented(p: *const f32, len: usize) -> f32 {
    // SAFETY: bounds were just asserted by the contract above.
    let s = unsafe { std::slice::from_raw_parts(p, len) };
    s.iter().sum()
}

pub fn undocumented(p: *mut f32) {
    unsafe {
        // line 18: flagged — the comment is inside, not preceding
        *p = 1.0;
    }
}

/* SAFETY: block-comment form is accepted too. */
pub fn block_comment_ok(p: *mut f32) {
    let _ = p;
}

pub fn tail_without_comment(p: *mut f32) {
    let _v = unsafe { *p }; // line 30: flagged
}
