//! Gradient-compression baselines for the Pufferfish reproduction.
//!
//! The paper compares Pufferfish against gradient-compression methods that
//! operate on the *gradients* of a full-rank model:
//!
//! * [`powersgd`] — PowerSGD (Vogels et al. 2019): rank-`r` power-iteration
//!   factorization with error feedback and warm-started query matrices;
//!   allreduce-compatible.
//! * [`signum`] — SignSGD with majority vote / Signum (Bernstein et al.
//!   2018): 1 bit per coordinate of the momentum, **not** allreduce-
//!   compatible (allgather), as the paper emphasizes in §4.2.
//! * [`topk`] — Top-k sparsification with error feedback (allgather).
//! * [`quant`] — stochastic binary quantization (Suresh et al. 2016), the
//!   appendix-F case study whose decompression cost scales with the number
//!   of workers.
//! * [`atomo`] — ATOMO-style per-step spectral (SVD) compression (Wang et
//!   al. 2018), the intro's motivating example of prohibitive per-batch
//!   compression compute.
//! * [`none`] — uncompressed baseline (vanilla allreduce SGD).
//! * [`pack`] — flat-buffer packing: the paper's implementation-level
//!   optimization of issuing **one** allreduce per iteration over a single
//!   flattened gradient buffer (§4.1).
//!
//! Every method implements [`GradCompressor::round`], which plays one
//! synchronization round: it consumes each worker's per-layer gradients and
//! returns the aggregated gradient every worker decodes, along with
//! measured encode/decode times and the exact message size in bytes (fed to
//! the `puffer-dist` communication cost model).
//!
//! The linear-algebra-heavy compressors — PowerSGD's power iteration /
//! Gram–Schmidt orthogonalization and ATOMO's per-step SVD — run on
//! `puffer-tensor`'s threaded cache-blocked SIMD GEMM, so their measured
//! encode/decode times reflect a genuinely optimized compute side rather
//! than a single-threaded strawman (the comparison the paper's §4.2 and
//! Fig. 6 hinge on). Thread count never changes their numerical output.

pub mod atomo;
pub mod none;
pub mod pack;
pub mod powersgd;
pub mod quant;
pub mod signum;
pub mod topk;

use puffer_probe as probe;
use puffer_tensor::Tensor;
use std::time::Duration;

/// Which collective the encoded messages are compatible with. This drives
/// the communication cost model: allgather traffic grows with the worker
/// count while ring-allreduce bandwidth does not (paper appendix F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationKind {
    /// Messages can be summed component-wise in flight.
    AllReduce,
    /// Every worker must receive every other worker's message.
    AllGather,
}

/// Measured/derived statistics of one synchronization round, expressed as
/// **per-node wall-clock**: `encode_time` is what one node spends encoding
/// its own gradient (the mean across workers), while `decode_time` is the
/// full aggregation cost, which every node pays — for allgather methods it
/// grows with the worker count (the appendix-F asymmetry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Bytes each worker puts on the wire.
    pub bytes_per_worker: usize,
    /// Total bytes encoded this round across all workers
    /// (`bytes_per_worker · workers`).
    pub encoded_bytes: usize,
    /// Bytes one node must decode after aggregation: the reduced message
    /// for allreduce methods, every worker's message for allgather ones
    /// (the appendix-F asymmetry, in bytes).
    pub decoded_bytes: usize,
    /// Per-node encode wall-clock (mean across workers).
    pub encode_time: Duration,
    /// Per-node decode/aggregation wall-clock.
    pub decode_time: Duration,
}

impl RoundStats {
    /// Builds the stats of one round from the per-worker message size,
    /// deriving the encoded/decoded byte totals from the collective kind,
    /// and surfaces them on the probe's `compress.*` counters.
    pub fn new(
        bytes_per_worker: usize,
        workers: usize,
        aggregation: AggregationKind,
        encode_time: Duration,
        decode_time: Duration,
    ) -> Self {
        let encoded_bytes = bytes_per_worker * workers;
        let decoded_bytes = match aggregation {
            AggregationKind::AllReduce => bytes_per_worker,
            AggregationKind::AllGather => bytes_per_worker * workers,
        };
        if probe::enabled() {
            probe::counter_add("compress.rounds", 1);
            probe::counter_add("compress.encoded_bytes", encoded_bytes as u64);
            probe::counter_add("compress.decoded_bytes", decoded_bytes as u64);
        }
        RoundStats { bytes_per_worker, encoded_bytes, decoded_bytes, encode_time, decode_time }
    }
}

/// A gradient-compression scheme playing full synchronization rounds.
///
/// `worker_grads[w]` is worker `w`'s per-layer gradient list; all workers
/// must present identical shapes. The return value is the aggregated
/// (mean) gradient list as every worker decodes it.
pub trait GradCompressor {
    /// Human-readable method name (used by the bench harness tables).
    fn name(&self) -> &'static str;

    /// The collective the method's messages support.
    fn aggregation(&self) -> AggregationKind;

    /// Plays one round.
    ///
    /// # Panics
    ///
    /// Panics if workers disagree on layer shapes.
    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats);

    /// Freezes the method's cross-round state (error-feedback memory,
    /// warm-started queries, momentum) as named tensors so a trainer
    /// checkpoint can restore it and resume bitwise identically. Stateless
    /// methods return the empty list.
    fn state_snapshot(&self) -> Vec<(String, Tensor)> {
        Vec::new()
    }

    /// Restores state captured by [`GradCompressor::state_snapshot`].
    /// Returns `false` if the state does not belong to this method (a
    /// stateless method accepts only the empty list).
    fn restore_state(&mut self, state: &[(String, Tensor)]) -> bool {
        state.is_empty()
    }

    /// Whether the method's aggregation distributes over a bucketed flat
    /// buffer: reducing each contiguous bucket independently and
    /// concatenating must equal one reduction of the whole buffer. True
    /// only for linear, stateless aggregation (the exact mean); methods
    /// with error feedback, low-rank factorization, or whole-tensor
    /// statistics must see complete tensors and keep the default.
    fn supports_bucketed_overlap(&self) -> bool {
        false
    }
}

/// Exact mean of per-worker gradient lists (the reference aggregation all
/// compressors approximate).
pub fn exact_mean(worker_grads: &[Vec<Tensor>]) -> Vec<Tensor> {
    assert!(!worker_grads.is_empty(), "no workers");
    let n = worker_grads.len() as f32;
    let mut out = worker_grads[0].clone();
    for grads in &worker_grads[1..] {
        for (acc, g) in out.iter_mut().zip(grads) {
            acc.axpy(1.0, g).expect("worker gradient shapes must match");
        }
    }
    for t in &mut out {
        t.scale(1.0 / n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mean_averages() {
        let a = vec![Tensor::full(&[3], 1.0)];
        let b = vec![Tensor::full(&[3], 3.0)];
        let m = exact_mean(&[a, b]);
        assert_eq!(m[0].as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "no workers")]
    fn exact_mean_rejects_empty() {
        let _ = exact_mean(&[]);
    }

    #[test]
    fn round_byte_counters_match_closed_form_sizes() {
        use crate::atomo::Atomo;
        use crate::none::NoCompression;
        use crate::powersgd::PowerSgd;
        use crate::quant::BinaryQuant;
        use crate::signum::Signum;
        use crate::topk::TopK;

        // Two workers, one 16×8 matrix layer + one length-8 vector layer:
        // 136 coordinates, 544 raw bytes per worker.
        let workers: Vec<Vec<Tensor>> = (0..2)
            .map(|w| vec![Tensor::randn(&[16, 8], 1.0, 40 + w), Tensor::randn(&[8], 1.0, 50 + w)])
            .collect();
        let check = |mut c: Box<dyn GradCompressor>, per_worker: usize| {
            let (_, stats) = c.round(&workers);
            assert_eq!(stats.bytes_per_worker, per_worker, "{}", c.name());
            assert_eq!(stats.encoded_bytes, per_worker * 2, "{}", c.name());
            let decoded = match c.aggregation() {
                AggregationKind::AllReduce => per_worker,
                AggregationKind::AllGather => per_worker * 2,
            };
            assert_eq!(stats.decoded_bytes, decoded, "{}", c.name());
        };

        // Vanilla: raw f32s, allreduce.
        check(Box::new(NoCompression::new()), 136 * 4);
        // PowerSGD rank 2: P (16×2) + Q (8×2) for the matrix, raw vector.
        check(Box::new(PowerSgd::new(2, 1)), (16 * 2 + 8 * 2) * 4 + 8 * 4);
        // ATOMO rank 2: (U, σ, Vᵀ) triplet for the matrix, raw vector.
        check(Box::new(Atomo::new(2, 1)), (16 * 2 + 2 + 2 * 8) * 4 + 8 * 4);
        // Signum: 1 bit per coordinate, packed into u64 words.
        check(Box::new(Signum::new(0.9)), 136usize.div_ceil(64) * 8);
        // Top-k 25%: ⌈136/4⌉ = 34 (index, value) pairs.
        check(Box::new(TopK::new(0.25)), 34 * (4 + 4));
        // Binary quantization: (min, max) header + 1 bit per coordinate.
        check(Box::new(BinaryQuant::new(1)), 8 + 136usize.div_ceil(64) * 8);
    }

    #[test]
    fn round_byte_counters_surface_on_probe() {
        use crate::signum::Signum;
        // Other tests in this binary may also play rounds concurrently, so
        // assert the counters advanced by at least our round's bytes.
        puffer_probe::configure(puffer_probe::ProbeConfig::in_memory());
        let before = puffer_probe::counter_value("compress.encoded_bytes").unwrap_or(0.0);
        let workers: Vec<Vec<Tensor>> =
            (0..2).map(|w| vec![Tensor::randn(&[64], 1.0, 60 + w)]).collect();
        let (_, stats) = Signum::new(0.9).round(&workers);
        let after = puffer_probe::counter_value("compress.encoded_bytes").unwrap_or(0.0);
        assert!(
            after - before >= stats.encoded_bytes as f64,
            "probe counter must advance by the round's encoded bytes"
        );
        puffer_probe::reset();
    }
}
