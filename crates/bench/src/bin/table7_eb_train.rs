//! **Table 7**: Pufferfish ResNet-50 vs Early-Bird structured pruning
//! (EB Train) at prune ratios 30/50/70% on ImageNet(-lite).
//!
//! Full-scale parameter columns: Pufferfish from the spec ledger
//! (15,202,344, exact), EB Train rows from the original paper (You et al.
//! 2019) as cited. Accuracy columns come from running both methods at
//! bench scale — EB Train with real mask-convergence detection and
//! structured pruning, Pufferfish with Algorithm 1 — under the same
//! training recipe (the paper matches EB Train's hyper-parameters: no
//! label smoothing, decay at 30/60).

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::spec::{resnet50_imagenet, SpecVariant};
use puffer_nn::schedule::StepDecay;
use puffer_prune::early_bird::{apply_channel_mask, EarlyBirdDetector};
use pufferfish::trainer::{evaluate, train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;
    let epochs = scale.pick(5, 14);
    let warmup = scale.pick(2, 4);
    println!("== Table 7: Pufferfish vs EB Train, ResNet-50 ==\n");

    // EB-matched recipe: no label smoothing, decay at 1/3 and 2/3.
    let mut cfg = TrainConfig::cifar_small(epochs, 0);
    cfg.schedule = StepDecay::new(0.1, vec![epochs / 3, epochs * 2 / 3], 0.1);

    // Vanilla reference.
    let vanilla =
        train(setups::resnet50(classes, 1), ModelPlan::None, &data, &cfg).expect("training");

    // Pufferfish.
    let mut pcfg = cfg.clone();
    pcfg.warmup_epochs = warmup;
    let puffer = train(
        setups::resnet50(classes, 1),
        ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet50_paper()),
        &data,
        &pcfg,
    )
    .expect("training");

    // EB Train at three prune ratios: train with the detector watching BN
    // scales; at convergence (or the warm-up deadline) draw the ticket,
    // apply structured pruning, and fine-tune for the remaining epochs.
    let mut t = Table::new(vec![
        "Model architectures",
        "# Params (full-scale / measured)",
        "Top-1 (synthetic)",
        "paper top-1",
    ]);
    let spec_v = resnet50_imagenet(SpecVariant::Vanilla);
    let spec_p = resnet50_imagenet(SpecVariant::Pufferfish);
    t.row(vec![
        "vanilla ResNet-50".into(),
        commas(spec_v.params()),
        format!("{:.2}%", vanilla.report.final_test_accuracy() * 100.0),
        "75.99%".into(),
    ]);
    t.row(vec![
        "Pufferfish ResNet-50".into(),
        commas(spec_p.params()),
        format!("{:.2}%", puffer.report.final_test_accuracy() * 100.0),
        "75.62%".into(),
    ]);

    for (pr, paper_params, paper_acc) in
        [(0.3f32, 16_466_787u64, "73.86%"), (0.5, 15_081_947, "73.35%"), (0.7, 7_882_503, "70.16%")]
    {
        // Phase 1: train while watching for the early-bird ticket.
        let mut model: pufferfish::trainer::ImageModel = setups::resnet50(classes, 2).into();
        let mut detector = EarlyBirdDetector::with_window(pr, 0.1, 3);
        let mut ticket = None;
        let mut search_epochs = 0usize;
        for epoch in 0..epochs {
            let mut ecfg = cfg.clone();
            ecfg.epochs = 1;
            // One epoch of vanilla training on the live model.
            let out = match model {
                pufferfish::trainer::ImageModel::ResNet(net) => {
                    train(net, ModelPlan::None, &data, &ecfg).expect("training")
                }
                _ => unreachable!("resnet50 setup"),
            };
            model = out.model;
            search_epochs = epoch + 1;
            if let Some(mask) = detector.observe(&model) {
                ticket = Some(mask);
                break;
            }
            if epoch + 1 >= warmup + 2 {
                // EB deadline: draw whatever mask we have.
                ticket = Some(puffer_prune::early_bird::global_channel_mask(
                    &puffer_prune::early_bird::bn_gammas(&model),
                    pr,
                ));
                break;
            }
        }
        let mask = ticket.expect("ticket drawn");
        let effective = apply_channel_mask(&mut model, &mask);
        // Phase 2: fine-tune the pruned network.
        let mut fcfg = cfg.clone();
        fcfg.epochs = epochs - search_epochs;
        let mut model = match model {
            pufferfish::trainer::ImageModel::ResNet(net) => {
                if fcfg.epochs > 0 {
                    let out = train(net, ModelPlan::None, &data, &fcfg).expect("fine-tune");
                    out.model
                } else {
                    net.into()
                }
            }
            other => other,
        };
        // Keep pruned channels dead through fine-tuning is approximated by
        // re-applying the mask before evaluation.
        let _ = apply_channel_mask(&mut model, &mask);
        let (_, acc) = evaluate(&mut model, &data, 32).expect("eval");
        t.row(vec![
            format!("EB Train (pr={:.0}%)", pr * 100.0),
            format!("{} / {} measured", commas(paper_params), commas(effective as u64)),
            format!("{:.2}%", acc * 100.0),
            paper_acc.into(),
        ]);
        record_result("table7_eb", &format!("pr={pr} effective={effective} acc={acc:.4}"));
    }
    t.print();
    println!(
        "\nshape under reproduction: Pufferfish ({} full-scale params) is smaller than",
        commas(spec_p.params())
    );
    println!(
        "EB-30% ({}, 1.3M more) while being more accurate; EB accuracy degrades with pr.",
        commas(16_466_787u64)
    );
}
