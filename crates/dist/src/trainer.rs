//! A real multi-threaded, fault-tolerant data-parallel trainer.
//!
//! `N` worker threads each hold an identical model replica and a shard of
//! every global batch. Per step: workers compute real gradients
//! (forward/backward), a shared aggregator plays one compression round
//! (exact mean for vanilla SGD), and every worker applies the same update
//! — the synchronous data-parallel SGD the paper's prototype implements
//! with allreduce. Communication cost is accounted by the α–β model;
//! computation and encode/decode are measured wall-clock.
//!
//! On top of that baseline the trainer is **fault-tolerant**
//! ([`train_data_parallel_with`]): a seeded [`FaultPlan`] injects
//! stragglers, crashes, dropped/corrupted messages and non-finite
//! gradients, and the aggregator degrades gracefully instead of
//! panicking — it times slow workers out with bounded retry/backoff,
//! detects crashed workers by probing their channels, re-normalizes the
//! gradient mean over the survivors, skips steps with non-finite
//! gradients (AMP-style), and periodically checkpoints parameters +
//! optimizer momentum + compressor state so a killed run can resume
//! **bitwise identically** ([`crate::checkpoint::DistCheckpoint`]).
//!
//! Worker compute runs on `puffer-tensor`'s threaded kernels; for the
//! duration of a run the tensor pool is capped so that
//! `workers × pool threads` does not oversubscribe the hardware
//! (`PUFFER_NUM_THREADS` still sets the outer bound). The cap is restored
//! by an RAII guard even if the run errors.

use crate::breakdown::{round_comm_time, BreakdownAccumulator, EpochBreakdown};
use crate::checkpoint::DistCheckpoint;
use crate::cost::ClusterProfile;
use crate::error::{DistError, DistResult};
use crate::fault::{any_nonfinite, message_checksum, FaultPlan, FaultReport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use puffer_compress::pack::{pack_refs, pack_refs_with, unpack, PackLayout};
use puffer_compress::GradCompressor;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_probe as probe;
use puffer_tensor::Tensor;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a data-parallel run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker (node) count.
    pub workers: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Cluster profile for communication accounting.
    pub profile: ClusterProfile,
}

impl DistConfig {
    /// A `workers`-node run with the paper's CNN hyper-parameters on a
    /// p3-like network.
    pub fn p3(workers: usize, lr: f32) -> Self {
        DistConfig {
            workers,
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            profile: ClusterProfile::p3_like(workers),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidConfig`] for zero workers, non-finite
    /// hyper-parameters, or a malformed cluster profile.
    pub fn validate(&self) -> DistResult<()> {
        if self.workers == 0 {
            return Err(DistError::InvalidConfig { reason: "workers must be at least 1".into() });
        }
        for (name, v) in
            [("lr", self.lr), ("momentum", self.momentum), ("weight_decay", self.weight_decay)]
        {
            if !v.is_finite() {
                return Err(DistError::InvalidConfig {
                    reason: format!("{name} must be finite, got {v}"),
                });
            }
        }
        let ok = self.profile.alpha.is_finite()
            && self.profile.alpha >= 0.0
            && self.profile.beta.is_finite()
            && self.profile.beta >= 0.0;
        if !ok {
            return Err(DistError::InvalidConfig {
                reason: "profile α/β must be finite and non-negative".into(),
            });
        }
        Ok(())
    }
}

/// How the aggregator reacts to slow or silent workers.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// How long the aggregator waits for a step's contributions before
    /// probing for crashes.
    pub step_timeout: Duration,
    /// How many timeout rounds to grant before declaring missing
    /// contributions lost and degrading around them.
    pub max_retries: u32,
    /// Multiplicative backoff applied to the timeout per retry round.
    pub backoff: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { step_timeout: Duration::from_secs(5), max_retries: 3, backoff: 2.0 }
    }
}

impl RecoveryPolicy {
    fn validate(&self) -> DistResult<()> {
        if self.step_timeout == Duration::ZERO {
            return Err(DistError::InvalidConfig {
                reason: "step_timeout must be positive".into(),
            });
        }
        if !self.backoff.is_finite() || self.backoff < 1.0 {
            return Err(DistError::InvalidConfig { reason: "backoff must be ≥ 1".into() });
        }
        Ok(())
    }
}

/// Robustness knobs of a run: fault injection, recovery, heterogeneous
/// cost accounting, and checkpoint/resume. The default is a clean run on a
/// homogeneous cluster with no checkpointing — exactly the pre-fault
/// trainer.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Faults to inject (deterministic, seeded).
    pub faults: FaultPlan,
    /// Timeout/retry policy for slow or dead workers.
    pub recovery: RecoveryPolicy,
    /// Per-node network parameters; `None` prices every round with
    /// `cfg.profile` (node count still tracks the survivor set).
    pub hetero: Option<crate::cost::HeteroProfile>,
    /// Periodic checkpointing policy.
    pub checkpoint: crate::checkpoint::CheckpointPolicy,
    /// Resume from this checkpoint instead of starting at step 0.
    pub resume: Option<DistCheckpoint>,
}

/// Result of a data-parallel run.
#[derive(Debug)]
pub struct DistOutcome {
    /// Accumulated compute/encode/comm/decode decomposition.
    pub breakdown: EpochBreakdown,
    /// Mean training loss per executed step (over the contributing
    /// workers; `NaN` for steps where every contribution was lost).
    pub step_losses: Vec<f32>,
    /// Final parameter values of the lowest-indexed surviving replica
    /// (all survivors are bitwise identical).
    pub final_params: Vec<Tensor>,
    /// Account of every degradation the run absorbed.
    pub faults: FaultReport,
    /// Paths of the checkpoints written during the run, in step order.
    pub checkpoints: Vec<PathBuf>,
}

/// One worker's per-step gradient contribution: every parameter gradient
/// packed into one flat buffer (the paper's single-allreduce bucket,
/// §4.1), encoded straight from the live `Param::grad` borrows — no
/// per-tensor clones. The layout is derived once per worker and shared by
/// reference.
struct GradMsg {
    worker: usize,
    step: usize,
    flat: Tensor,
    layout: Arc<PackLayout>,
    loss: f32,
    compute: Duration,
    checksum: u64,
}

enum WorkerMsg {
    Grads(GradMsg),
    Fatal { worker: usize, reason: String },
}

#[derive(Clone)]
enum AggMsg {
    /// Apply this aggregated gradient (packed flat, same layout as the
    /// worker's own contribution); if `snapshot`, report post-update
    /// state for checkpointing.
    Mean { flat: Tensor, snapshot: bool },
    /// Skip this step without updating (non-finite guard tripped or no
    /// usable contribution survived).
    Skip,
    /// Liveness probe; carries no state change.
    Ping,
}

/// Final parameters reported by a finished worker: `(worker index, params)`.
type FinalParams = (usize, Vec<Tensor>);

/// Post-update state reported by the checkpoint leader:
/// `(next step, params, velocity, buffers)`.
type Snapshot = (usize, Vec<Tensor>, Vec<Tensor>, Vec<Tensor>);

/// Restores the tensor pool width when the run ends, even on an error
/// path (the old trainer leaked the cap when a worker panicked).
///
/// Public so integration tests can exercise the width-restore contract
/// (including under panics and nested probe spans) directly.
pub struct PoolWidthGuard {
    prev: usize,
}

impl PoolWidthGuard {
    /// Caps the pool so `workers × pool threads` stays within the
    /// hardware parallelism. Thread count never changes numerical results
    /// (the pool's kernels are bitwise deterministic), only contention.
    pub fn cap_for(n_workers: usize) -> Self {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let prev = puffer_tensor::pool::num_threads();
        puffer_tensor::pool::set_num_threads((hw / n_workers.max(1)).max(1).min(prev));
        PoolWidthGuard { prev }
    }
}

impl Drop for PoolWidthGuard {
    fn drop(&mut self) {
        puffer_tensor::pool::set_num_threads(self.prev);
    }
}

/// Runs synchronous data-parallel SGD over `global_batches` with no
/// injected faults and default recovery (see
/// [`train_data_parallel_with`]).
///
/// `factory(worker)` must build **identical** replicas for every worker
/// (same seed). Each global batch is split row-wise into equal worker
/// shards (trailing remainder rows are dropped, as with PyTorch's
/// DistributedSampler padding semantics).
///
/// # Errors
///
/// Returns [`DistError::InvalidConfig`] / [`DistError::BatchTooSmall`] on
/// bad inputs and the other [`DistError`] variants on runtime failures.
pub fn train_data_parallel<M, F>(
    factory: F,
    global_batches: &[(Tensor, Vec<usize>)],
    compressor: &mut dyn GradCompressor,
    cfg: &DistConfig,
) -> DistResult<DistOutcome>
where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    train_data_parallel_with(factory, global_batches, compressor, cfg, &RunOptions::default())
}

/// Runs synchronous data-parallel SGD with fault injection, graceful
/// degradation, heterogeneous cost accounting, and checkpoint/resume.
///
/// Fault semantics (see [`FaultPlan`]):
///
/// * **stragglers** stretch a worker's measured compute (a real sleep);
///   the aggregator waits `recovery.step_timeout` with bounded
///   retry/backoff, then degrades around the missing contribution;
/// * **crashed** workers are detected by probing their channels; the
///   member is dropped and the gradient mean is re-normalized over the
///   survivors (the compression round only sees collected contributions);
/// * **corrupted** messages fail their checksum and are discarded (the
///   sender stays live);
/// * **non-finite** gradients trip an AMP-style guard: the step is
///   skipped on every replica (no optimizer update anywhere) and recorded
///   in the breakdown, keeping replicas in lockstep.
///
/// The run errors only when it cannot possibly continue: every worker is
/// dead, a worker reports a fatal error, a thread panics, or a checkpoint
/// cannot be written.
///
/// # Errors
///
/// See [`DistError`].
pub fn train_data_parallel_with<M, F>(
    factory: F,
    global_batches: &[(Tensor, Vec<usize>)],
    compressor: &mut dyn GradCompressor,
    cfg: &DistConfig,
    opts: &RunOptions,
) -> DistResult<DistOutcome>
where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    cfg.validate()?;
    opts.recovery.validate()?;
    let n_workers = cfg.workers;
    let steps = global_batches.len();
    for b in global_batches {
        let rows = b.1.len();
        if rows < n_workers {
            return Err(DistError::BatchTooSmall { rows, workers: n_workers });
        }
    }
    let start_step = match &opts.resume {
        Some(ck) => {
            if ck.step > steps {
                return Err(DistError::Checkpoint {
                    reason: format!(
                        "checkpoint resumes at step {} but the run has only {steps} batches",
                        ck.step
                    ),
                });
            }
            if !compressor.restore_state(&ck.compressor) {
                return Err(DistError::Checkpoint {
                    reason: format!(
                        "compressor {} rejected the checkpoint state",
                        compressor.name()
                    ),
                });
            }
            ck.step
        }
        None => 0,
    };

    let _pool_guard = PoolWidthGuard::cap_for(n_workers);

    // Pre-split shards per worker.
    let shards: Vec<Vec<(Tensor, Vec<usize>)>> = (0..n_workers)
        .map(|w| {
            global_batches.iter().map(|b| shard_batch(b, w, n_workers)).collect::<DistResult<_>>()
        })
        .collect::<DistResult<_>>()?;

    let (to_agg, from_workers): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
    let mut to_workers: Vec<Sender<AggMsg>> = Vec::new();
    let mut worker_rx: Vec<Receiver<AggMsg>> = Vec::new();
    for _ in 0..n_workers {
        let (tx, rx) = unbounded();
        to_workers.push(tx);
        worker_rx.push(rx);
    }
    let (param_tx, param_rx): (Sender<FinalParams>, Receiver<FinalParams>) = unbounded();
    let (snap_tx, snap_rx): (Sender<Snapshot>, Receiver<Snapshot>) = unbounded();

    let args = AggArgs { cfg, opts, steps, start_step };
    let agg = crossbeam::scope(|scope| {
        for (w, (shard, rx)) in shards.into_iter().zip(worker_rx.drain(..)).enumerate() {
            let to_agg = to_agg.clone();
            let param_tx = param_tx.clone();
            let snap_tx = snap_tx.clone();
            let factory = &factory;
            scope.spawn(move |_| {
                let model = factory(w);
                let ctx = WorkerCtx { worker: w, shard, rx, to_agg, param_tx, snap_tx, cfg, opts };
                run_worker(ctx, model);
            });
        }
        // The aggregator's receivers must be the only remaining handles so
        // channel disconnects reflect worker death.
        drop(to_agg);
        drop(param_tx);
        drop(snap_tx);
        run_aggregator(&args, to_workers, &from_workers, &snap_rx, compressor)
    })
    .map_err(|_| DistError::WorkerPanicked)??;

    // The lowest-indexed survivor's parameters stand for the run (all
    // survivors applied identical updates).
    let mut finals: Option<FinalParams> = None;
    for (w, params) in param_rx.iter() {
        let replace = match &finals {
            Some((best, _)) => w < *best,
            None => true,
        };
        if replace {
            finals = Some((w, params));
        }
    }
    let final_params = match finals {
        Some((_, p)) => p,
        None => return Err(DistError::AllWorkersDead { step: steps }),
    };
    Ok(DistOutcome {
        breakdown: agg.breakdown,
        step_losses: agg.step_losses,
        final_params,
        faults: agg.report,
        checkpoints: agg.checkpoints,
    })
}

struct WorkerCtx<'a> {
    worker: usize,
    shard: Vec<(Tensor, Vec<usize>)>,
    rx: Receiver<AggMsg>,
    to_agg: Sender<WorkerMsg>,
    param_tx: Sender<FinalParams>,
    snap_tx: Sender<Snapshot>,
    cfg: &'a DistConfig,
    opts: &'a RunOptions,
}

/// The worker loop. Never panics: channel failures mean the aggregator is
/// gone (a fatal error elsewhere) and the worker just exits; its own
/// fatal conditions are reported via [`WorkerMsg::Fatal`]. An injected
/// crash exits without a word — the aggregator must *detect* it.
fn run_worker<M: Layer>(ctx: WorkerCtx<'_>, mut model: M) {
    let w = ctx.worker;
    let faults = &ctx.opts.faults;
    let mut opt = Sgd::new(ctx.cfg.lr, ctx.cfg.momentum, ctx.cfg.weight_decay);
    let mut start_step = 0;
    if let Some(ck) = &ctx.opts.resume {
        if !load_resume_state(&mut model, &mut opt, ck) {
            probe::event("fault", "worker_fatal", vec![("worker", w.into())]);
            let _ = ctx.to_agg.send(WorkerMsg::Fatal {
                worker: w,
                reason: "resume checkpoint does not match the model".into(),
            });
            return;
        }
        probe::event(
            "dist",
            "checkpoint_resumed",
            vec![("worker", w.into()), ("step", ck.step.into())],
        );
        start_step = ck.step;
    }
    // Gradient shapes are fixed for the whole run: derive the flat-bucket
    // layout once and reuse it every round.
    let layout = {
        let params = model.params();
        let grad_refs: Vec<&Tensor> = params.iter().map(|p| &p.grad).collect();
        Arc::new(PackLayout::of_refs(&grad_refs))
    };
    for (step, (images, labels)) in ctx.shard.iter().enumerate().skip(start_step) {
        if faults.should_crash(w, step) {
            probe::event(
                "fault",
                "worker_crash",
                vec![("worker", w.into()), ("step", step.into())],
            );
            return; // channels drop; the aggregator's probe sees the death
        }
        let sp = probe::timed_span_with("dist", "worker_compute", || {
            vec![("worker", w.into()), ("step", step.into())]
        });
        model.zero_grad();
        let logits = model.forward(images, Mode::Train);
        let (loss, dl) = match softmax_cross_entropy(&logits, labels, 0.0) {
            Ok(v) => v,
            Err(e) => {
                probe::event(
                    "fault",
                    "worker_fatal",
                    vec![("worker", w.into()), ("step", step.into())],
                );
                let _ = ctx.to_agg.send(WorkerMsg::Fatal { worker: w, reason: e.to_string() });
                return;
            }
        };
        let _ = model.backward(&dl);
        // Serialize straight from the borrowed gradients into one flat
        // bucket (one message per round, no per-tensor clones).
        let mut flat = {
            let params = model.params();
            let grad_refs: Vec<&Tensor> = params.iter().map(|p| &p.grad).collect();
            pack_refs_with(&layout, &grad_refs)
        };
        let measured = sp.finish();
        let delay = faults.compute_delay(w, step, measured);
        if delay > Duration::ZERO {
            probe::event(
                "fault",
                "straggler_delay",
                vec![
                    ("worker", w.into()),
                    ("step", step.into()),
                    ("delay_us", (delay.as_micros() as u64).into()),
                ],
            );
            std::thread::sleep(delay);
        }
        let compute = measured + delay;
        // Non-finite injection happens before checksumming (the worker
        // "really" computed it); bit corruption after (it happens on the
        // wire, so the checksum catches it).
        faults.inject_nonfinite(w, step, std::slice::from_mut(&mut flat));
        let checksum = message_checksum(std::slice::from_ref(&flat));
        faults.corrupt_message(w, step, std::slice::from_mut(&mut flat));

        let mut payload = Some(WorkerMsg::Grads(GradMsg {
            worker: w,
            step,
            flat,
            layout: Arc::clone(&layout),
            loss,
            compute,
            checksum,
        }));
        let mut attempt = 0u32;
        let sent = loop {
            if !faults.drops_message(w, step, attempt) {
                match payload.take() {
                    Some(msg) => break ctx.to_agg.send(msg).is_ok(),
                    None => break true,
                }
            }
            probe::counter_add("dist.dropped_messages", 1);
            probe::event(
                "fault",
                "message_dropped",
                vec![("worker", w.into()), ("step", step.into()), ("attempt", attempt.into())],
            );
            if attempt >= ctx.opts.recovery.max_retries {
                break true; // message lost for good; the aggregator degrades
            }
            attempt += 1;
            std::thread::sleep(Duration::from_millis(u64::from(attempt)));
        };
        if !sent {
            return;
        }
        // Wait for this step's verdict, consuming liveness probes.
        loop {
            match ctx.rx.recv() {
                Ok(AggMsg::Ping) => {}
                Ok(AggMsg::Skip) => break,
                Ok(AggMsg::Mean { flat: mean, snapshot }) => {
                    for (p, g) in model.params_mut().into_iter().zip(unpack(&mean, &layout)) {
                        p.grad = g;
                    }
                    opt.step(&mut model.params_mut());
                    if snapshot {
                        let params = model.params().iter().map(|p| p.value.clone()).collect();
                        let _ = ctx.snap_tx.send((
                            step + 1,
                            params,
                            opt.velocity().to_vec(),
                            model.buffers(),
                        ));
                    }
                    break;
                }
                Err(_) => return, // aggregator shut down
            }
        }
    }
    let finals: Vec<Tensor> = model.params().iter().map(|p| p.value.clone()).collect();
    let _ = ctx.param_tx.send((w, finals));
}

/// Loads checkpointed parameters, buffers, and optimizer momentum into a
/// freshly built replica. Returns `false` on any shape/count mismatch.
fn load_resume_state<M: Layer>(model: &mut M, opt: &mut Sgd, ck: &DistCheckpoint) -> bool {
    {
        let mut params = model.params_mut();
        if params.len() != ck.params.len() {
            return false;
        }
        for (p, c) in params.iter_mut().zip(&ck.params) {
            if p.value.shape() != c.shape() {
                return false;
            }
            p.value = c.clone();
        }
    }
    if model.buffers().len() != ck.buffers.len() {
        return false;
    }
    if !ck.buffers.is_empty() {
        model.load_buffers(&ck.buffers);
    }
    if !ck.velocity.is_empty() && ck.velocity.len() != ck.params.len() {
        return false;
    }
    opt.set_velocity(ck.velocity.clone());
    true
}

struct AggArgs<'a> {
    cfg: &'a DistConfig,
    opts: &'a RunOptions,
    steps: usize,
    start_step: usize,
}

struct AggOutput {
    breakdown: EpochBreakdown,
    step_losses: Vec<f32>,
    report: FaultReport,
    checkpoints: Vec<PathBuf>,
}

/// The aggregator loop: collects contributions with timeout/retry,
/// detects crashes, re-normalizes the mean over survivors, prices the
/// round for the surviving member set, and drives checkpointing.
fn run_aggregator(
    args: &AggArgs<'_>,
    to_workers: Vec<Sender<AggMsg>>,
    from_workers: &Receiver<WorkerMsg>,
    snap_rx: &Receiver<Snapshot>,
    compressor: &mut dyn GradCompressor,
) -> DistResult<AggOutput> {
    let recovery = &args.opts.recovery;
    let mut live: BTreeSet<usize> = (0..to_workers.len()).collect();
    let mut acc = BreakdownAccumulator::new();
    let mut step_losses = Vec::with_capacity(args.steps.saturating_sub(args.start_step));
    let mut report = FaultReport::default();
    let mut checkpoints: Vec<PathBuf> = Vec::new();

    for step in args.start_step..args.steps {
        // ---- Collect this step's contributions from live workers. ----
        let mut expected = live.clone();
        let mut got: BTreeMap<usize, GradMsg> = BTreeMap::new();
        let mut timeout = recovery.step_timeout;
        let mut retries = 0u32;
        while got.len() < expected.len() {
            match from_workers.recv_timeout(timeout) {
                Ok(WorkerMsg::Fatal { worker, reason }) => {
                    return Err(DistError::WorkerFailed { worker, reason });
                }
                Ok(WorkerMsg::Grads(m)) => {
                    if m.step != step || !expected.contains(&m.worker) {
                        // A straggler's contribution from an already-closed
                        // step (or a duplicate): discard.
                        report.stale_messages += 1;
                        probe::counter_add("dist.stale_messages", 1);
                        probe::event(
                            "fault",
                            "stale_message",
                            vec![
                                ("worker", m.worker.into()),
                                ("msg_step", m.step.into()),
                                ("step", step.into()),
                            ],
                        );
                    } else if message_checksum(std::slice::from_ref(&m.flat)) != m.checksum {
                        // Bit corruption on the wire: reject the
                        // contribution, keep the worker.
                        report.corrupted_messages += 1;
                        probe::counter_add("dist.corrupted_messages", 1);
                        probe::event(
                            "fault",
                            "message_corrupted",
                            vec![("worker", m.worker.into()), ("step", step.into())],
                        );
                        expected.remove(&m.worker);
                    } else {
                        got.insert(m.worker, m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Probe the missing members: a crashed worker dropped
                    // its receiver, so the probe send fails.
                    let missing: Vec<usize> =
                        expected.iter().copied().filter(|x| !got.contains_key(x)).collect();
                    for x in missing {
                        if to_workers[x].send(AggMsg::Ping).is_err() {
                            expected.remove(&x);
                            live.remove(&x);
                            report.crashed.push((x, step));
                            probe::counter_add("dist.crashes", 1);
                            probe::event(
                                "fault",
                                "crash_detected",
                                vec![
                                    ("worker", x.into()),
                                    ("step", step.into()),
                                    ("survivors", live.len().into()),
                                ],
                            );
                        }
                    }
                    if live.is_empty() {
                        return Err(DistError::AllWorkersDead { step });
                    }
                    if got.len() >= expected.len() {
                        break; // crashes explained every missing member
                    }
                    retries += 1;
                    probe::counter_add("dist.retries", 1);
                    if retries > recovery.max_retries {
                        let lost = expected.len() - got.len();
                        report.lost_contributions += lost;
                        probe::counter_add("dist.lost_contributions", lost as u64);
                        probe::event(
                            "fault",
                            "contribution_lost",
                            vec![("step", step.into()), ("lost", lost.into())],
                        );
                        break; // degrade: proceed with what arrived
                    }
                    timeout = Duration::from_secs_f64(timeout.as_secs_f64() * recovery.backoff);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(DistError::AllWorkersDead { step });
                }
            }
        }
        if live.is_empty() {
            return Err(DistError::AllWorkersDead { step });
        }

        let slowest = got.values().map(|m| m.compute).max().unwrap_or_default();
        let loss_mean = if got.is_empty() {
            f32::NAN
        } else {
            got.values().map(|m| m.loss).sum::<f32>() / got.len() as f32
        };

        // ---- AMP-style guard: a poisoned gradient (or a round with no
        // usable contribution) skips the step on every replica. ----
        if got.is_empty() || got.values().any(|m| any_nonfinite(std::slice::from_ref(&m.flat))) {
            for x in live.clone() {
                if to_workers[x].send(AggMsg::Skip).is_err() {
                    live.remove(&x);
                    report.crashed.push((x, step));
                }
            }
            report.skipped_steps.push(step);
            probe::event(
                "fault",
                "step_skipped",
                vec![("step", step.into()), ("contributors", got.len().into())],
            );
            acc.record_skipped(slowest);
            step_losses.push(loss_mean);
            probe::metrics_row(
                "dist_step",
                &[
                    ("step", step.into()),
                    ("loss", loss_mean.into()),
                    ("contributors", got.len().into()),
                    ("live", live.len().into()),
                    ("skipped", 1usize.into()),
                ],
            );
            continue;
        }

        // ---- One compression round over the collected contributions.
        // `got` is keyed by worker id, so the round sees survivors in
        // id order and the mean is automatically re-normalized to the
        // contributing member count. ----
        let n_contributors = got.len();
        let layout = got.values().next().map(|m| Arc::clone(&m.layout));
        let contributions: Vec<Vec<Tensor>> =
            got.into_values().map(|m| unpack(&m.flat, &m.layout)).collect();
        let (mean, stats) = compressor.round(&contributions);

        // ---- Price the round for the *surviving* member set. ----
        let live_vec: Vec<usize> = live.iter().copied().collect();
        let (profile, jitter) = match &args.opts.hetero {
            Some(h) => (h.effective(&live_vec), h.jitter_factor(step as u64)),
            None => (ClusterProfile { nodes: live.len(), ..args.cfg.profile }, 1.0),
        };
        let comm = round_comm_time(&profile, compressor.aggregation(), &stats).mul_f64(jitter);
        acc.record_with_comm(comm, slowest, &stats);
        step_losses.push(loss_mean);
        probe::metrics_row(
            "dist_step",
            &[
                ("step", step.into()),
                ("loss", loss_mean.into()),
                ("contributors", n_contributors.into()),
                ("live", live.len().into()),
                ("bytes", stats.encoded_bytes.into()),
            ],
        );

        // ---- Broadcast the verdict; the lowest-indexed survivor doubles
        // as checkpoint leader. ----
        let next_step = step + 1;
        let want_ckpt =
            args.opts.checkpoint.is_enabled() && next_step % args.opts.checkpoint.every == 0;
        let leader = live.iter().next().copied();
        // Re-pack the mean into one flat bucket per recipient (same layout
        // the workers used to encode their contributions).
        let mean_refs: Vec<&Tensor> = mean.iter().collect();
        let mean_flat = match &layout {
            Some(l) => pack_refs_with(l, &mean_refs),
            None => pack_refs(&mean_refs).0,
        };
        for x in live.clone() {
            let snapshot = want_ckpt && Some(x) == leader;
            if to_workers[x].send(AggMsg::Mean { flat: mean_flat.clone(), snapshot }).is_err() {
                live.remove(&x);
                report.crashed.push((x, step));
            }
        }

        if want_ckpt {
            let deadline = recovery.step_timeout * (recovery.max_retries + 1);
            let leader_alive = leader.is_some_and(|l| live.contains(&l));
            let collected = if leader_alive {
                snap_rx.recv_timeout(deadline).ok().filter(|(s, ..)| *s == next_step)
            } else {
                None
            };
            match collected {
                Some((s, params, velocity, buffers)) => {
                    let ck = DistCheckpoint {
                        step: s,
                        params,
                        velocity,
                        buffers,
                        compressor: compressor.state_snapshot(),
                    };
                    if let Some(path) = args.opts.checkpoint.path_for(s) {
                        ck.save(&path)?;
                        probe::counter_add("dist.checkpoint_writes", 1);
                        probe::event("dist", "checkpoint_written", vec![("step", s.into())]);
                        checkpoints.push(path);
                    }
                }
                None => {
                    report.checkpoint_failures += 1;
                    probe::counter_add("dist.checkpoint_failures", 1);
                    probe::event("fault", "checkpoint_failed", vec![("step", next_step.into())]);
                }
            }
        }
    }
    report.survivors = live.len();
    Ok(AggOutput { breakdown: acc.breakdown(), step_losses, report, checkpoints })
}

/// Extracts worker `w`'s rows of a global batch (rows split evenly;
/// remainder rows dropped).
///
/// # Errors
///
/// Returns [`DistError::BatchTooSmall`] if the batch has fewer rows than
/// workers and [`DistError::Shard`] on shape arithmetic failures.
pub fn shard_batch(
    batch: &(Tensor, Vec<usize>),
    w: usize,
    workers: usize,
) -> DistResult<(Tensor, Vec<usize>)> {
    let (images, labels) = batch;
    let n = labels.len();
    if workers == 0 {
        return Err(DistError::InvalidConfig { reason: "workers must be at least 1".into() });
    }
    if w >= workers {
        return Err(DistError::Shard {
            reason: format!("worker {w} out of range for {workers} shards"),
        });
    }
    let per = n / workers;
    if per == 0 {
        return Err(DistError::BatchTooSmall { rows: n, workers });
    }
    let start = w * per;
    let end = start + per;
    let row_len = images.len() / n;
    let data = images.as_slice()[start * row_len..end * row_len].to_vec();
    let mut shape = images.shape().to_vec();
    shape[0] = per;
    let shard =
        Tensor::from_vec(data, &shape).map_err(|e| DistError::Shard { reason: e.to_string() })?;
    Ok((shard, labels[start..end].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_compress::none::NoCompression;
    use puffer_compress::powersgd::PowerSgd;
    use puffer_compress::signum::Signum;
    use puffer_nn::activation::Relu;
    use puffer_nn::linear::Linear;
    use puffer_nn::Sequential;

    fn mlp(seed_base: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(6, 16, true, seed_base).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 3, true, seed_base + 1).unwrap()),
        ])
    }

    fn synthetic_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
        (0..n_batches)
            .map(|b| {
                let x = Tensor::randn(&[batch, 6], 1.0, 100 + b as u64);
                let labels = (0..batch).map(|i| (i + b) % 3).collect();
                (x, labels)
            })
            .collect()
    }

    #[test]
    fn two_workers_match_single_process_sgd() {
        // With an exact-mean compressor and equal shards, data-parallel SGD
        // equals full-batch single-process SGD step for step.
        let batches = synthetic_batches(5, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        let mut comp = NoCompression::new();
        let out = train_data_parallel(|_| mlp(1), &batches, &mut comp, &cfg).unwrap();
        assert!(out.faults.is_clean(), "clean run must report no faults: {:?}", out.faults);
        assert_eq!(out.faults.survivors, 2);

        // Reference: single process on the full batches.
        let mut model = mlp(1);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for (x, labels) in &batches {
            model.zero_grad();
            let logits = model.forward(x, Mode::Train);
            let (_, dl) = softmax_cross_entropy(&logits, labels, 0.0).unwrap();
            let _ = model.backward(&dl);
            opt.step(&mut model.params_mut());
        }
        for (dist_p, ref_p) in out.final_params.iter().zip(model.params()) {
            let err = puffer_tensor::stats::rel_error(&ref_p.value, dist_p);
            assert!(err < 1e-4, "divergence {err}");
        }
    }

    #[test]
    fn replicas_stay_synchronized() {
        // Worker count > 2, several steps: all replicas' final params equal
        // (we check worker 0 against a rerun with permuted worker ids by
        // reusing deterministic seeds).
        let batches = synthetic_batches(4, 8);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(4),
        };
        let mut comp = NoCompression::new();
        let a = train_data_parallel(|_| mlp(3), &batches, &mut comp, &cfg).unwrap();
        let mut comp = NoCompression::new();
        let b = train_data_parallel(|_| mlp(3), &batches, &mut comp, &cfg).unwrap();
        assert_eq!(a.final_params, b.final_params, "run must be deterministic");
        assert_eq!(a.step_losses.len(), 4);
    }

    #[test]
    fn powersgd_rounds_run_and_losses_decrease() {
        let batches = synthetic_batches(30, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(2),
        };
        let mut comp = PowerSgd::new(2, 9);
        let out = train_data_parallel(|_| mlp(5), &batches, &mut comp, &cfg).unwrap();
        let early: f32 = out.step_losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = out.step_losses[25..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "PowerSGD training diverged: {early} -> {late}");
        assert!(out.breakdown.comm > Duration::ZERO);
    }

    #[test]
    fn signum_uses_allgather_accounting() {
        let batches = synthetic_batches(2, 8);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.01,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(4),
        };
        let mut comp = Signum::new(0.9);
        let out = train_data_parallel(|_| mlp(7), &batches, &mut comp, &cfg).unwrap();
        assert!(out.breakdown.comm > Duration::ZERO);
        assert!(out.breakdown.decode > Duration::ZERO);
    }

    #[test]
    fn undersized_batch_rejected() {
        let batches = synthetic_batches(1, 2);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(4),
        };
        let mut comp = NoCompression::new();
        let err = train_data_parallel(|_| mlp(1), &batches, &mut comp, &cfg).unwrap_err();
        assert_eq!(err, DistError::BatchTooSmall { rows: 2, workers: 4 });
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = DistConfig::p3(2, 0.1);
        cfg.workers = 0;
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        let mut cfg = DistConfig::p3(2, f32::NAN);
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        cfg = DistConfig::p3(2, 0.1);
        cfg.momentum = f32::INFINITY;
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        cfg = DistConfig::p3(2, 0.1);
        cfg.profile.alpha = -1.0;
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        assert!(DistConfig::p3(4, 0.1).validate().is_ok());
    }

    #[test]
    fn bad_recovery_policy_rejected() {
        let batches = synthetic_batches(1, 4);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        let opts = RunOptions {
            recovery: RecoveryPolicy { step_timeout: Duration::ZERO, ..Default::default() },
            ..Default::default()
        };
        let mut comp = NoCompression::new();
        let err =
            train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &cfg, &opts).unwrap_err();
        assert!(matches!(err, DistError::InvalidConfig { .. }));
    }

    #[test]
    fn shard_batch_extracts_contiguous_rows() {
        let batch = (Tensor::randn(&[6, 2], 1.0, 1), vec![0, 1, 2, 0, 1, 2]);
        let (x, labels) = shard_batch(&batch, 1, 3).unwrap();
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(labels, vec![2, 0]);
        assert_eq!(x.as_slice(), &batch.0.as_slice()[4..8]);
        assert!(shard_batch(&batch, 3, 3).is_err());
    }

    #[test]
    fn pool_guard_restores_width() {
        let before = puffer_tensor::pool::num_threads();
        {
            let _g = PoolWidthGuard::cap_for(64);
            assert!(puffer_tensor::pool::num_threads() <= before);
        }
        assert_eq!(puffer_tensor::pool::num_threads(), before);
    }
}
