//! Console table rendering for experiment output.

/// A simple left-aligned console table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep: String =
            widths.iter().map(|w| format!("+{}", "-".repeat(w + 2))).collect::<String>() + "+\n";
        out.push_str(&sep);
        out.push('|');
        for (h, w) in self.headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a count with thousands separators (`12,345,678`), matching the
/// paper's tables.
pub fn commas(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as `1.23x`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2"]);
        let s = t.render();
        assert!(s.contains("| name      |"));
        assert!(s.contains("| long-name | 2"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains("| x |"));
    }

    #[test]
    fn commas_grouping() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1_000), "1,000");
        assert_eq!(commas(20_560_330), "20,560,330");
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(3.0, 2.0), "1.50x");
    }
}
