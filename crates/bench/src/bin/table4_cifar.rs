//! **Table 4**: VGG-19 and ResNet-18 on CIFAR-10 — parameters, test
//! accuracy, and MACs, under both FP32 and emulated mixed precision (AMP).
//!
//! Parameter/MAC columns reproduce the paper's *exact full-scale* counts
//! from the spec ledgers; accuracy columns come from end-to-end training of
//! the width-scaled models on the synthetic CIFAR-like task (3 seeds at
//! `--full`), where the claim under test is accuracy *parity* between
//! vanilla and Pufferfish, in both precision modes.

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::spec::{resnet18_cifar, vgg19_cifar, SpecVariant};
use pufferfish::ablation::mean_std;
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let epochs = scale.pick(6, 16);
    let warmup = scale.pick(2, 5);
    let seeds = scale.seeds();
    println!(
        "== Table 4: CIFAR-10 params / accuracy / MACs (epochs={epochs}, seeds={}) ==\n",
        seeds.len()
    );

    let mut t = Table::new(vec![
        "Model Archs.",
        "# Params (full-scale)",
        "Test Acc. (synthetic)",
        "MACs (G, full-scale)",
        "Paper acc.",
    ]);

    let vgg_specs = (vgg19_cifar(SpecVariant::Vanilla), vgg19_cifar(SpecVariant::Pufferfish));
    let res_specs = (resnet18_cifar(SpecVariant::Vanilla), resnet18_cifar(SpecVariant::Pufferfish));

    for amp in [false, true] {
        let tag = if amp { "AMP" } else { "FP32" };
        for (arch, plan_kind) in [("VGG-19", 0usize), ("ResNet-18", 1usize)] {
            let mut van_accs = Vec::new();
            let mut puf_accs = Vec::new();
            for &seed in &seeds {
                let mut cfg = TrainConfig::cifar_small(epochs, 0);
                cfg.amp = amp;
                cfg.seed = seed;
                // Vanilla.
                let out = match plan_kind {
                    0 => train(setups::vgg19(10, seed), ModelPlan::None, &data, &cfg),
                    _ => train(setups::resnet18(10, seed), ModelPlan::None, &data, &cfg),
                }
                .expect("training");
                van_accs.push(out.report.final_test_accuracy() * 100.0);
                // Pufferfish (warm-up → hybrid).
                let mut cfg = TrainConfig::cifar_small(epochs, warmup);
                cfg.amp = amp;
                cfg.seed = seed;
                let out = match plan_kind {
                    0 => train(
                        setups::vgg19(10, seed),
                        ModelPlan::VggHybrid { first_low_rank: 10, rank_ratio: 0.25 },
                        &data,
                        &cfg,
                    ),
                    _ => train(
                        setups::resnet18(10, seed),
                        ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet18_paper()),
                        &data,
                        &cfg,
                    ),
                }
                .expect("training");
                puf_accs.push(out.report.final_test_accuracy() * 100.0);
            }
            let (vm, vs) = mean_std(&van_accs);
            let (pm, ps) = mean_std(&puf_accs);
            let (specs, paper_v, paper_p) = if plan_kind == 0 {
                (&vgg_specs, ("93.91", "93.89"), ("94.12", "93.98"))
            } else {
                (&res_specs, ("95.09", "94.87"), ("95.02", "94.70"))
            };
            let (paper_van, paper_puf) = if amp { (specs, paper_p) } else { (specs, paper_v) }.1;
            t.row(vec![
                format!("Vanilla {arch} ({tag})"),
                commas(specs.0.params()),
                format!("{vm:.2} ± {vs:.2}"),
                format!("{:.2}", specs.0.macs() as f64 / 1e9),
                paper_van.into(),
            ]);
            t.row(vec![
                format!("Pufferfish {arch} ({tag})"),
                commas(specs.1.params()),
                format!("{pm:.2} ± {ps:.2}"),
                format!("{:.2}", specs.1.macs() as f64 / 1e9),
                paper_puf.into(),
            ]);
            record_result(
                "table4_cifar",
                &format!("{arch} {tag}: vanilla {vm:.2}±{vs:.2} pufferfish {pm:.2}±{ps:.2}"),
            );
        }
    }
    t.print();
    println!("\nShape checks: full-scale param counts equal the paper's Table 4 exactly");
    println!("(VGG 20,560,330 -> 8,370,634; ResNet-18 +128 stem-BN delta, see DESIGN.md).");
    println!("The reproduction claim is vanilla ≈ Pufferfish accuracy in each precision row.");
}
