//! Workspace symbol table: every parsed file and every function
//! definition in one indexed view.
//!
//! The semantic rules need to answer questions that span files: "what
//! does `checkpoint::load` return?", "which functions named `round` could
//! this `self.round(...)` call resolve to?". This module owns the parsed
//! workspace ([`ParsedFile`] per `.rs` file) and a flat, deterministic
//! function index ([`SymbolTable`]) with name-based resolution.
//!
//! Resolution is intentionally conservative and name-based — there is no
//! type inference and no trait dispatch. A call resolves to the set of
//! same-name candidates, narrowed by the evidence the AST has: the
//! type-qualifier of a `Type::fn_name` path, the caller's own `Self` type
//! for `self.method()` calls, and crate proximity (same file, then same
//! crate, then workspace). Rules that consume candidate sets must treat
//! them as over-approximations.

use crate::ast::{self, FnDef};
use crate::lexer::{self, Token};
use crate::scope;
use std::collections::HashMap;
use std::path::Path;

/// One `.rs` file: lexed, test-masked, and parsed.
pub struct ParsedFile {
    /// Path relative to the scan root, `/`-separated.
    pub rel: String,
    /// Lexed tokens (comments included; indices match `mask`).
    pub tokens: Vec<Token>,
    /// Per-token `#[cfg(test)]` mask.
    pub mask: Vec<bool>,
    /// The parsed item tree.
    pub ast: ast::File,
    /// Whether the file lives under a `tests/` or `benches/` directory.
    pub is_test_file: bool,
}

impl ParsedFile {
    /// Lexes, masks, and parses one source file.
    pub fn parse(root_rel: &Path, src: &str) -> ParsedFile {
        let rel = root_rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let is_test_file = root_rel
            .components()
            .any(|c| matches!(c.as_os_str().to_str(), Some("tests") | Some("benches")));
        let tokens = lexer::lex(src);
        let mask = scope::test_mask(&tokens);
        let ast = ast::parse_file(&tokens);
        ParsedFile { rel, tokens, mask, ast, is_test_file }
    }

    /// The crate this file belongs to (`dist` for `crates/dist/src/…`),
    /// or the leading path segment outside a `crates/` layout.
    pub fn crate_name(&self) -> &str {
        if let Some(idx) = self.rel.find("crates/") {
            let rest = &self.rel[idx + "crates/".len()..];
            return rest.split('/').next().unwrap_or(rest);
        }
        self.rel.split('/').next().unwrap_or(&self.rel)
    }

    /// Whether the file is dist non-test source.
    pub fn in_dist_src(&self) -> bool {
        self.rel.contains("crates/dist/src/")
    }
}

/// One function in the workspace index.
pub struct FnSym<'a> {
    /// Index of the containing [`ParsedFile`].
    pub file: usize,
    /// The definition.
    pub def: &'a FnDef,
    /// Enclosing `impl`/`trait` self type, if any.
    pub self_ty: Option<&'a str>,
    /// Whether this fn is test code (test file, or under `#[cfg(test)]`).
    pub is_test: bool,
}

/// The workspace-wide function index.
pub struct SymbolTable<'a> {
    /// The parsed files, in scan order.
    pub files: &'a [ParsedFile],
    /// Every function, in (file, definition) order.
    pub fns: Vec<FnSym<'a>>,
    by_name: HashMap<&'a str, Vec<usize>>,
}

impl<'a> SymbolTable<'a> {
    /// Indexes every function in every parsed file.
    pub fn build(files: &'a [ParsedFile]) -> SymbolTable<'a> {
        let mut fns = Vec::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (fi, pf) in files.iter().enumerate() {
            for (def, self_ty) in ast::collect_fns(&pf.ast) {
                let in_test_scope =
                    pf.mask.get(def.name_tok).copied().unwrap_or(false) || pf.is_test_file;
                let id = fns.len();
                by_name.entry(def.name.as_str()).or_default().push(id);
                fns.push(FnSym { file: fi, def, self_ty, is_test: in_test_scope });
            }
        }
        SymbolTable { files, fns, by_name }
    }

    /// All functions with this name, any crate, tests included.
    pub fn all_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// `Trainer::run` for methods, `run` for free fns.
    pub fn display_name(&self, id: usize) -> String {
        let f = &self.fns[id];
        match f.self_ty {
            Some(ty) => format!("{ty}::{}", f.def.name),
            None => f.def.name.clone(),
        }
    }

    fn crate_of(&self, file: usize) -> &str {
        self.files[file].crate_name()
    }

    /// Non-test candidates for a path call (`f(…)`, `Type::f(…)`),
    /// narrowed by type qualifier and crate proximity.
    pub fn candidates_for_call(&self, from_file: usize, path: &[String]) -> Vec<usize> {
        let Some(name) = path.last() else { return Vec::new() };
        let all = self.all_named(name);
        let live: Vec<usize> = all.iter().copied().filter(|&id| !self.fns[id].is_test).collect();
        if live.is_empty() {
            return live;
        }
        // `Type::f` — the qualifier names the impl's self type.
        if path.len() >= 2 {
            let qual = &path[path.len() - 2];
            if qual.chars().next().is_some_and(char::is_uppercase) {
                let typed: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].self_ty == Some(qual.as_str()))
                    .collect();
                if !typed.is_empty() {
                    return self.prefer_near(from_file, typed);
                }
            }
        }
        // Bare or module-qualified call: free functions first.
        let free: Vec<usize> =
            live.iter().copied().filter(|&id| self.fns[id].self_ty.is_none()).collect();
        let pool = if free.is_empty() { live } else { free };
        self.prefer_near(from_file, pool)
    }

    /// Non-test candidates for a method call `recv.name(…)`. With
    /// `recv_is_self`, the caller's own impl type narrows the set.
    pub fn candidates_for_method(
        &self,
        from_file: usize,
        caller_self_ty: Option<&str>,
        recv_is_self: bool,
        name: &str,
    ) -> Vec<usize> {
        let live: Vec<usize> = self
            .all_named(name)
            .iter()
            .copied()
            .filter(|&id| {
                let f = &self.fns[id];
                !f.is_test && f.def.has_self
            })
            .collect();
        if recv_is_self {
            if let Some(ty) = caller_self_ty {
                let own: Vec<usize> =
                    live.iter().copied().filter(|&id| self.fns[id].self_ty == Some(ty)).collect();
                if !own.is_empty() {
                    return self.prefer_near(from_file, own);
                }
            }
        }
        // Without receiver types, same-crate candidates are the honest
        // over-approximation; cross-crate method dispatch is a documented
        // analysis boundary.
        let near: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&id| self.crate_of(self.fns[id].file) == self.crate_of(from_file))
            .collect();
        near
    }

    /// Same-file candidates beat same-crate, which beat the rest.
    fn prefer_near(&self, from_file: usize, pool: Vec<usize>) -> Vec<usize> {
        let same_file: Vec<usize> =
            pool.iter().copied().filter(|&id| self.fns[id].file == from_file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let from_crate = self.crate_of(from_file);
        let same_crate: Vec<usize> = pool
            .iter()
            .copied()
            .filter(|&id| self.crate_of(self.fns[id].file) == from_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        pool
    }

    /// Whether every non-test definition of `name` (optionally narrowed
    /// to `Type::name`) returns a `Result`-headed type. Alias-friendly:
    /// any head *ending* in `Result` counts (`DistResult`, `io::Result`).
    pub fn returns_result(&self, candidates: &[usize]) -> bool {
        !candidates.is_empty()
            && candidates
                .iter()
                .all(|&id| self.fns[id].def.ret_head().is_some_and(|h| h.ends_with("Result")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources.iter().map(|(rel, src)| ParsedFile::parse(Path::new(rel), src)).collect()
    }

    #[test]
    fn crate_name_derivation() {
        let fs = files(&[("crates/dist/src/trainer.rs", "fn a() {}"), ("src/main.rs", "")]);
        assert_eq!(fs[0].crate_name(), "dist");
        assert!(fs[0].in_dist_src());
        assert_eq!(fs[1].crate_name(), "src");
    }

    #[test]
    fn test_fns_marked_and_filtered() {
        let fs = files(&[(
            "crates/dist/src/x.rs",
            "fn live() {} #[cfg(test)] mod t { fn helper() {} }",
        )]);
        let table = SymbolTable::build(&fs);
        let live = table.all_named("live");
        assert_eq!(live.len(), 1);
        assert!(!table.fns[live[0]].is_test);
        let helper = table.all_named("helper");
        assert!(table.fns[helper[0]].is_test);
        assert!(table.candidates_for_call(0, &["helper".into()]).is_empty());
    }

    #[test]
    fn type_qualified_calls_narrow_to_impl() {
        let fs = files(&[(
            "crates/dist/src/x.rs",
            "impl Checkpoint { fn load() -> DistResult<u32> { Ok(1) } } \
             fn load() -> u32 { 2 }",
        )]);
        let table = SymbolTable::build(&fs);
        let typed = table.candidates_for_call(0, &["Checkpoint".into(), "load".into()]);
        assert_eq!(typed.len(), 1);
        assert_eq!(table.display_name(typed[0]), "Checkpoint::load");
        assert!(table.returns_result(&typed));
        let bare = table.candidates_for_call(0, &["load".into()]);
        assert_eq!(bare.len(), 1);
        assert!(!table.returns_result(&bare));
    }

    #[test]
    fn self_method_calls_prefer_own_impl() {
        let fs = files(&[(
            "crates/dist/src/x.rs",
            "impl A { fn go(&self) {} } impl B { fn go(&self) {} }",
        )]);
        let table = SymbolTable::build(&fs);
        let own = table.candidates_for_method(0, Some("A"), true, "go");
        assert_eq!(own.len(), 1);
        assert_eq!(table.display_name(own[0]), "A::go");
        // A non-self receiver keeps both same-crate candidates.
        assert_eq!(table.candidates_for_method(0, Some("A"), false, "go").len(), 2);
    }

    #[test]
    fn method_resolution_stays_in_crate() {
        let fs = files(&[
            ("crates/dist/src/x.rs", "fn caller() {}"),
            ("crates/tensor/src/y.rs", "impl T { fn norm(&self) {} }"),
        ]);
        let table = SymbolTable::build(&fs);
        assert!(table.candidates_for_method(0, None, false, "norm").is_empty());
    }

    #[test]
    fn result_aliases_count_as_result() {
        let fs = files(&[(
            "crates/dist/src/x.rs",
            "fn a() -> DistResult<()> { Ok(()) } fn b() -> std::io::Result<u8> { Ok(0) } \
             fn c() -> u32 { 1 }",
        )]);
        let table = SymbolTable::build(&fs);
        assert!(table.returns_result(table.all_named("a")));
        assert!(table.returns_result(table.all_named("b")));
        assert!(!table.returns_result(table.all_named("c")));
        assert!(!table.returns_result(&[]));
    }
}
