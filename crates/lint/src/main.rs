//! CLI for `puffer-lint`.
//!
//! ```text
//! cargo run --release -p puffer-lint                # lint the workspace
//! cargo run --release -p puffer-lint -- --json      # machine-readable
//! cargo run --release -p puffer-lint -- --rules dist-no-panic,dep-allowlist
//! cargo run --release -p puffer-lint -- --root path/to/tree
//! cargo run --release -p puffer-lint -- --list      # print the rule catalog
//! cargo run --release -p puffer-lint -- --explain lock-order-consistency
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use puffer_lint::{run, Config, RULES};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: puffer-lint [--root DIR] [--rules a,b,...] [--json] [--list] [--explain RULE]"
}

/// Prints one rule's rationale and minimal before/after example. The
/// catalog in `RULES` is the single source of truth — DESIGN.md's §8
/// table is checked against it by `catalog_docs_sync`.
fn explain(name: &str) -> ExitCode {
    let Some(rule) = RULES.iter().find(|r| r.name == name) else {
        eprintln!(
            "unknown rule `{name}` (known: {})",
            RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{}", rule.name);
    println!("  {}\n", rule.description);
    println!("why:");
    println!("  {}\n", rule.rationale);
    println!("violates:");
    for line in rule.example_bad.lines() {
        println!("    {line}");
    }
    println!("\nfixed:");
    for line in rule.example_good.lines() {
        println!("    {line}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut config = Config::new(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => {
                for rule in RULES {
                    println!("{:30} {}", rule.name, rule.description);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(name) => return explain(&name),
                None => {
                    eprintln!("--explain needs a rule name\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => config.root = dir.into(),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--rules" => match args.next().map(|s| puffer_lint::parse_rules_filter(&s)) {
                Some(Ok(set)) => config.rules = Some(set),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--rules needs a comma-separated list\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("puffer-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{}:{}:{}: {}: {}", d.file, d.line, d.col, d.rule, d.message);
        }
        eprintln!(
            "puffer-lint: {} finding(s) across {} source file(s), {} manifest(s)",
            report.diagnostics.len(),
            report.files_scanned,
            report.manifests_scanned
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
