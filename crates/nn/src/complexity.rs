//! Analytic parameter counts and computational complexity (MACs) for
//! vanilla and factorized layers — the closed forms of the paper's Table 1.
//!
//! These formulas are cross-checked in tests against instantiated layers
//! (for parameter counts) and used by the model zoo to reproduce the exact
//! parameter numbers the paper reports in Tables 2–5 and 7.

/// Parameters of a vanilla FC layer `W ∈ R^{m×n}`.
pub fn fc_params(m: u64, n: u64) -> u64 {
    m * n
}

/// Parameters of a factorized FC layer at rank `r`: `r(m+n)`.
pub fn fc_low_rank_params(m: u64, n: u64, r: u64) -> u64 {
    r * (m + n)
}

/// MACs of a vanilla FC layer for one input vector.
pub fn fc_macs(m: u64, n: u64) -> u64 {
    m * n
}

/// MACs of a factorized FC layer for one input vector.
pub fn fc_low_rank_macs(m: u64, n: u64, r: u64) -> u64 {
    r * (m + n)
}

/// Parameters of a vanilla convolution `c_in × c_out × k × k`.
pub fn conv_params(c_in: u64, c_out: u64, k: u64) -> u64 {
    c_in * c_out * k * k
}

/// Parameters of a factorized convolution: `c_in·r·k² + r·c_out`.
pub fn conv_low_rank_params(c_in: u64, c_out: u64, k: u64, r: u64) -> u64 {
    c_in * r * k * k + r * c_out
}

/// MACs of a vanilla convolution over an `H×W` output map:
/// `c_in·c_out·k²·H·W`.
pub fn conv_macs(c_in: u64, c_out: u64, k: u64, h: u64, w: u64) -> u64 {
    c_in * c_out * k * k * h * w
}

/// MACs of a factorized convolution: `r·c_in·k²·H·W + r·H·W·c_out`.
pub fn conv_low_rank_macs(c_in: u64, c_out: u64, k: u64, r: u64, h: u64, w: u64) -> u64 {
    r * c_in * k * k * h * w + r * h * w * c_out
}

/// Parameters of a vanilla LSTM layer (single bias per gate, as the paper
/// counts): `4(dh + h²) + 4h`.
pub fn lstm_params(d: u64, h: u64) -> u64 {
    4 * (d * h + h * h) + 4 * h
}

/// Parameters of a per-gate factorized LSTM layer at rank `r`:
/// `4dr + 12hr + 4h` (Table 1 plus the biases).
pub fn lstm_low_rank_params(d: u64, h: u64, r: u64) -> u64 {
    4 * d * r + 12 * h * r + 4 * h
}

/// MACs of a vanilla LSTM layer per token: `4(dh + h²)`.
pub fn lstm_macs(d: u64, h: u64) -> u64 {
    4 * (d * h + h * h)
}

/// MACs of a factorized LSTM layer per token: `4(dr + rh) + 4(hr + rh)`.
pub fn lstm_low_rank_macs(d: u64, h: u64, r: u64) -> u64 {
    4 * (d * r + r * h) + 4 * (h * r + r * h)
}

/// Parameters of a vanilla multi-head attention block with model dimension
/// `pd = p·d`: `4(pd)² = 4p²d²` (bias-free projections, as in the original
/// Transformer and the paper's reference implementation).
pub fn attention_params(p: u64, d: u64) -> u64 {
    4 * p * p * d * d
}

/// Parameters of a factorized attention block at rank `r`:
/// `(3p + 5)·p·r·d` (Table 1). With concatenated-head factorization this
/// equals `4·r·(pd + pd) = 8prd`; the paper's per-head form counts
/// `3p(pdr + rd) + (pdr + rpd) = prd(3p+5)`.
pub fn attention_low_rank_params(p: u64, d: u64, r: u64) -> u64 {
    (3 * p + 5) * p * r * d
}

/// Parameters of a vanilla Transformer FFN (`pd → 4pd → pd`): `8p²d²`.
pub fn ffn_params(p: u64, d: u64) -> u64 {
    8 * p * p * d * d
}

/// Parameters of a factorized FFN at rank `r`: `10pdr` (Table 1).
pub fn ffn_low_rank_params(p: u64, d: u64, r: u64) -> u64 {
    10 * p * d * r
}

/// MACs of one vanilla attention block over a length-`n` sequence:
/// `O(N p² d² + N² d)` — we return the exact MAC count
/// `4·N·(pd)² + 2·N²·pd` (projections + scores + weighted values).
pub fn attention_macs(p: u64, d: u64, n: u64) -> u64 {
    let pd = p * d;
    4 * n * pd * pd + 2 * n * n * pd
}

/// MACs of one factorized attention block: `8·N·r·pd + 2·N²·pd`.
pub fn attention_low_rank_macs(p: u64, d: u64, r: u64, n: u64) -> u64 {
    let pd = p * d;
    8 * n * r * pd + 2 * n * n * pd
}

/// MACs of one vanilla FFN over a length-`n` sequence: `8·N·(pd)²`.
pub fn ffn_macs(p: u64, d: u64, n: u64) -> u64 {
    8 * n * (p * d) * (p * d)
}

/// MACs of one factorized FFN: `10·N·r·pd`.
pub fn ffn_low_rank_macs(p: u64, d: u64, r: u64, n: u64) -> u64 {
    10 * n * r * p * d
}

/// Compression ratio `vanilla / factorized` as f64.
pub fn ratio(vanilla: u64, factorized: u64) -> f64 {
    vanilla as f64 / factorized as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_formulas() {
        assert_eq!(fc_params(512, 512), 262_144);
        assert_eq!(fc_low_rank_params(512, 512, 128), 131_072);
        // Factorization shrinks iff r < mn/(m+n).
        assert!(fc_low_rank_params(512, 512, 128) < fc_params(512, 512));
        assert!(fc_low_rank_params(512, 512, 300) > fc_params(512, 512) / 2);
    }

    #[test]
    fn conv_formulas_vgg_conv10() {
        // The paper's VGG conv10: 512→512 k=3, r=128 (appendix Table 11).
        assert_eq!(conv_params(512, 512, 3), 2_359_296);
        assert_eq!(conv_low_rank_params(512, 512, 3, 128), 589_824 + 65_536);
    }

    #[test]
    fn lstm_formulas_match_paper_table2() {
        // Paper LSTM: d = h = 1500, r = 375, vocab 33278, tied embedding.
        let (d, h, r) = (1500u64, 1500u64, 375u64);
        let embed = 33_278 * 1_500;
        let decoder_bias = 33_278;
        let vanilla = embed + 2 * lstm_params(d, h) + decoder_bias;
        assert_eq!(vanilla, 85_962_278); // Table 2
        let low_rank = embed + 2 * lstm_low_rank_params(d, h, r) + decoder_bias;
        assert_eq!(low_rank, 67_962_278); // Table 2
    }

    #[test]
    fn transformer_block_formulas() {
        // p = 8 heads, d = 64 → pd = 512, r = 128.
        let (p, d, r) = (8u64, 64u64, 128u64);
        assert_eq!(attention_params(p, d), 4 * 512 * 512);
        assert_eq!(ffn_params(p, d), 8 * 512 * 512);
        // Per-head accounting from Table 1 equals concatenated accounting:
        // (3p+5)prd = 29·8·128·64 = 8·r·pd + ... — check the closed form.
        assert_eq!(attention_low_rank_params(p, d, r), (3 * 8 + 5) * 8 * 128 * 64);
        assert_eq!(ffn_low_rank_params(p, d, r), 10 * 512 * 128);
    }

    #[test]
    fn macs_shrink_with_rank() {
        assert!(conv_low_rank_macs(512, 512, 3, 128, 4, 4) < conv_macs(512, 512, 3, 4, 4));
        assert!(lstm_low_rank_macs(1500, 1500, 375) < lstm_macs(1500, 1500));
        assert!(attention_low_rank_macs(8, 64, 128, 32) < attention_macs(8, 64, 32));
        assert!(ffn_low_rank_macs(8, 64, 128, 32) < ffn_macs(8, 64, 32));
    }

    #[test]
    fn ratio_helper() {
        assert!((ratio(4, 2) - 2.0).abs() < 1e-12);
    }
}
