//! Straggler sweep for the fault-tolerant data-parallel trainer.
//!
//! Trains the vanilla ResNet-18 and its Pufferfish hybrid with the
//! threaded trainer while one worker is slowed 1×–8× by injected compute
//! delay, at 4 and 8 workers, and reports throughput (steps/s of modeled
//! wall-clock). Synchronous SGD runs at the pace of the slowest member, so
//! throughput degrades with the straggler factor for *both* models — but
//! the Pufferfish hybrid's smaller gradient keeps its per-step
//! communication cheaper at every slowdown. A machine-readable record
//! lands in `BENCH_faults.json` at the workspace root.
//!
//! Usage: `cargo run --release -p puffer-bench --bin fault_sweep`
//! (`PUFFER_BENCH_SCALE=full` widens the run).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::none::NoCompression;
use puffer_dist::fault::FaultPlan;
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RunOptions};
use puffer_models::resnet::{ResNet, ResNetHybridPlan};
use puffer_models::units::FactorInit;
use puffer_tensor::Tensor;

const SEED: u64 = 42;

fn batches(n: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n)
        .map(|b| {
            let x = Tensor::randn(&[batch, 3, 8, 8], 1.0, 500 + b as u64);
            let labels = (0..batch).map(|i| (i + b) % 4).collect();
            (x, labels)
        })
        .collect()
}

fn build(model: &str, seed: u64) -> ResNet {
    let net = setups::resnet18(4, seed);
    if model == "pufferfish" {
        net.to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart).expect("hybrid")
    } else {
        net
    }
}

fn main() {
    let scale = RunScale::from_env();
    let steps = scale.pick(3, 8);
    let data = batches(steps, 32);
    let slowdowns = [1.0f64, 2.0, 4.0, 8.0];
    let worker_counts = [4usize, 8];

    let mut t = Table::new(vec!["model", "workers", "slowdown", "total_s", "steps/s", "comm_s"]);
    let mut entries = Vec::new();
    for model in ["vanilla", "pufferfish"] {
        for &workers in &worker_counts {
            for &slowdown in &slowdowns {
                let cfg = DistConfig::p3(workers, 0.05);
                // One straggler: the highest-indexed worker runs `slowdown`
                // times slower than its measured compute.
                let faults = if slowdown > 1.0 {
                    FaultPlan::new(SEED).with_slowdown(workers - 1, slowdown)
                } else {
                    FaultPlan::none()
                };
                let opts = RunOptions { faults, ..RunOptions::default() };
                let mut comp = NoCompression::new();
                let out =
                    train_data_parallel_with(|_| build(model, 5), &data, &mut comp, &cfg, &opts)
                        .expect("sweep run");
                assert!(out.faults.is_clean(), "straggler must not be declared dead");
                let total = out.breakdown.total().as_secs_f64();
                let throughput = steps as f64 / total;
                let comm = out.breakdown.comm.as_secs_f64();
                t.row(vec![
                    model.into(),
                    format!("{workers}"),
                    format!("{slowdown:.0}x"),
                    format!("{total:.3}"),
                    format!("{throughput:.3}"),
                    format!("{comm:.4}"),
                ]);
                record_result(
                    "fault_sweep",
                    &format!(
                        "model={model} workers={workers} slowdown={slowdown:.0} \
                         total_s={total:.4} steps_per_s={throughput:.4} comm_s={comm:.5}"
                    ),
                );
                entries.push(format!(
                    "    {{ \"model\": \"{model}\", \"workers\": {workers}, \
                     \"slowdown\": {slowdown:.1}, \"steps\": {steps}, \
                     \"total_s\": {total:.4}, \"steps_per_s\": {throughput:.4}, \
                     \"comm_s\": {comm:.5} }}"
                ));
            }
        }
    }
    t.print();
    println!("\nsynchronous SGD paces at the slowest member: throughput falls with the straggler");
    println!("factor while the hybrid keeps the cheaper communication at every slowdown.");

    let json = format!(
        "{{\n  \"bench\": \"fault_sweep\",\n  \"trainer\": \"threaded data-parallel, fault-injected straggler on the last worker\",\n  \"seed\": {SEED},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../.."))
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join("BENCH_faults.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
