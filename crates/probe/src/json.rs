//! Minimal JSON support: escaping for the exporters and a small
//! recursive-descent parser used to schema-check emitted traces.
//!
//! The probe crate is deliberately zero-dependency, so it carries its own
//! JSON writer *and* reader. The parser accepts standard JSON (RFC 8259)
//! minus niceties nobody emits here (no `\u` surrogate pairs are split
//! across escapes in our own output, but the parser still handles them).

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite `f64` without trailing noise; non-finite values become
/// `null` (Chrome's trace viewer rejects bare `NaN`).
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("invalid \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: find the full scalar in the source.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// What a validated Chrome trace contains, for assertions in tests.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total event count.
    pub events: usize,
    /// Complete ("X") span count.
    pub spans: usize,
    /// Instant ("i") event count.
    pub instants: usize,
    /// Counter ("C") sample count.
    pub counters: usize,
    /// Distinct event names.
    pub names: BTreeSet<String>,
    /// Distinct categories.
    pub cats: BTreeSet<String>,
    /// Distinct thread ids.
    pub tids: BTreeSet<u64>,
    /// Distinct thread names from metadata events.
    pub thread_names: BTreeSet<String>,
}

impl TraceSummary {
    /// Whether an event with this exact name appears.
    pub fn has_name(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Whether a thread with this name prefix appears.
    pub fn has_thread_prefix(&self, prefix: &str) -> bool {
        self.thread_names.iter().any(|t| t.starts_with(prefix))
    }
}

/// Validates that `s` is a Chrome `chrome://tracing` trace-event JSON
/// array: every element is an object with a string `name`/`ph`/`cat`,
/// numeric `pid`/`tid`/`ts`, a non-negative `dur` on complete events, and
/// an object `args` when present.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_chrome_trace(s: &str) -> Result<TraceSummary, String> {
    let doc = parse(s)?;
    let events = doc.as_arr().ok_or("trace must be a JSON array")?;
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: bad or missing {field}");
        let name = ev.get("name").and_then(Json::as_str).ok_or_else(|| ctx("name"))?;
        let ph = ev.get("ph").and_then(Json::as_str).ok_or_else(|| ctx("ph"))?;
        ev.get("pid").and_then(Json::as_num).ok_or_else(|| ctx("pid"))?;
        let tid = ev.get("tid").and_then(Json::as_num).ok_or_else(|| ctx("tid"))?;
        let ts = ev.get("ts").and_then(Json::as_num).ok_or_else(|| ctx("ts"))?;
        if ts < 0.0 {
            return Err(ctx("ts (negative)"));
        }
        if let Some(args) = ev.get("args") {
            if !matches!(args, Json::Obj(_)) {
                return Err(ctx("args (not an object)"));
            }
        }
        match ph {
            "X" => {
                let dur = ev.get("dur").and_then(Json::as_num).ok_or_else(|| ctx("dur"))?;
                if dur < 0.0 {
                    return Err(ctx("dur (negative)"));
                }
                summary.spans += 1;
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            "M" => {
                if name == "thread_name" {
                    if let Some(t) =
                        ev.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    {
                        summary.thread_names.insert(t.to_string());
                    }
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
        if ph != "M" {
            let cat = ev.get("cat").and_then(Json::as_str).ok_or_else(|| ctx("cat"))?;
            summary.cats.insert(cat.to_string());
        }
        summary.names.insert(name.to_string());
        summary.tids.insert(tid as u64);
        summary.events += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_escapes() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}é");
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\u{1}é".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false]}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "[1] x", "tru", "1.2.3"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn validates_minimal_trace() {
        let trace = r#"[
          {"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"main"}},
          {"name":"work","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":5,"args":{"n":3}},
          {"name":"fault.crash","cat":"fault","ph":"i","pid":1,"tid":1,"ts":1,"s":"t"},
          {"name":"bytes","cat":"m","ph":"C","pid":1,"tid":1,"ts":2,"args":{"value":10}}
        ]"#;
        let s = validate_chrome_trace(trace).unwrap();
        assert_eq!((s.spans, s.instants, s.counters), (1, 1, 1));
        assert!(s.has_name("fault.crash") && s.has_thread_prefix("main"));
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(validate_chrome_trace(r#"{"name":"x"}"#).is_err());
        assert!(validate_chrome_trace(r#"[{"ph":"X","pid":1,"tid":1,"ts":0}]"#).is_err());
        assert!(
            validate_chrome_trace(r#"[{"name":"a","cat":"c","ph":"X","pid":1,"tid":1,"ts":0}]"#)
                .is_err(),
            "X without dur must fail"
        );
    }
}
