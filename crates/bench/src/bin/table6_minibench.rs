//! **Table 6** (and **Table 20** with `--optimized`): runtime
//! mini-benchmark — per-epoch training wall-clock of vanilla vs Pufferfish
//! VGG-19 and ResNet-18, single process.
//!
//! Table 6 uses the reproducibility-optimized compute profile; `--optimized`
//! switches to the speed-optimized profile (the paper's appendix-J cuDNN
//! setting), under which the factorized network's advantage shrinks — the
//! shape we reproduce. Results are averaged over several measured epochs,
//! as in the paper (10 epochs, batch 128 on a V100; here bench scale on
//! CPU).

use puffer_bench::scale::{optimized_flag, RunScale};
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_probe::Stopwatch;
use puffer_tensor::matmul::{set_default_profile, MatmulProfile};

fn epoch_time<M: Layer>(
    model: &mut M,
    data: &puffer_data::images::ImageDataset,
    reps: usize,
) -> (f64, f64) {
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut times = Vec::new();
    for rep in 0..reps {
        let t0 = Stopwatch::start();
        for (images, labels) in data.train_batches(32, rep as u64) {
            model.zero_grad();
            let logits = model.forward(&images, Mode::Train);
            let (_, dl) = softmax_cross_entropy(&logits, &labels, 0.0).expect("loss");
            let _ = model.backward(&dl);
            opt.step(&mut model.params_mut());
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / times.len() as f64;
    (mean, var.sqrt())
}

fn main() {
    let scale = RunScale::from_env();
    let optimized = optimized_flag();
    set_default_profile(if optimized {
        MatmulProfile::Optimized
    } else {
        MatmulProfile::Reproducible
    });
    let profile_name =
        if optimized { "speed-optimized (Table 20)" } else { "reproducible (Table 6)" };
    let data = setups::cifar_data(scale);
    let reps = scale.pick(2, 5);
    println!("== Runtime mini-benchmark, {profile_name} profile, {reps} epochs ==\n");

    let mut t = Table::new(vec!["Model Archs.", "Epoch Time (sec.)", "Speedup", "paper speedup"]);

    // VGG-19.
    let mut vanilla = setups::vgg19(10, 1);
    let (vm, vs) = epoch_time(&mut vanilla, &data, reps);
    let mut puffer = vanilla.to_hybrid(10, 0.25, FactorInit::WarmStart).expect("hybrid");
    let (pm, ps) = epoch_time(&mut puffer, &data, reps);
    t.row(vec!["Vanilla VGG-19".into(), format!("{vm:.2} ± {vs:.2}"), "-".into(), "-".into()]);
    t.row(vec![
        "Pufferfish VGG-19".into(),
        format!("{pm:.2} ± {ps:.2}"),
        format!("{:.2}x", vm / pm),
        if optimized { "1.01x" } else { "1.23x" }.into(),
    ]);
    record_result(
        "table6_minibench",
        &format!("{profile_name} vgg19 {vm:.3}s -> {pm:.3}s ({:.2}x)", vm / pm),
    );

    // ResNet-18.
    let mut vanilla = setups::resnet18(10, 1);
    let (vm, vs) = epoch_time(&mut vanilla, &data, reps);
    let mut puffer = vanilla
        .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart)
        .expect("hybrid");
    let (pm, ps) = epoch_time(&mut puffer, &data, reps);
    t.row(vec!["Vanilla ResNet-18".into(), format!("{vm:.2} ± {vs:.2}"), "-".into(), "-".into()]);
    t.row(vec![
        "Pufferfish ResNet-18".into(),
        format!("{pm:.2} ± {ps:.2}"),
        format!("{:.2}x", vm / pm),
        if optimized { "1.16x" } else { "1.48x" }.into(),
    ]);
    record_result(
        "table6_minibench",
        &format!("{profile_name} resnet18 {vm:.3}s -> {pm:.3}s ({:.2}x)", vm / pm),
    );

    t.print();
    println!("\nshape under reproduction: Pufferfish > 1x speedup, larger for ResNet-18 than");
    println!("VGG-19, and smaller under the speed-optimized profile (run with --optimized).");
}
