//! Thread-local scratch arenas: size-bucketed reuse of `f32` buffers.
//!
//! Every dense kernel and every [`Tensor`](crate::Tensor) constructor in
//! this crate draws its storage from here, and [`Tensor`](crate::Tensor)'s
//! `Drop` returns the storage, so a steady-state training step — one that
//! repeats the allocation pattern of the previous step — performs **zero**
//! fresh heap allocations: every `take` is served from a buffer the
//! previous step returned.
//!
//! # Architecture
//!
//! Each OS thread owns a private arena (a `thread_local!`), holding free
//! buffers in power-of-two size classes: class `c` keeps `Vec<f32>`s with
//! `capacity ≥ 2^c`. Taking a buffer of length `len` pops from class
//! `⌈log₂ len⌉`; recycling keys the buffer at `⌊log₂ capacity⌋`, so any
//! buffer found in a class is always large enough for any request routed
//! to that class. There is no cross-thread free list and no locking: the
//! threaded GEMM path stays lock-free, and a buffer that migrates between
//! threads inside a `Tensor` (e.g. through a channel) is simply recycled
//! into the arena of whichever thread drops it.
//!
//! # Determinism
//!
//! Pooled execution is **bitwise identical** to fresh allocation: every
//! buffer handed out is either fully zeroed ([`take_zeroed`], [`take`]) or
//! fully overwritten from a source slice ([`take_copied`]) before any
//! element can be read, so recycled contents can never leak into results.
//! Kernels that rely on zero-initialized output (`pack_b`'s panel padding,
//! `im2col`'s implicit zero padding) see exactly the state a fresh
//! `vec![0.0; len]` would give them. [`set_enabled`] switches the whole
//! subsystem off so tests can compare pooled and fresh execution bit for
//! bit.
//!
//! # Counters
//!
//! When the probe layer is on, the workspace records:
//!
//! * `alloc.pool_hits` — takes served from a recycled buffer;
//! * `alloc.pool_misses` — takes that had to touch the heap (every take
//!   counts as a miss while the workspace is disabled, so the same counter
//!   measures the allocation rate of pooled *and* fresh execution);
//! * `alloc.fresh_bytes` — bytes of fresh heap capacity those misses
//!   requested.
//!
//! The steady-state test suite asserts that after a two-step warm-up a
//! training step advances `alloc.pool_misses` by zero.

use puffer_probe as probe;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// One free list per power-of-two size class.
const N_CLASSES: usize = usize::BITS as usize;

/// Per-thread cap on retained free bytes; recycling beyond it frees the
/// buffer instead, bounding worst-case memory held by idle threads.
const MAX_ARENA_BYTES: usize = 256 << 20;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns buffer reuse on or off process-wide (default: on).
///
/// While disabled, every take allocates fresh storage and every recycle
/// frees — the exact allocation behaviour the crate had without the
/// workspace. Results are bitwise identical either way; tests and the
/// `alloc_churn` benchmark use this to compare the two regimes.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether buffer reuse is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct Arena {
    /// `free[c]` holds buffers with `capacity ≥ 2^c`.
    free: Vec<Vec<Vec<f32>>>,
    held_bytes: usize,
}

impl Arena {
    fn new() -> Self {
        Arena { free: (0..N_CLASSES).map(|_| Vec::new()).collect(), held_bytes: 0 }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Smallest class whose buffers can hold `len` elements: `⌈log₂ len⌉`.
#[inline]
fn class_for_len(len: usize) -> usize {
    debug_assert!(len > 0);
    (usize::BITS - (len - 1).leading_zeros()) as usize
}

/// Class a buffer of `capacity` belongs to: `⌊log₂ capacity⌋`, so every
/// buffer filed under class `c` has `capacity ≥ 2^c`.
#[inline]
fn class_for_capacity(capacity: usize) -> usize {
    debug_assert!(capacity > 0);
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

/// Pops a pooled buffer (length 0, capacity ≥ `len`) or allocates fresh.
fn take_raw(len: usize) -> Vec<f32> {
    if enabled() {
        // `try_with` so a take during thread-local teardown degrades to a
        // fresh allocation instead of panicking.
        let reused = ARENA
            .try_with(|cell| {
                let mut arena = cell.borrow_mut();
                let buf = arena.free[class_for_len(len)].pop();
                if let Some(b) = &buf {
                    arena.held_bytes -= b.capacity() * std::mem::size_of::<f32>();
                }
                buf
            })
            .ok()
            .flatten();
        if let Some(mut buf) = reused {
            probe::counter_add("alloc.pool_hits", 1);
            buf.clear();
            return buf;
        }
    }
    let cap = if enabled() { 1usize << class_for_len(len) } else { len };
    probe::counter_add("alloc.pool_misses", 1);
    probe::counter_add("alloc.fresh_bytes", (cap * std::mem::size_of::<f32>()) as u64);
    Vec::with_capacity(cap)
}

/// An empty pooled buffer with capacity for at least `len` elements.
///
/// Callers push/extend exactly `len` elements; used when every element is
/// produced sequentially so zero-initialization would be a wasted pass.
pub fn take_with_capacity(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    take_raw(len)
}

/// A pooled buffer of exactly `len` zeros — the pooled `vec![0.0; len]`.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let mut buf = take_raw(len);
    buf.resize(len, 0.0);
    buf
}

/// A pooled buffer holding a copy of `src` — the pooled `src.to_vec()`.
pub fn take_copied(src: &[f32]) -> Vec<f32> {
    if src.is_empty() {
        return Vec::new();
    }
    let mut buf = take_raw(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a buffer to the current thread's arena (or frees it when the
/// workspace is disabled, the buffer has no capacity, or the arena is at
/// its byte cap).
pub fn recycle(buf: Vec<f32>) {
    let capacity = buf.capacity();
    if capacity == 0 || !enabled() {
        return;
    }
    let bytes = capacity * std::mem::size_of::<f32>();
    // Dropped silently during thread-local teardown: the buffer is simply
    // freed, which is always sound.
    let _ = ARENA.try_with(move |cell| {
        let mut arena = cell.borrow_mut();
        if arena.held_bytes + bytes <= MAX_ARENA_BYTES {
            arena.held_bytes += bytes;
            arena.free[class_for_capacity(capacity)].push(buf);
        }
    });
}

/// Frees every buffer held by the current thread's arena (test isolation).
pub fn clear_thread_arena() {
    let _ = ARENA.try_with(|cell| {
        let mut arena = cell.borrow_mut();
        for class in &mut arena.free {
            class.clear();
        }
        arena.held_bytes = 0;
    });
}

/// Bytes currently held by the calling thread's free lists.
pub fn thread_arena_bytes() -> usize {
    ARENA.try_with(|cell| cell.borrow().held_bytes).unwrap_or(0)
}

/// A zeroed scratch buffer borrowed from the pool; RAII-returned on drop.
///
/// Dereferences to `[f32]`, so kernels use it exactly like the
/// `Vec<f32>` it replaces.
pub struct ScratchBuf {
    buf: Vec<f32>,
}

impl ScratchBuf {
    /// The buffer as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// The buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Deref for ScratchBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.buf));
    }
}

/// Takes a zeroed scratch buffer of `len` elements from the pool.
pub fn take(len: usize) -> ScratchBuf {
    ScratchBuf { buf: take_zeroed(len) }
}

/// The workspace facade: associated-function spellings of the module API.
pub struct Workspace;

impl Workspace {
    /// See [`take`].
    pub fn take(len: usize) -> ScratchBuf {
        take(len)
    }

    /// See [`take_zeroed`].
    pub fn take_zeroed(len: usize) -> Vec<f32> {
        take_zeroed(len)
    }

    /// See [`take_copied`].
    pub fn take_copied(src: &[f32]) -> Vec<f32> {
        take_copied(src)
    }

    /// See [`recycle`].
    pub fn recycle(buf: Vec<f32>) {
        recycle(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes() {
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(1024), 10);
        assert_eq!(class_for_len(1025), 11);
        assert_eq!(class_for_capacity(1), 0);
        assert_eq!(class_for_capacity(1023), 9);
        assert_eq!(class_for_capacity(1024), 10);
        // Invariant: anything recycled into a class satisfies any take
        // routed to that class.
        for cap in [1usize, 2, 3, 7, 8, 9, 100, 1 << 20] {
            for len in 1..=cap {
                if class_for_capacity(cap) == class_for_len(len) {
                    assert!(cap >= len);
                }
            }
        }
    }

    #[test]
    fn take_zeroed_is_zeroed_after_dirty_recycle() {
        let mut dirty = vec![7.5f32; 100];
        dirty.reserve(28); // capacity 128 → class 7
        recycle(dirty);
        let buf = take_zeroed(100); // class 7: must reuse and re-zero
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_copied_matches_source() {
        recycle(vec![9.0f32; 64]);
        let src: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let buf = take_copied(&src);
        assert_eq!(buf, src);
    }

    #[test]
    fn scratch_buf_round_trips() {
        clear_thread_arena();
        let before = thread_arena_bytes();
        {
            let mut s = take(1000);
            assert_eq!(s.len(), 1000);
            assert!(s.iter().all(|&x| x == 0.0));
            s[3] = 4.0;
            assert_eq!(s.as_slice()[3], 4.0);
        }
        assert!(thread_arena_bytes() > before, "drop must return the buffer");
        let s2 = take(1000);
        assert!(s2.iter().all(|&x| x == 0.0), "reused buffer must be re-zeroed");
    }

    #[test]
    fn zero_len_takes_are_empty_and_free() {
        assert!(take_zeroed(0).is_empty());
        assert!(take_copied(&[]).is_empty());
        assert!(take_with_capacity(0).capacity() == 0);
        recycle(Vec::new()); // no-op
    }

    #[test]
    fn disabled_mode_allocates_fresh() {
        clear_thread_arena();
        recycle(vec![1.0f32; 32]); // lands in the arena while enabled
        set_enabled(false);
        let buf = take_zeroed(32);
        assert!(buf.iter().all(|&x| x == 0.0));
        recycle(buf); // freed, not pooled
        set_enabled(true);
        // The enabled-mode buffer is still there from before.
        assert!(thread_arena_bytes() >= 32 * 4);
        clear_thread_arena();
    }

    #[test]
    fn workspace_facade_delegates() {
        let s = Workspace::take(8);
        assert_eq!(s.len(), 8);
        let z = Workspace::take_zeroed(4);
        assert_eq!(z, vec![0.0; 4]);
        let c = Workspace::take_copied(&[1.0, 2.0]);
        Workspace::recycle(c);
        Workspace::recycle(z);
    }
}
