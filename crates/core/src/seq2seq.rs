//! Algorithm 1 for the Transformer translation task (the paper's WMT'16
//! experiment, Table 3): Adam, gradient clipping, teacher forcing, padding
//! masked out of the loss, validation perplexity and BLEU.

use crate::report::{EpochMetrics, TrainReport};
use puffer_data::bleu::bleu4_percent;
use puffer_data::translation::{SentencePair, TranslationDataset, BOS, EOS, PAD};
use puffer_models::transformer::TransformerModel;
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::{clip_grad_norm, Adam};
use puffer_nn::Result;
use puffer_probe as probe;
use puffer_tensor::Tensor;

/// Hyper-parameters for the seq2seq run.
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    /// Total epochs.
    pub epochs: usize,
    /// Vanilla warm-up epochs (0 = low-rank from scratch; `= epochs` for a
    /// fully vanilla run).
    pub warmup_epochs: usize,
    /// Rank of factorized blocks at the switch.
    pub rank: usize,
    /// Sentence pairs per batch.
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Gradient-norm clip (paper: 0.25).
    pub clip: f32,
    /// Label smoothing (paper enables it for the Transformer).
    pub label_smoothing: f32,
}

impl Seq2SeqConfig {
    /// A CPU-scale recipe preserving the paper's structure.
    pub fn small(epochs: usize, warmup_epochs: usize, rank: usize) -> Self {
        Seq2SeqConfig {
            epochs,
            warmup_epochs,
            rank,
            batch_size: 16,
            lr: 3e-3,
            clip: 1.0,
            label_smoothing: 0.0,
        }
    }
}

/// Result of the seq2seq run.
pub struct Seq2SeqOutcome {
    /// The trained model.
    pub model: TransformerModel,
    /// Telemetry (eval loss is validation NLL over non-pad tokens).
    pub report: TrainReport,
    /// Validation BLEU-4 (%) from greedy decoding after training.
    pub valid_bleu: f64,
}

/// Runs Algorithm 1 on the Transformer.
///
/// # Errors
///
/// Propagates model and loss errors.
pub fn train_seq2seq(
    vanilla: TransformerModel,
    data: &TranslationDataset,
    cfg: &Seq2SeqConfig,
) -> Result<Seq2SeqOutcome> {
    let mut model = vanilla;
    let mut report = TrainReport {
        vanilla_params: model.param_count(),
        hybrid_params: model.param_count(),
        ..TrainReport::default()
    };
    let needs_conversion = cfg.warmup_epochs < cfg.epochs;
    if cfg.warmup_epochs == 0 && needs_conversion {
        model = model.to_hybrid(cfg.rank, false)?;
        report.switch_epoch = Some(0);
        report.hybrid_params = model.param_count();
    }
    let mut opt = Adam::new(cfg.lr, 0.9, 0.98, 1e-8, 0.0);

    for epoch in 0..cfg.epochs {
        if epoch == cfg.warmup_epochs && cfg.warmup_epochs > 0 && needs_conversion {
            let sp =
                probe::timed_span_with("core", "svd_factorize", || vec![("epoch", epoch.into())]);
            model = model.to_hybrid(cfg.rank, true)?;
            report.svd_time = Some(sp.finish());
            report.switch_epoch = Some(epoch);
            report.hybrid_params = model.param_count();
            opt = Adam::new(cfg.lr, 0.9, 0.98, 1e-8, 0.0);
        }
        let epoch_span = probe::timed_span_with("core", "epoch", || vec![("epoch", epoch.into())]);
        let mut loss_sum = 0.0f64;
        let mut steps = 0usize;
        for (src, tgt) in data.batches(data.train_pairs(), cfg.batch_size) {
            let (tgt_in, targets, mask) = teacher_forcing(&tgt);
            model.zero_grad();
            let logits = model.forward(&src, &tgt_in, true);
            let (loss, dl) = masked_ce(&logits, &targets, &mask, cfg.label_smoothing)?;
            model.backward(&dl);
            clip_grad_norm(&mut model.params_mut(), cfg.clip);
            opt.step(&mut model.params_mut());
            loss_sum += loss as f64;
            steps += 1;
        }
        let val_loss = evaluate_nll(&mut model, data, data.valid_pairs(), cfg.batch_size)?;
        // The epoch span covers train + eval, as in the image trainer.
        let wall = epoch_span.finish();
        report.epochs.push(EpochMetrics {
            epoch,
            train_loss: (loss_sum / steps.max(1) as f64) as f32,
            eval_loss: val_loss,
            eval_accuracy: None,
            lr: cfg.lr,
            params: model.param_count(),
            wall,
        });
    }
    let valid_bleu = evaluate_bleu(&mut model, data.valid_pairs(), 24);
    Ok(Seq2SeqOutcome { model, report, valid_bleu })
}

/// Builds teacher-forcing inputs: decoder input is the target shifted right
/// (drop last token), prediction targets drop the leading BOS. Returns
/// `(decoder inputs, flat targets, flat non-pad mask)`.
pub fn teacher_forcing(tgt: &[Vec<usize>]) -> (Vec<Vec<usize>>, Vec<usize>, Vec<bool>) {
    let tgt_in: Vec<Vec<usize>> = tgt.iter().map(|t| t[..t.len() - 1].to_vec()).collect();
    let mut targets = Vec::new();
    let mut mask = Vec::new();
    for t in tgt {
        for &tok in &t[1..] {
            targets.push(tok);
            mask.push(tok != PAD);
        }
    }
    (tgt_in, targets, mask)
}

/// Cross-entropy over the unmasked positions only.
///
/// # Errors
///
/// Propagates loss errors.
pub fn masked_ce(
    logits: &Tensor,
    targets: &[usize],
    mask: &[bool],
    label_smoothing: f32,
) -> Result<(f32, Tensor)> {
    let (loss, mut grad) = softmax_cross_entropy(logits, targets, label_smoothing)?;
    let n = targets.len();
    let kept = mask.iter().filter(|&&m| m).count().max(1);
    let c = logits.shape()[1];
    // Zero the gradient of padded positions and renormalize by kept count.
    let scale = n as f32 / kept as f32;
    {
        let g = grad.as_mut_slice();
        for (i, &m) in mask.iter().enumerate() {
            if m {
                for v in &mut g[i * c..(i + 1) * c] {
                    *v *= scale;
                }
            } else {
                g[i * c..(i + 1) * c].fill(0.0);
            }
        }
    }
    // Recompute mean loss on kept positions (cheap second pass).
    let masked_loss = if kept == n {
        loss
    } else {
        let kept_targets: Vec<usize> =
            targets.iter().zip(mask).filter(|(_, &m)| m).map(|(&t, _)| t).collect();
        let mut kept_rows = Tensor::zeros(&[kept_targets.len(), c]);
        let mut row = 0;
        for (i, &m) in mask.iter().enumerate() {
            if m {
                kept_rows.as_mut_slice()[row * c..(row + 1) * c]
                    .copy_from_slice(&logits.as_slice()[i * c..(i + 1) * c]);
                row += 1;
            }
        }
        softmax_cross_entropy(&kept_rows, &kept_targets, label_smoothing)?.0
    };
    Ok((masked_loss, grad))
}

/// Mean validation NLL over non-pad target tokens.
///
/// # Errors
///
/// Propagates loss errors.
pub fn evaluate_nll(
    model: &mut TransformerModel,
    data: &TranslationDataset,
    pairs: &[SentencePair],
    batch_size: usize,
) -> Result<f32> {
    let mut loss_sum = 0.0f64;
    let mut count = 0usize;
    for (src, tgt) in data.batches(pairs, batch_size) {
        let (tgt_in, targets, mask) = teacher_forcing(&tgt);
        let logits = model.forward(&src, &tgt_in, false);
        let (loss, _) = masked_ce(&logits, &targets, &mask, 0.0)?;
        let kept = mask.iter().filter(|&&m| m).count();
        loss_sum += loss as f64 * kept as f64;
        count += kept;
    }
    Ok((loss_sum / count.max(1) as f64) as f32)
}

/// Greedy-decodes up to `limit` validation pairs and scores BLEU-4 (%).
pub fn evaluate_bleu(model: &mut TransformerModel, pairs: &[SentencePair], limit: usize) -> f64 {
    let subset: Vec<&SentencePair> = pairs.iter().take(limit).collect();
    let srcs: Vec<Vec<usize>> = subset.iter().map(|p| p.source.clone()).collect();
    let max_len = subset.iter().map(|p| p.target.len()).max().unwrap_or(4) + 2;
    let hyps = model.greedy_decode(&srcs, BOS, EOS, max_len);
    let refs: Vec<Vec<usize>> =
        subset.iter().map(|p| p.target[1..p.target.len() - 1].to_vec()).collect();
    bleu4_percent(&hyps, &refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_data::translation::TranslationConfig;
    use puffer_models::transformer::TransformerConfig;

    fn tiny_data() -> TranslationDataset {
        TranslationDataset::generate(TranslationConfig {
            vocab: 24,
            min_len: 3,
            max_len: 5,
            train_pairs: 128,
            valid_pairs: 24,
            seed: 4,
        })
    }

    #[test]
    fn teacher_forcing_layout() {
        let tgt = vec![vec![BOS, 5, 6, EOS], vec![BOS, 7, EOS, PAD]];
        let (tgt_in, targets, mask) = teacher_forcing(&tgt);
        assert_eq!(tgt_in[0], vec![BOS, 5, 6]);
        assert_eq!(targets, vec![5, 6, EOS, 7, EOS, PAD]);
        assert_eq!(mask, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn masked_ce_ignores_pad_positions() {
        let logits = Tensor::randn(&[3, 4], 1.0, 1);
        let targets = [1, 2, 0];
        let mask = [true, true, false];
        let (_, grad) = masked_ce(&logits, &targets, &mask, 0.0).unwrap();
        assert!(grad.row_slice(2).iter().all(|&g| g == 0.0));
        assert!(grad.row_slice(0).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn algorithm1_transformer_switches() {
        let data = tiny_data();
        let model = TransformerModel::new(TransformerConfig {
            vocab: 24,
            d_model: 16,
            heads: 2,
            enc_layers: 2,
            dec_layers: 2,
            rank: None,
            seed: 1,
        })
        .unwrap();
        let cfg = Seq2SeqConfig::small(3, 1, 4);
        let out = train_seq2seq(model, &data, &cfg).unwrap();
        assert_eq!(out.report.switch_epoch, Some(1));
        assert!(out.report.hybrid_params < out.report.vanilla_params);
        // Loss must drop below the uniform baseline ln(24) ≈ 3.18.
        assert!(out.report.final_eval_loss() < 3.0, "nll {}", out.report.final_eval_loss());
        assert!(out.valid_bleu >= 0.0);
    }
}
