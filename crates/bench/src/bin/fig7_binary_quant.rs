//! **Figure 7** (appendix F): why "cheap" gradient quantization is slow in
//! practice — per-epoch breakdown of stochastic binary quantization
//! (Suresh et al. 2016) vs Pufferfish and vanilla SGD on ResNet-50 /
//! ImageNet(-lite), 16 nodes.
//!
//! Shape under reproduction: binary quantization compresses 32× on the
//! wire, but (i) its messages need allgather, whose cost grows with node
//! count, and (ii) its *decompression* cost scales linearly in the number
//! of workers — making it slower end-to-end than uncompressed allreduce
//! (the paper measures 12.1 s compress, 118.4 s decompress per epoch).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::none::NoCompression;
use puffer_compress::quant::BinaryQuant;
use puffer_compress::GradCompressor;
use puffer_dist::breakdown::measure_sequential_epoch;
use puffer_dist::cost::ClusterProfile;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use pufferfish::trainer::ImageModel;

const NODES: usize = 16;

fn main() {
    let scale = RunScale::from_env();
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;
    let profile = ClusterProfile::p3_like(NODES);
    let batches = data.train_batches(32, 0);
    println!("== Figure 7: stochastic binary quantization breakdown, {NODES} nodes ==\n");

    let mut t = Table::new(vec!["method", "compute", "compress", "decompress", "comm", "total"]);
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    for method in ["vanilla-sgd", "pufferfish", "binary-quant"] {
        let mut model: ImageModel = match method {
            "pufferfish" => setups::resnet50(classes, 1)
                .to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::WarmStart)
                .expect("hybrid")
                .into(),
            _ => setups::resnet50(classes, 1).into(),
        };
        let mut none_c;
        let mut quant_c;
        let compressor: &mut dyn GradCompressor = if method == "binary-quant" {
            quant_c = BinaryQuant::new(5);
            &mut quant_c
        } else {
            none_c = NoCompression::new();
            &mut none_c
        };
        let (bd, _) =
            measure_sequential_epoch(&mut model, &batches, NODES, compressor, &profile, 0.05)
                .expect("epoch");
        t.row(vec![
            method.into(),
            format!("{:.3}", bd.compute.as_secs_f64()),
            format!("{:.3}", bd.encode.as_secs_f64()),
            format!("{:.3}", bd.decode.as_secs_f64()),
            format!("{:.4}", bd.comm.as_secs_f64()),
            format!("{:.3}", bd.total().as_secs_f64()),
        ]);
        rows.push((method, bd.decode.as_secs_f64(), bd.encode.as_secs_f64()));
        record_result(
            "fig7_binary_quant",
            &format!(
                "{method}: compress {:.3} decompress {:.3} comm {:.4} total {:.3}",
                bd.encode.as_secs_f64(),
                bd.decode.as_secs_f64(),
                bd.comm.as_secs_f64(),
                bd.total().as_secs_f64()
            ),
        );
    }
    t.print();
    let quant = rows.iter().find(|(m, _, _)| *m == "binary-quant").unwrap();
    println!(
        "\nshape: binary-quant decompress ({:.3}s) >> compress ({:.3}s) — the paper's 118.4 vs 12.1 asymmetry,",
        quant.1, quant.2
    );
    println!("because allgather decoding expands all {NODES} workers' messages.");
}
