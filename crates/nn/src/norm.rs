//! Normalization layers: [`BatchNorm2d`] (CNNs) and [`LayerNorm`]
//! (Transformer blocks).
//!
//! Pufferfish does not factorize normalization layers — their parameters are
//! vectors (paper §2.4) — but the warm-start step copies both the affine
//! weights **and the running statistics** from the partially trained vanilla
//! model into the hybrid model (paper §3), which [`BatchNorm2d::state`] and
//! [`BatchNorm2d::load_state`] support.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use crate::{NnError, Result};
use puffer_tensor::Tensor;

const BN_EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.1;

/// Per-channel batch normalization over `[N, C, H, W]`.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    affine: bool,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

/// Snapshot of a batch-norm layer's learnable and running state, used by
/// Pufferfish's warm-start surgery.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNormState {
    /// Scale (γ).
    pub gamma: Tensor,
    /// Shift (β).
    pub beta: Tensor,
    /// Running mean (inference statistics).
    pub running_mean: Vec<f32>,
    /// Running variance (inference statistics).
    pub running_var: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates an affine batch-norm layer over `channels` channels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `channels` is zero.
    pub fn new(channels: usize) -> Result<Self> {
        Self::with_affine(channels, true)
    }

    /// Creates a batch-norm layer, optionally without learnable affine
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `channels` is zero.
    pub fn with_affine(channels: usize, affine: bool) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::BadConfig {
                layer: "BatchNorm2d",
                reason: "zero channels".into(),
            });
        }
        Ok(BatchNorm2d {
            gamma: Param::new_no_decay("bn.weight", Tensor::ones(&[channels])),
            beta: Param::new_no_decay("bn.bias", Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            affine,
            cache: None,
        })
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Snapshot of the layer's state for warm-start surgery.
    pub fn state(&self) -> BatchNormState {
        BatchNormState {
            gamma: self.gamma.value.clone(),
            beta: self.beta.value.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
        }
    }

    /// Restores a previously captured state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the state's channel count differs.
    pub fn load_state(&mut self, state: &BatchNormState) -> Result<()> {
        if state.gamma.len() != self.channels {
            return Err(NnError::BadConfig {
                layer: "BatchNorm2d",
                reason: format!(
                    "state has {} channels, layer has {}",
                    state.gamma.len(),
                    self.channels
                ),
            });
        }
        self.gamma.value = state.gamma.clone();
        self.beta.value = state.beta.clone();
        self.running_mean = state.running_mean.clone();
        self.running_var = state.running_var.clone();
        Ok(())
    }

    /// The scale parameters γ (used by the Early-Bird pruning baseline,
    /// which ranks channels by |γ|).
    pub fn gamma(&self) -> &Tensor {
        &self.gamma.value
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects [N, C, H, W]");
        let s = input.shape().to_vec();
        let (n, c, spatial) = (s[0], s[1], s[2] * s[3]);
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let count = (n * spatial) as f32;

        let (mean, var): (Vec<f32>, Vec<f32>) = match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for ci in 0..c {
                    let mut sum = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * spatial;
                        sum += input.as_slice()[base..base + spatial].iter().sum::<f32>();
                    }
                    mean[ci] = sum / count;
                    let mut sq = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * spatial;
                        for &x in &input.as_slice()[base..base + spatial] {
                            let d = x - mean[ci];
                            sq += d * d;
                        }
                    }
                    var[ci] = sq / count;
                }
                // Update running statistics (unbiased variance, as PyTorch).
                let unbias = if count > 1.0 { count / (count - 1.0) } else { 1.0 };
                for ci in 0..c {
                    self.running_mean[ci] =
                        (1.0 - BN_MOMENTUM) * self.running_mean[ci] + BN_MOMENTUM * mean[ci];
                    self.running_var[ci] =
                        (1.0 - BN_MOMENTUM) * self.running_var[ci] + BN_MOMENTUM * var[ci] * unbias;
                }
                (mean, var)
            }
            Mode::Eval => (self.running_mean.clone(), self.running_var.clone()),
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
        let mut x_hat = Tensor::zeros(&s);
        let mut out = Tensor::zeros(&s);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * spatial;
                let (g, b) = if self.affine {
                    (self.gamma.value.as_slice()[ci], self.beta.value.as_slice()[ci])
                } else {
                    (1.0, 0.0)
                };
                for i in base..base + spatial {
                    let xh = (input.as_slice()[i] - mean[ci]) * inv_std[ci];
                    x_hat.as_mut_slice()[i] = xh;
                    out.as_mut_slice()[i] = g * xh + b;
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(BnCache { x_hat, inv_std, shape: s });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before train-mode forward");
        let s = &cache.shape;
        assert_eq!(grad_output.shape(), &s[..], "BatchNorm2d gradient shape mismatch");
        let (n, c, spatial) = (s[0], s[1], s[2] * s[3]);
        let count = (n * spatial) as f32;

        let mut gin = Tensor::zeros(s);
        for ci in 0..c {
            // Channel-wise sums: Σdy, Σdy·x̂.
            let (mut sum_dy, mut sum_dy_xhat) = (0.0f32, 0.0f32);
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    let dy = grad_output.as_slice()[i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.as_slice()[i];
                }
            }
            if self.affine {
                self.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat;
                self.beta.grad.as_mut_slice()[ci] += sum_dy;
            }
            let g = if self.affine { self.gamma.value.as_slice()[ci] } else { 1.0 };
            let k = g * cache.inv_std[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    let dy = grad_output.as_slice()[i];
                    let xh = cache.x_hat.as_slice()[i];
                    gin.as_mut_slice()[i] = k * (dy - sum_dy / count - xh * sum_dy_xhat / count);
                }
            }
        }
        gin
    }

    fn params(&self) -> Vec<&Param> {
        if self.affine {
            vec![&self.gamma, &self.beta]
        } else {
            Vec::new()
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        if self.affine {
            vec![&mut self.gamma, &mut self.beta]
        } else {
            Vec::new()
        }
    }

    fn describe(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }

    fn buffers(&self) -> Vec<Tensor> {
        vec![
            Tensor::from_vec(self.running_mean.clone(), &[self.channels]).expect("channel count"),
            Tensor::from_vec(self.running_var.clone(), &[self.channels]).expect("channel count"),
        ]
    }

    fn load_buffers(&mut self, buffers: &[Tensor]) {
        assert_eq!(buffers.len(), 2, "BatchNorm2d expects 2 buffers");
        assert_eq!(buffers[0].len(), self.channels, "running-mean length mismatch");
        assert_eq!(buffers[1].len(), self.channels, "running-var length mismatch");
        self.running_mean = buffers[0].as_slice().to_vec();
        self.running_var = buffers[1].as_slice().to_vec();
    }
}

/// Layer normalization over the last dimension of a 2-D or 3-D activation.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    features: usize,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Debug)]
struct LnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer-norm over `features` with ε = 1e-6 (the paper's
    /// Transformer setting, appendix Table 16).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `features` is zero.
    pub fn new(features: usize) -> Result<Self> {
        if features == 0 {
            return Err(NnError::BadConfig { layer: "LayerNorm", reason: "zero features".into() });
        }
        Ok(LayerNorm {
            gamma: Param::new_no_decay("ln.weight", Tensor::ones(&[features])),
            beta: Param::new_no_decay("ln.bias", Tensor::zeros(&[features])),
            features,
            eps: 1e-6,
            cache: None,
        })
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.features
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let f = self.features;
        assert_eq!(input.shape()[input.ndim() - 1], f, "LayerNorm feature mismatch");
        let rows = input.len() / f;
        let mut x_hat = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        let mut inv_std = vec![0.0f32; rows];
        for (r, inv_std_r) in inv_std.iter_mut().enumerate() {
            let row = &input.as_slice()[r * f..(r + 1) * f];
            let mean: f32 = row.iter().sum::<f32>() / f as f32;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / f as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            *inv_std_r = is;
            for (j, &xj) in row.iter().enumerate() {
                let xh = (xj - mean) * is;
                x_hat.as_mut_slice()[r * f + j] = xh;
                out.as_mut_slice()[r * f + j] =
                    self.gamma.value.as_slice()[j] * xh + self.beta.value.as_slice()[j];
            }
        }
        if mode == Mode::Train {
            self.cache = Some(LnCache { x_hat, inv_std });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before train-mode forward");
        let f = self.features;
        assert_eq!(grad_output.len(), cache.x_hat.len(), "LayerNorm gradient shape mismatch");
        let rows = grad_output.len() / f;
        let mut gin = Tensor::zeros(grad_output.shape());
        for r in 0..rows {
            let (mut sum_dy, mut sum_dy_xhat) = (0.0f32, 0.0f32);
            for j in 0..f {
                let dy = grad_output.as_slice()[r * f + j] * self.gamma.value.as_slice()[j];
                let xh = cache.x_hat.as_slice()[r * f + j];
                sum_dy += dy;
                sum_dy_xhat += dy * xh;
            }
            for j in 0..f {
                let idx = r * f + j;
                let dy_raw = grad_output.as_slice()[idx];
                let xh = cache.x_hat.as_slice()[idx];
                self.gamma.grad.as_mut_slice()[j] += dy_raw * xh;
                self.beta.grad.as_mut_slice()[j] += dy_raw;
                let dy = dy_raw * self.gamma.value.as_slice()[j];
                gin.as_mut_slice()[idx] =
                    cache.inv_std[r] * (dy - sum_dy / f as f32 - xh * sum_dy_xhat / f as f32);
            }
        }
        gin
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn describe(&self) -> String {
        format!("LayerNorm({})", self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_input_check;

    #[test]
    fn bn_train_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, 1);
        let y = bn.forward(&x, Mode::Train);
        // Per channel, output should have ~zero mean and ~unit variance.
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = (ni * 2 + ci) * 9;
                vals.extend_from_slice(&y.as_slice()[base..base + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        // Run many training batches so running stats converge.
        for seed in 0..50 {
            let x = Tensor::randn(&[8, 1, 2, 2], 2.0, seed);
            let shifted = x.map(|v| v + 5.0);
            let _ = bn.forward(&shifted, Mode::Train);
        }
        let x = Tensor::full(&[1, 1, 2, 2], 5.0);
        let y = bn.forward(&x, Mode::Eval);
        // Input at the running mean should map near zero.
        assert!(y.as_slice().iter().all(|&v| v.abs() < 0.3), "{y:?}");
    }

    #[test]
    fn bn_gradcheck() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::randn(&[3, 2, 2, 2], 1.0, 2);
        let dev = finite_diff_input_check(&mut bn, &x, 1e-2);
        assert!(dev < 5e-2, "bn grad deviation {dev}");
    }

    #[test]
    fn bn_state_round_trip() {
        let mut a = BatchNorm2d::new(3).unwrap();
        let x = Tensor::randn(&[2, 3, 2, 2], 1.0, 3);
        let _ = a.forward(&x, Mode::Train);
        let state = a.state();
        let mut b = BatchNorm2d::new(3).unwrap();
        b.load_state(&state).unwrap();
        assert_eq!(b.state(), state);
        let bad = BatchNorm2d::new(4).unwrap().state();
        assert!(b.load_state(&bad).is_err());
    }

    #[test]
    fn bn_without_affine_has_no_params() {
        let bn = BatchNorm2d::with_affine(4, false).unwrap();
        assert_eq!(bn.param_count(), 0);
        let affine = BatchNorm2d::new(4).unwrap();
        assert_eq!(affine.param_count(), 8);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(8).unwrap();
        let x = Tensor::randn(&[4, 8], 5.0, 4);
        let y = ln.forward(&x, Mode::Train);
        for r in 0..4 {
            let row = &y.as_slice()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut ln = LayerNorm::new(5).unwrap();
        let x = Tensor::randn(&[3, 5], 1.0, 5);
        let dev = finite_diff_input_check(&mut ln, &x, 1e-2);
        assert!(dev < 5e-2, "ln grad deviation {dev}");
    }

    #[test]
    fn constructors_validate() {
        assert!(BatchNorm2d::new(0).is_err());
        assert!(LayerNorm::new(0).is_err());
    }
}
