//! Quick/full experiment scaling.
//!
//! Every experiment binary supports `--quick` (CI-sized, seconds) and
//! `--full` (the default: minutes-scale runs that produce smoother curves).
//! The `PUFFER_SCALE` environment variable (`quick`/`full`) overrides.

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Seconds-scale smoke run.
    Quick,
    /// Minutes-scale run (default).
    Full,
}

impl RunScale {
    /// Parses the scale from process args and environment.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return RunScale::Quick;
        }
        if args.iter().any(|a| a == "--full") {
            return RunScale::Full;
        }
        match std::env::var("PUFFER_SCALE").as_deref() {
            Ok("quick") => RunScale::Quick,
            _ => RunScale::Full,
        }
    }

    /// Picks between the quick and full variant of a knob.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            RunScale::Quick => quick,
            RunScale::Full => full,
        }
    }

    /// Number of random seeds to average over (the paper uses 3).
    pub fn seeds(&self) -> Vec<u64> {
        self.pick(vec![1], vec![1, 2, 3])
    }
}

/// Whether the process args ask for the speed-optimized compute profile
/// (`--optimized`, the paper's appendix-J cuDNN setting).
pub fn optimized_flag() -> bool {
    std::env::args().any(|a| a == "--optimized")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects() {
        assert_eq!(RunScale::Quick.pick(1, 2), 1);
        assert_eq!(RunScale::Full.pick(1, 2), 2);
    }

    #[test]
    fn seeds_counts() {
        assert_eq!(RunScale::Quick.seeds().len(), 1);
        assert_eq!(RunScale::Full.seeds().len(), 3);
    }
}
