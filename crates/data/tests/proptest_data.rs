//! Property-based tests for the synthetic workload generators.

use proptest::prelude::*;
use puffer_data::bleu::corpus_bleu;
use puffer_data::images::{ImageDataset, ImageDatasetConfig};
use puffer_data::text::{batchify, bptt_batches};
use puffer_data::translation::{TranslationConfig, TranslationDataset, EOS, FIRST_CONTENT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batchify_preserves_column_contiguity(len in 10usize..200, batch in 1usize..8) {
        let stream: Vec<usize> = (0..len).collect();
        let b = batchify(&stream, batch);
        let steps = len / batch;
        prop_assert_eq!(b.len(), steps);
        // Column c holds the contiguous slice starting at c·steps.
        for c in 0..batch {
            for (t, row) in b.iter().enumerate() {
                prop_assert_eq!(row[c], c * steps + t);
            }
        }
    }

    #[test]
    fn bptt_windows_tile_the_stream(len in 20usize..200, batch in 1usize..5, bptt in 1usize..12) {
        let stream: Vec<usize> = (0..len).collect();
        let b = batchify(&stream, batch);
        let windows = bptt_batches(&b, bptt);
        let covered: usize = windows.iter().map(|w| w.inputs.len()).sum();
        prop_assert_eq!(covered, b.len().saturating_sub(1));
        for w in &windows {
            prop_assert!(w.inputs.len() <= bptt);
            prop_assert_eq!(w.inputs.len(), w.targets.len());
        }
    }

    #[test]
    fn bleu_is_bounded_and_self_maximal(
        sents in proptest::collection::vec(proptest::collection::vec(0usize..20, 1..12), 1..6)
    ) {
        let b = corpus_bleu(&sents, &sents, 4);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&b));
        // Any corruption cannot beat the perfect score.
        let mut corrupted = sents.clone();
        corrupted[0].push(19);
        corrupted[0].push(18);
        let bc = corpus_bleu(&corrupted, &sents, 4);
        prop_assert!(bc <= b + 1e-9);
    }

    #[test]
    fn image_batches_partition_training_set(train in 16usize..100, batch in 1usize..32) {
        let d = ImageDataset::generate(ImageDatasetConfig {
            classes: 3,
            channels: 3,
            size: 8,
            train,
            test: 4,
            noise: 0.1,
            seed: 3,
        });
        let batches = d.train_batches(batch, 1);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        prop_assert_eq!(total, train);
        for (imgs, labels) in &batches {
            prop_assert_eq!(imgs.shape()[0], labels.len());
            prop_assert!(labels.iter().all(|&l| l < 3));
            prop_assert!(imgs.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn translation_pairs_are_consistent(seed in 0u64..100) {
        let d = TranslationDataset::generate(TranslationConfig {
            vocab: 20,
            min_len: 2,
            max_len: 6,
            train_pairs: 20,
            valid_pairs: 5,
            seed,
        });
        for p in d.train_pairs().iter().chain(d.valid_pairs()) {
            // Same content length on both sides; all content tokens valid.
            prop_assert_eq!(p.source.len(), p.target.len());
            prop_assert!(p.source[1..p.source.len() - 1].iter().all(|t| (FIRST_CONTENT..20).contains(t)));
            prop_assert!(p.target[1..p.target.len() - 1].iter().all(|t| (FIRST_CONTENT..20).contains(t)));
            prop_assert_eq!(*p.source.last().unwrap(), EOS);
        }
    }
}
