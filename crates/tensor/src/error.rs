//! Error type shared by all fallible tensor operations.

use std::fmt;

/// Error returned by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (or be compatible) did not.
    ShapeMismatch {
        /// What the operation expected.
        expected: Vec<usize>,
        /// What the caller supplied.
        got: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A requested rank exceeds what the matrix dimensions allow.
    RankOutOfRange {
        /// The rank the caller asked for.
        requested: usize,
        /// The largest admissible rank, `min(rows, cols)`.
        max: usize,
    },
    /// An iterative algorithm (e.g. Jacobi SVD) failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// The operation requires a tensor of a specific dimensionality.
    WrongDimensions {
        /// Required number of dimensions.
        expected: usize,
        /// Actual number of dimensions.
        got: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got, op } => {
                write!(f, "shape mismatch in `{op}`: expected {expected:?}, got {got:?}")
            }
            TensorError::RankOutOfRange { requested, max } => {
                write!(f, "requested rank {requested} exceeds maximum admissible rank {max}")
            }
            TensorError::NoConvergence { algorithm, iterations } => {
                write!(f, "`{algorithm}` failed to converge after {iterations} iterations")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::WrongDimensions { expected, got, op } => {
                write!(f, "`{op}` requires a {expected}-dimensional tensor, got {got} dimensions")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch { expected: vec![2, 3], got: vec![3, 2], op: "matmul" };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));

        let e = TensorError::RankOutOfRange { requested: 9, max: 4 };
        assert!(e.to_string().contains('9'));

        let e = TensorError::NoConvergence { algorithm: "jacobi-svd", iterations: 30 };
        assert!(e.to_string().contains("jacobi-svd"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
