//! Property-based tests for the gradient-compression baselines.

use proptest::prelude::*;
use puffer_compress::atomo::Atomo;
use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_compress::quant::QuantMessage;
use puffer_compress::signum::Signum;
use puffer_compress::topk::TopK;
use puffer_compress::{exact_mean, GradCompressor};
use puffer_tensor::stats::{l2_norm, rel_error};
use puffer_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn grads(workers: usize, rows: usize, cols: usize, seed: u64) -> Vec<Vec<Tensor>> {
    (0..workers)
        .map(|w| {
            vec![
                Tensor::randn(&[rows, cols], 1.0, seed + w as u64),
                Tensor::randn(&[cols], 0.5, 99 + seed + w as u64),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vanilla_equals_exact_mean(workers in 1usize..5, seed in 0u64..200) {
        let g = grads(workers, 4, 3, seed);
        let (out, _) = NoCompression::new().round(&g);
        let reference = exact_mean(&g);
        for (a, b) in out.iter().zip(&reference) {
            prop_assert!(rel_error(b, a) < 1e-5);
        }
    }

    #[test]
    fn topk_full_ratio_equals_exact_mean(workers in 1usize..4, seed in 0u64..200) {
        let g = grads(workers, 3, 3, seed);
        let (out, _) = TopK::new(1.0).round(&g);
        let reference = exact_mean(&g);
        for (a, b) in out.iter().zip(&reference) {
            prop_assert!(rel_error(b, a) < 1e-5);
        }
    }

    #[test]
    fn topk_output_supported_on_at_most_k_per_worker(ratio in 0.1f32..0.6, seed in 0u64..200) {
        let g = vec![vec![Tensor::randn(&[20], 1.0, seed)]];
        let (out, _) = TopK::new(ratio).round(&g);
        let k = ((20.0 * ratio).ceil() as usize).max(1);
        let nonzero = out[0].as_slice().iter().filter(|&&v| v != 0.0).count();
        prop_assert!(nonzero <= k, "{nonzero} > {k}");
    }

    #[test]
    fn signum_outputs_are_signs(workers in 1usize..5, seed in 0u64..200) {
        let g = grads(workers, 2, 4, seed);
        let (out, stats) = Signum::new(0.5).round(&g);
        for t in &out {
            prop_assert!(t.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        }
        // 1 bit per coordinate, word-aligned.
        let total: usize = g[0].iter().map(Tensor::len).sum();
        prop_assert!(stats.bytes_per_worker <= total.div_ceil(64) * 8 + 8);
    }

    #[test]
    fn powersgd_reconstruction_bounded_by_input(seed in 0u64..200, rank in 1usize..4) {
        let g = Tensor::randn(&[8, 6], 1.0, seed);
        let (out, _) = PowerSgd::new(rank, seed).round(&[vec![g.clone()]]);
        // Rank-r projection of M never exceeds ~‖M‖ (orthonormal P).
        prop_assert!(l2_norm(&out[0]) <= l2_norm(&g) * 1.05);
    }

    #[test]
    fn powersgd_error_feedback_partition(seed in 0u64..200) {
        // decoded + residual == compensated input, exactly (one worker).
        let g = Tensor::randn(&[6, 6], 1.0, seed);
        let mut c = PowerSgd::new(2, seed);
        let (out, _) = c.round(&[vec![g.clone()]]);
        prop_assert!(out[0].as_slice().iter().all(|v| v.is_finite()));
        // Round 2: error feedback reinjects the residual; still finite and
        // closer to (or no farther from) the true gradient direction.
        let (out2, _) = c.round(&[vec![g.clone()]]);
        prop_assert!(out2[0].as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn quant_decode_is_two_level(values in proptest::collection::vec(-4.0f32..4.0, 2..64), seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let msg = QuantMessage::encode(&values, &mut rng);
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for i in 0..values.len() {
            let d = msg.decode_at(i);
            prop_assert!(d == lo || d == hi, "decoded {d} not in {{{lo}, {hi}}}");
        }
    }

    #[test]
    fn atomo_never_produces_nan(seed in 0u64..100) {
        let g = grads(2, 6, 5, seed);
        let (out, stats) = Atomo::new(2, seed).round(&g);
        for t in &out {
            prop_assert!(t.as_slice().iter().all(|v| v.is_finite()));
        }
        prop_assert!(stats.bytes_per_worker > 0);
    }

    #[test]
    fn compressors_preserve_shapes(workers in 1usize..4, seed in 0u64..100) {
        let g = grads(workers, 5, 4, seed);
        let shapes: Vec<Vec<usize>> = g[0].iter().map(|t| t.shape().to_vec()).collect();
        let compressors: Vec<Box<dyn GradCompressor>> = vec![
            Box::new(NoCompression::new()),
            Box::new(PowerSgd::new(2, seed)),
            Box::new(Signum::new(0.9)),
            Box::new(TopK::new(0.3)),
            Box::new(Atomo::new(2, seed)),
        ];
        for mut c in compressors {
            let (out, _) = c.round(&g);
            for (t, s) in out.iter().zip(&shapes) {
                prop_assert_eq!(t.shape(), &s[..], "{} changed shapes", c.name());
            }
        }
    }
}
