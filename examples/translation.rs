//! Low-rank Transformer translation (the paper's WMT'16 experiment at
//! example scale): train an encoder–decoder Transformer on a synthetic
//! reversal-translation task, factorize every block except the first
//! encoder/decoder layer, and score BLEU with greedy decoding.
//!
//! ```sh
//! cargo run --release --example translation
//! ```

use pufferfish_repro::core::seq2seq::{train_seq2seq, Seq2SeqConfig};
use pufferfish_repro::data::translation::{TranslationConfig, TranslationDataset};
use pufferfish_repro::models::transformer::{TransformerConfig, TransformerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = TranslationDataset::generate(TranslationConfig::small(21));
    println!(
        "task: translate by token-mapping + reversal; vocab {}, {} train pairs",
        data.config().vocab,
        data.train_pairs().len()
    );

    let epochs = 6;
    let rank = 8; // d_model/4

    let make = || {
        TransformerModel::new(TransformerConfig {
            vocab: data.config().vocab,
            d_model: 32,
            heads: 4,
            enc_layers: 2,
            dec_layers: 2,
            rank: None,
            seed: 1,
        })
    };

    // Vanilla Transformer.
    let cfg = Seq2SeqConfig::small(epochs, epochs, rank);
    let vanilla = train_seq2seq(make()?, &data, &cfg)?;

    // Pufferfish: 2 warm-up epochs then hybrid factorization.
    let cfg = Seq2SeqConfig::small(epochs, 2, rank);
    let puffer = train_seq2seq(make()?, &data, &cfg)?;

    println!(
        "\nvanilla Transformer:    {:>7} params, val ppl {:.2}, BLEU {:.1}",
        vanilla.report.vanilla_params,
        vanilla.report.final_perplexity(),
        vanilla.valid_bleu
    );
    println!(
        "pufferfish Transformer: {:>7} params, val ppl {:.2}, BLEU {:.1}  (switched at epoch {:?})",
        puffer.report.hybrid_params,
        puffer.report.final_perplexity(),
        puffer.valid_bleu,
        puffer.report.switch_epoch,
    );
    println!("\nthe paper's full-scale counterpart: 48,978,432 -> 26,696,192 params with the");
    println!("factorized model *better* on val ppl (7.34 vs 11.88) and BLEU (26.87 vs 19.05).");
    Ok(())
}
