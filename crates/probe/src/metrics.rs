//! Counters, gauges, and the per-step JSONL metrics sink.
//!
//! The registry is process-global and keyed by `&'static str` names, so a
//! counter costs one map lookup under a short-lived lock — and nothing at
//! all when the probe is disabled. Counter updates additionally emit
//! Chrome `"C"` events, which the trace viewer renders as counter tracks
//! alongside the span timeline.

use crate::span::{current_tid, ArgValue, TraceEvent};
use crate::{enabled, now_rel, push_event, with_sink};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

static REGISTRY: Mutex<BTreeMap<&'static str, f64>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, f64>> {
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn clear_registry() {
    registry().clear();
}

fn record_counter_event(name: &'static str, value: f64) {
    push_event(TraceEvent {
        phase: 'C',
        name,
        cat: "metric",
        ts: now_rel(),
        dur: Duration::ZERO,
        tid: current_tid(),
        args: vec![("value", ArgValue::F64(value))],
    });
}

/// Adds `delta` to the named monotonic counter. A no-op when disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let value = {
        let mut reg = registry();
        let v = reg.entry(name).or_insert(0.0);
        *v += delta as f64;
        *v
    };
    record_counter_event(name, value);
}

/// Sets the named gauge to `value`. A no-op when disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    registry().insert(name, value);
    record_counter_event(name, value);
}

/// The current value of a counter or gauge (`None` if never touched
/// while enabled).
pub fn counter_value(name: &str) -> Option<f64> {
    registry().get(name).copied()
}

/// A snapshot of the whole registry, name-sorted.
pub fn counters_snapshot() -> Vec<(&'static str, f64)> {
    registry().iter().map(|(k, v)| (*k, *v)).collect()
}

fn push_arg_json(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(n) => crate::json::number_into(out, *n),
        ArgValue::Str(s) => crate::json::escape_into(out, s),
    }
}

/// Appends one JSONL row to the metrics sink:
/// `{"type":<row_type>,"t_us":<clock>,<fields...>}`. Serialized
/// immediately (keys need not be static), buffered until [`crate::flush`].
/// A no-op when disabled.
pub fn metrics_row(row_type: &str, fields: &[(&str, ArgValue)]) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(64 + fields.len() * 16);
    line.push_str("{\"type\":");
    crate::json::escape_into(&mut line, row_type);
    {
        use std::fmt::Write as _;
        let _ = write!(line, ",\"t_us\":{}", now_rel().as_micros());
    }
    for (k, v) in fields {
        line.push(',');
        crate::json::escape_into(&mut line, k);
        line.push(':');
        push_arg_json(&mut line, v);
    }
    line.push('}');
    with_sink(|s| s.rows.push(line));
}

/// Drains and returns the buffered metrics rows (tests; [`crate::flush`]
/// uses the same buffer).
pub fn metrics_rows() -> Vec<String> {
    with_sink(|s| std::mem::take(&mut s.rows))
}

/// Serializes the counters registry as one JSON object row,
/// `{"type":"counters",...}` — appended by the exporter as the final
/// metrics line.
pub(crate) fn counters_row() -> String {
    let mut line = String::from("{\"type\":\"counters\"");
    for (k, v) in registry().iter() {
        line.push(',');
        crate::json::escape_into(&mut line, k);
        line.push(':');
        crate::json::number_into(&mut line, *v);
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configure, reset, take_events, testutil, ProbeConfig};

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        counter_add("test.bytes", 10);
        counter_add("test.bytes", 5);
        gauge_set("test.width", 4.0);
        gauge_set("test.width", 2.0);
        assert_eq!(counter_value("test.bytes"), Some(15.0));
        assert_eq!(counter_value("test.width"), Some(2.0));
        let counter_events = take_events().into_iter().filter(|e| e.phase == 'C').count();
        assert_eq!(counter_events, 4, "every update emits a counter sample");
        reset();
    }

    #[test]
    fn disabled_counters_do_not_register() {
        let _guard = testutil::lock();
        reset();
        counter_add("test.dead", 1);
        assert_eq!(counter_value("test.dead"), None);
    }

    #[test]
    fn metrics_rows_are_valid_json_lines() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        metrics_row(
            "step",
            &[
                ("step", 3usize.into()),
                ("loss", ArgValue::F64(0.5)),
                ("note", "a\"b".into()),
                ("nan", ArgValue::F64(f64::NAN)),
            ],
        );
        counter_add("test.rows", 1);
        let rows = metrics_rows();
        assert_eq!(rows.len(), 1);
        let parsed = crate::json::parse(&rows[0]).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("step"));
        assert_eq!(parsed.get("step").unwrap().as_num(), Some(3.0));
        assert_eq!(parsed.get("note").unwrap().as_str(), Some("a\"b"));
        assert_eq!(parsed.get("nan"), Some(&crate::json::Json::Null));
        let counters = crate::json::parse(&counters_row()).unwrap();
        assert_eq!(counters.get("test.rows").unwrap().as_num(), Some(1.0));
        reset();
    }
}
