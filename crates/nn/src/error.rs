//! Error type for network construction and loss computation.

use puffer_tensor::TensorError;
use std::fmt;

/// Error returned by fallible `puffer-nn` operations (constructors and
/// losses). Shape errors inside `forward`/`backward` are programming errors
/// and panic instead; see the `Layer` trait documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A layer was configured with inconsistent dimensions.
    BadConfig {
        /// The layer type being constructed.
        layer: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A target index exceeded the number of classes.
    BadTarget {
        /// The offending class index.
        class: usize,
        /// The number of classes in the logits.
        num_classes: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::BadConfig { layer, reason } => write!(f, "bad `{layer}` config: {reason}"),
            NnError::BadTarget { class, num_classes } => {
                write!(f, "target class {class} out of range for {num_classes} classes")
            }
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::BadConfig { layer: "Linear", reason: "zero input dim".into() };
        assert!(e.to_string().contains("Linear"));
        let t = NnError::from(TensorError::RankOutOfRange { requested: 3, max: 2 });
        assert!(std::error::Error::source(&t).is_some());
    }
}
