#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Referenced from ROADMAP.md; run before every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "== fault-injection suite (fixed seeds)"
cargo test -q -p puffer-dist --test fault_suite

echo "== no unwrap()/expect() in puffer-dist non-test code"
# The fault-tolerance contract: production code in crates/dist/src must
# route failures through DistError, never panic. Test modules (everything
# from `#[cfg(test)]` down) are exempt.
lint_fail=0
for f in crates/dist/src/*.rs; do
  if awk '/#\[cfg\(test\)\]/{exit} /^[[:space:]]*\/\//{next} {print}' "$f" \
      | grep -nE '\.(unwrap|expect)\(' \
      | sed "s|^|$f:|"; then
    lint_fail=1
  fi
done
if [ "$lint_fail" -ne 0 ]; then
  echo "error: unwrap()/expect() found in puffer-dist non-test code" >&2
  exit 1
fi

echo "== no raw std::time::Instant in puffer-dist non-test code"
# The observability contract: all timing in crates/dist flows through
# puffer-probe's TimedSpan, so the Fig.-4 breakdown bins and the trace are
# the same numbers (DESIGN.md §7). Test modules are exempt.
lint_fail=0
for f in crates/dist/src/*.rs; do
  if awk '/#\[cfg\(test\)\]/{exit} /^[[:space:]]*\/\//{next} {print}' "$f" \
      | grep -nE '\bInstant\b' \
      | sed "s|^|$f:|"; then
    lint_fail=1
  fi
done
if [ "$lint_fail" -ne 0 ]; then
  echo "error: raw std::time::Instant found in puffer-dist non-test code (use puffer_probe::TimedSpan)" >&2
  exit 1
fi

echo "== probe overhead guard (disabled-probe cost < 2% on a GEMM)"
cargo test -q --release -p puffer-tensor --test probe_overhead

echo "All checks passed."
