//! Noise-aware comparison of two `BENCH_*.json` files — the perf
//! regression gate.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p puffer-bench --bin bench_diff -- \
//!     <baseline.json> <candidate.json> [--threshold 0.4] [--check]
//! ```
//!
//! Timing leaves (`*_s`/`*_ms`/`*_us`/`*_ns`) regress when they grow,
//! throughput leaves (`gflops`, `speedup*`) when they shrink — in both
//! cases only beyond the relative threshold *and* a 1 ms absolute noise
//! floor. Boolean `pass`/`all_pass` leaves are hard gates. Keys present
//! on only one side are notes, never failures, so bench schemas can
//! evolve without breaking old baselines. `--check` exits non-zero on
//! any regression — `scripts/check.sh` gates on it.

use puffer_insight::{diff, DiffOptions};
use puffer_probe::json;

fn load(path: &str) -> json::Json {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match json::parse(&doc) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_diff: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut check = false;
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--threshold" => {
                let v = args.next().and_then(|v| v.parse::<f64>().ok());
                match v {
                    Some(t) if t > 0.0 => opts.threshold = t,
                    _ => {
                        eprintln!("bench_diff: --threshold needs a positive number");
                        std::process::exit(2);
                    }
                }
            }
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--threshold X] [--check]");
        std::process::exit(2);
    }

    let old = load(&paths[0]);
    let new = load(&paths[1]);
    let report = diff(&old, &new, opts);
    println!(
        "comparing {} (baseline) vs {} (candidate), threshold {:.0}%",
        paths[0],
        paths[1],
        opts.threshold * 100.0
    );
    print!("{}", report.render());

    if check && !report.regressions().is_empty() {
        eprintln!("bench_diff --check FAILED: {} regression(s)", report.regressions().len());
        std::process::exit(1);
    }
}
