//! Trainable parameters.

use puffer_tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
///
/// `apply_weight_decay` mirrors the paper's training recipe, which applies
/// ℓ2 regularization to weights but **not** to BatchNorm affine parameters
/// or biases (appendix I).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Human-readable dotted name (e.g. `"layer10.conv10_u.weight"`),
    /// mirroring the paper's appendix tables.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient; same shape as `value`.
    pub grad: Tensor,
    /// Whether optimizers should apply weight decay to this parameter.
    pub apply_weight_decay: bool,
}

impl Param {
    /// Creates a parameter with a zeroed gradient buffer.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { name: name.into(), value, grad, apply_weight_decay: true }
    }

    /// Creates a parameter exempt from weight decay (biases, norm affines).
    pub fn new_no_decay(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.apply_weight_decay = false;
        p
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the gradient buffer.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
        assert!(p.apply_weight_decay);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn no_decay_constructor() {
        let p = Param::new_no_decay("b", Tensor::ones(&[3]));
        assert!(!p.apply_weight_decay);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new("w", Tensor::ones(&[2]));
        p.grad.as_mut_slice().fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
