//! Dense f32 tensor substrate for the Pufferfish reproduction.
//!
//! This crate provides the linear-algebra kernel that the rest of the
//! workspace is built on: a row-major dense [`Tensor`], cache-blocked
//! matrix multiplication, im2col-based convolution primitives, a one-sided
//! Jacobi [singular value decomposition](svd) (the operation at the heart of
//! Pufferfish's "vanilla warm-up" factorization), IEEE 754 binary16
//! emulation used by the mixed-precision experiments, and the random weight
//! initializers used by the model zoo.
//!
//! Everything is implemented from scratch on `std` + `rand` +
//! `crossbeam` channels; there is no BLAS or LAPACK dependency, so results
//! are bit-reproducible across machines given a seed.
//!
//! # Threading
//!
//! Dense kernels (GEMM, im2col/col2im, large elementwise ops) fan out to a
//! lazily-initialized process-wide worker [`pool`] under the default
//! `Optimized` matmul profile. `PUFFER_NUM_THREADS` (or
//! [`pool::set_num_threads`]) controls the width; `PUFFER_NUM_THREADS=1`
//! runs everything inline without spawning a single thread. All parallel
//! kernels partition output regions and preserve the sequential per-element
//! reduction order, so results are **bitwise identical for every thread
//! count** — parallelism never costs reproducibility.
//!
//! # Memory reuse
//!
//! Tensor storage and kernel scratch (GEMM packing panels, im2col
//! matrices) come from per-thread scratch arenas ([`workspace`]) and are
//! returned on drop, so a steady-state training step allocates nothing
//! fresh. Pooled buffers are zeroed or fully overwritten before use —
//! results are bitwise identical to fresh allocation
//! ([`workspace::set_enabled`] toggles reuse off to verify).
//!
//! # Example
//!
//! ```
//! use puffer_tensor::{Tensor, svd::truncated_svd};
//!
//! // Factorize a weight matrix W ≈ U Vᵀ at rank 2, Pufferfish-style.
//! let w = Tensor::randn(&[8, 6], 0.5, 42);
//! let fact = truncated_svd(&w, 2).unwrap();
//! let (u, vt) = fact.split_balanced();
//! assert_eq!(u.shape(), &[8, 2]);
//! assert_eq!(vt.shape(), &[2, 6]);
//! ```

pub mod conv;
pub mod error;
pub mod f16;
pub mod gemm;
pub mod init;
pub mod io;
pub mod matmul;
pub mod pool;
pub mod stats;
pub mod svd;
mod tensor;
pub mod workspace;

pub use error::TensorError;
pub use tensor::Tensor;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
