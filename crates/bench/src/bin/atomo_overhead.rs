//! **Intro claim** (§1): per-batch compression compute is prohibitive —
//! "ATOMO requires to compute gradient factorizations using SVD for every
//! single batch".
//!
//! Measures, on the same ResNet-18 gradients and cluster profile, the
//! cumulative encode+decode time over an epoch for ATOMO (SVD every step),
//! PowerSGD (one power iteration per step), and Pufferfish (zero per-step
//! codec; one SVD total, at the warm-up boundary).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::atomo::Atomo;
use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_compress::GradCompressor;
use puffer_dist::breakdown::measure_sequential_epoch;
use puffer_dist::cost::ClusterProfile;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use puffer_probe::Stopwatch;
use pufferfish::trainer::ImageModel;

const NODES: usize = 8;

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let profile = ClusterProfile::p3_like(NODES);
    let batches: Vec<_> = data.train_batches(32, 0).into_iter().take(scale.pick(6, 24)).collect();
    println!(
        "== Intro claim: per-step SVD (ATOMO) vs one-time SVD (Pufferfish), {} steps ==\n",
        batches.len()
    );

    let mut t =
        Table::new(vec!["method", "codec s/epoch", "codec calls", "comm (modeled)", "total"]);
    for method in ["atomo-r2", "powersgd-r2", "pufferfish"] {
        let mut svd_once = 0.0f64;
        let mut model: ImageModel = if method == "pufferfish" {
            let t0 = Stopwatch::start();
            let hybrid = setups::resnet18(10, 1)
                .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart)
                .expect("hybrid");
            svd_once = t0.elapsed().as_secs_f64();
            hybrid.into()
        } else {
            setups::resnet18(10, 1).into()
        };
        let mut atomo_c;
        let mut power_c;
        let mut none_c;
        let compressor: &mut dyn GradCompressor = match method {
            "atomo-r2" => {
                atomo_c = Atomo::new(2, 3);
                &mut atomo_c
            }
            "powersgd-r2" => {
                power_c = PowerSgd::new(2, 3);
                &mut power_c
            }
            _ => {
                none_c = NoCompression::new();
                &mut none_c
            }
        };
        let (bd, _) =
            measure_sequential_epoch(&mut model, &batches, NODES, compressor, &profile, 0.05)
                .expect("epoch");
        let codec = (bd.encode + bd.decode).as_secs_f64() + svd_once;
        let calls = if method == "pufferfish" {
            "1 (one-time SVD)".to_string()
        } else {
            format!("{} (every step)", batches.len())
        };
        t.row(vec![
            method.into(),
            format!("{codec:.3}"),
            calls,
            format!("{:.4}", bd.comm.as_secs_f64()),
            format!("{:.3}", (bd.total().as_secs_f64() + svd_once)),
        ]);
        record_result(
            "atomo_overhead",
            &format!(
                "{method}: codec {codec:.4}s total {:.3}s",
                bd.total().as_secs_f64() + svd_once
            ),
        );
    }
    t.print();
    println!("\nshape: ATOMO's codec column dwarfs PowerSGD's, and Pufferfish pays its SVD once —");
    println!("the paper's argument for folding compression into the architecture.");
}
