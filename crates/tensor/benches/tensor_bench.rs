//! Micro-benchmarks for the tensor substrate: matmul profiles, im2col, SVD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use puffer_tensor::conv::{im2col, ConvGeometry};
use puffer_tensor::matmul::{matmul_with_profile, MatmulProfile};
use puffer_tensor::pool;
use puffer_tensor::svd::truncated_svd;
use puffer_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(&[n, n], 1.0, 1);
        let b = Tensor::randn(&[n, n], 1.0, 2);
        group.bench_with_input(BenchmarkId::new("reproducible", n), &n, |bch, _| {
            bch.iter(|| matmul_with_profile(&a, &b, MatmulProfile::Reproducible).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |bch, _| {
            bch.iter(|| matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap())
        });
    }
    group.finish();
}

/// 1-thread vs N-thread square GEMM through the packed `Optimized` kernel.
/// `PUFFER_BENCH_THREADS` overrides the N-thread side (defaults to the
/// pool's resolved width). The `gemm_scaling` binary in `puffer-bench`
/// sweeps the full thread grid and records `BENCH_gemm.json` at the repo
/// root.
fn bench_parallel_matmul(c: &mut Criterion) {
    let n_threads = std::env::var("PUFFER_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(pool::num_threads)
        .max(1);
    let prev_threads = pool::num_threads();
    let mut group = c.benchmark_group("parallel_matmul");
    group.sample_size(10);
    for &n in &[128usize, 512, 1024] {
        let a = Tensor::randn(&[n, n], 1.0, 1);
        let b = Tensor::randn(&[n, n], 1.0, 2);
        group.bench_with_input(BenchmarkId::new("threads_1", n), &n, |bch, _| {
            pool::set_num_threads(1);
            bch.iter(|| matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new(format!("threads_{n_threads}"), n),
            &n,
            |bch, _| {
                pool::set_num_threads(n_threads);
                bch.iter(|| matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap())
            },
        );
    }
    pool::set_num_threads(prev_threads);
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geo = ConvGeometry { c_in: 64, h: 16, w: 16, k: 3, stride: 1, padding: 1 };
    let x = Tensor::randn(&[8, 64, 16, 16], 1.0, 3);
    c.bench_function("im2col_64c_16x16_b8", |b| b.iter(|| im2col(&x, &geo).unwrap()));
}

fn bench_truncated_svd(c: &mut Criterion) {
    // The shape of a VGG conv10 unrolled weight: (c_in k², c_out) = (4608, 512),
    // scaled down 4x to keep the bench fast.
    let a = Tensor::randn(&[1152, 128], 1.0, 4);
    c.bench_function("truncated_svd_1152x128_r32", |b| b.iter(|| truncated_svd(&a, 32).unwrap()));
}

criterion_group!(benches, bench_matmul, bench_parallel_matmul, bench_im2col, bench_truncated_svd);
criterion_main!(benches);
