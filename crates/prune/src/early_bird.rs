//! Early-Bird tickets (You et al. 2019): structured channel pruning drawn
//! early in training.
//!
//! Channels are ranked globally by the magnitude of their BatchNorm scale
//! factor γ (the network-slimming criterion); the lowest `prune_ratio`
//! fraction is masked. The "early bird" phenomenon is detected by the
//! normalized Hamming distance between consecutive epochs' masks: when the
//! largest distance over a sliding window drops below a threshold (paper:
//! 0.1 over 5 epochs), the ticket is drawn and training switches to the
//! pruned network. This is the "EB Train" baseline of the paper's Table 7.

use puffer_nn::layer::Layer;
use std::collections::VecDeque;

/// A structured channel mask: per BN layer, per channel.
pub type ChannelMask = Vec<Vec<bool>>;

/// Extracts all BatchNorm γ vectors of a model (in parameter order),
/// identified by the `"bn.weight"` naming convention.
pub fn bn_gammas<M: Layer>(model: &M) -> Vec<Vec<f32>> {
    model
        .params()
        .iter()
        .filter(|p| p.name == "bn.weight")
        .map(|p| p.value.as_slice().to_vec())
        .collect()
}

/// Computes the global channel mask pruning the `ratio` fraction of
/// channels with the smallest |γ| across all BN layers.
///
/// # Panics
///
/// Panics unless `0 <= ratio < 1`.
pub fn global_channel_mask(gammas: &[Vec<f32>], ratio: f32) -> ChannelMask {
    assert!((0.0..1.0).contains(&ratio), "prune ratio must be in [0, 1)");
    let mut all: Vec<f32> = gammas.iter().flatten().map(|g| g.abs()).collect();
    if all.is_empty() {
        return Vec::new();
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let k = (all.len() as f32 * ratio) as usize;
    let threshold = if k == 0 { f32::NEG_INFINITY } else { all[k - 1] };
    let mut budget = k;
    gammas
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|g| {
                    if budget > 0 && g.abs() <= threshold {
                        budget -= 1;
                        false
                    } else {
                        true
                    }
                })
                .collect()
        })
        .collect()
}

/// Normalized Hamming distance between two masks in `[0, 1]`.
///
/// # Panics
///
/// Panics on structurally different masks.
pub fn mask_distance(a: &ChannelMask, b: &ChannelMask) -> f32 {
    assert_eq!(a.len(), b.len(), "mask layer count mismatch");
    let mut diff = 0usize;
    let mut total = 0usize;
    for (la, lb) in a.iter().zip(b) {
        assert_eq!(la.len(), lb.len(), "mask channel count mismatch");
        total += la.len();
        diff += la.iter().zip(lb).filter(|(x, y)| x != y).count();
    }
    if total == 0 {
        0.0
    } else {
        diff as f32 / total as f32
    }
}

/// Early-bird ticket detector: a sliding window of recent masks.
#[derive(Debug)]
pub struct EarlyBirdDetector {
    prune_ratio: f32,
    threshold: f32,
    window: usize,
    history: VecDeque<ChannelMask>,
}

impl EarlyBirdDetector {
    /// Creates a detector with the paper's defaults (distance threshold
    /// 0.1 over a 5-epoch window).
    pub fn new(prune_ratio: f32) -> Self {
        Self::with_window(prune_ratio, 0.1, 5)
    }

    /// Creates a detector with explicit threshold and window.
    pub fn with_window(prune_ratio: f32, threshold: f32, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two masks");
        EarlyBirdDetector { prune_ratio, threshold, window, history: VecDeque::new() }
    }

    /// The pruning ratio this detector draws tickets for.
    pub fn prune_ratio(&self) -> f32 {
        self.prune_ratio
    }

    /// Observes one epoch's model; returns `Some(mask)` when the ticket has
    /// converged (all pairwise distances to the newest mask within the
    /// window are below the threshold).
    pub fn observe<M: Layer>(&mut self, model: &M) -> Option<ChannelMask> {
        let mask = global_channel_mask(&bn_gammas(model), self.prune_ratio);
        self.history.push_back(mask.clone());
        if self.history.len() > self.window {
            self.history.pop_front();
        }
        if self.history.len() == self.window {
            let newest = self.history.back().expect("nonempty");
            let converged = self
                .history
                .iter()
                .take(self.window - 1)
                .all(|m| mask_distance(m, newest) < self.threshold);
            if converged {
                return Some(mask);
            }
        }
        None
    }
}

/// Applies a structured mask: zeroes pruned channels' BN affine and the
/// producing conv filters (identified by the `"weight"` parameter directly
/// preceding each `"bn.weight"`), and keeps them dead by zeroing gradients.
/// Returns the **effective parameter count** (parameters in surviving
/// channels only) — the number reported in Table 7.
pub fn apply_channel_mask<M: Layer>(model: &mut M, mask: &ChannelMask) -> usize {
    let mut effective = 0usize;
    let mut bn_idx = 0usize;
    let mut params = model.params_mut();
    let n = params.len();
    let mut i = 0;
    while i < n {
        if params[i].name == "bn.weight" {
            let channels = &mask[bn_idx];
            // Zero pruned channels' γ (and β at i+1).
            for (c, &keep) in channels.iter().enumerate() {
                if !keep {
                    params[i].value.as_mut_slice()[c] = 0.0;
                    if i + 1 < n && params[i + 1].name == "bn.bias" {
                        params[i + 1].value.as_mut_slice()[c] = 0.0;
                    }
                }
            }
            let kept = channels.iter().filter(|&&k| k).count();
            effective += 2 * kept; // surviving BN affine pairs
            if i + 1 < n && params[i + 1].name == "bn.bias" {
                // skip counting bn.bias separately below
            }
            // Zero the producing conv's filters (rows of the weight at i-1).
            if i > 0 && params[i - 1].name.ends_with("weight") && params[i - 1].value.ndim() == 4 {
                let w = &mut params[i - 1];
                let c_out = w.value.shape()[0];
                let per = w.value.len() / c_out;
                debug_assert_eq!(c_out, channels.len(), "conv/bn channel mismatch");
                for (c, &keep) in channels.iter().enumerate() {
                    if !keep {
                        w.value.as_mut_slice()[c * per..(c + 1) * per].fill(0.0);
                    }
                }
                effective += kept * per;
            }
            bn_idx += 1;
            i += 2; // skip bn.bias
            continue;
        }
        // Parameters not governed by a BN mask count fully, except conv
        // weights that precede a bn.weight (handled above).
        let followed_by_bn = i + 1 < n
            && params[i + 1].name == "bn.weight"
            && params[i].name.ends_with("weight")
            && params[i].value.ndim() == 4;
        if !followed_by_bn {
            effective += params[i].len();
        }
        i += 1;
    }
    effective
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_models::units::ConvBnUnit;
    use puffer_nn::layer::Mode;
    use puffer_tensor::Tensor;

    fn unit(c_out: usize) -> ConvBnUnit {
        ConvBnUnit::dense(2, c_out, 3, 1, 1, true, 1).unwrap()
    }

    #[test]
    fn gammas_extracted_by_name() {
        let u = unit(6);
        let g = bn_gammas(&u);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len(), 6);
        assert!(g[0].iter().all(|&x| x == 1.0)); // fresh BN
    }

    #[test]
    fn global_mask_prunes_smallest_gammas() {
        let gammas = vec![vec![0.1, 0.9, 0.5], vec![0.05, 0.8]];
        let mask = global_channel_mask(&gammas, 0.4); // prune 2 of 5
        assert_eq!(mask[0], vec![false, true, true]);
        assert_eq!(mask[1], vec![false, true]);
    }

    #[test]
    fn zero_ratio_keeps_everything() {
        let gammas = vec![vec![0.1, 0.2]];
        let mask = global_channel_mask(&gammas, 0.0);
        assert!(mask[0].iter().all(|&k| k));
    }

    #[test]
    fn mask_distance_measures_flips() {
        let a = vec![vec![true, true, false, false]];
        let b = vec![vec![true, false, true, false]];
        assert_eq!(mask_distance(&a, &b), 0.5);
        assert_eq!(mask_distance(&a, &a), 0.0);
    }

    #[test]
    fn detector_fires_on_stable_masks() {
        let mut unit = unit(8);
        // Perturb gammas once so the ranking is nontrivial, then keep stable.
        for (c, g) in unit.params_mut()[1].value.as_mut_slice().iter_mut().enumerate() {
            *g = 0.1 + c as f32 * 0.1;
        }
        let mut det = EarlyBirdDetector::with_window(0.25, 0.1, 3);
        assert!(det.observe(&unit).is_none()); // window not full
        assert!(det.observe(&unit).is_none());
        let ticket = det.observe(&unit);
        assert!(ticket.is_some(), "stable masks must converge");
        let mask = ticket.unwrap();
        assert_eq!(mask[0].iter().filter(|&&k| !k).count(), 2); // 25% of 8
    }

    #[test]
    fn detector_does_not_fire_on_churning_masks() {
        let mut unit = unit(8);
        let mut det = EarlyBirdDetector::with_window(0.5, 0.05, 3);
        for epoch in 0..6 {
            // Rotate the gamma ranking every epoch: masks keep changing.
            for (c, g) in unit.params_mut()[1].value.as_mut_slice().iter_mut().enumerate() {
                *g = ((c + epoch) % 8) as f32 * 0.1 + 0.05;
            }
            assert!(det.observe(&unit).is_none(), "churning masks converged at {epoch}");
        }
    }

    #[test]
    fn apply_mask_zeroes_channels_and_counts_params() {
        let mut u = unit(4);
        let full = u.param_count();
        let mask = vec![vec![true, false, true, false]];
        let effective = apply_channel_mask(&mut u, &mask);
        // Half the conv filters and half the BN affine survive.
        let conv_per_filter = 2 * 3 * 3;
        assert_eq!(effective, 2 * conv_per_filter + 2 * 2);
        assert!(effective < full);
        // Pruned channel rows are zero.
        let w = &u.params()[0].value;
        assert!(w.as_slice()[conv_per_filter..2 * conv_per_filter].iter().all(|&x| x == 0.0));
        // Forward still works.
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, 2);
        let y = u.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 4, 5, 5]);
    }
}
