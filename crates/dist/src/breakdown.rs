//! Per-epoch breakdown accounting: the decomposition behind the paper's
//! Figure 4(a)/(b), Figure 6, and Figure 7 bar charts.
//!
//! A breakdown combines **measured** per-batch compute and encode/decode
//! times (from real gradient work and real compressor rounds) with
//! **modeled** communication time (the α–β cost model), per synchronization
//! round.

use crate::cost::ClusterProfile;
use puffer_compress::{AggregationKind, GradCompressor, RoundStats};
use puffer_probe as probe;
use std::time::Duration;

/// One epoch's time decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochBreakdown {
    /// Forward+backward gradient computation.
    pub compute: Duration,
    /// Gradient encoding (compression).
    pub encode: Duration,
    /// Wire time under the cost model (total, whether or not it overlapped
    /// compute).
    pub comm: Duration,
    /// The part of `comm` **not** hidden behind compute: under bucketed
    /// overlap only the tail of the per-bucket collective timeline that
    /// outlasts the slowest contributor's compute is exposed; on the
    /// synchronous path every comm nanosecond is (`comm_exposed == comm`).
    /// Always `≤ comm`. Informational — [`EpochBreakdown::total`] sums the
    /// serialized phases so span-sum accounting stays exact.
    pub comm_exposed: Duration,
    /// Gradient decoding/aggregation.
    pub decode: Duration,
    /// Steps skipped by the non-finite-gradient guard (compute was paid,
    /// but no synchronization or update happened).
    pub skipped_steps: usize,
}

impl EpochBreakdown {
    /// Total epoch time.
    ///
    /// **Invariant**: steps skipped by the non-finite guard still
    /// contribute their *compute* — the forward/backward work was paid
    /// before the guard tripped — but zero encode/comm/decode, because no
    /// synchronization round was played for them. Every duration summed
    /// here flows through [`BreakdownAccumulator`], which mirrors each one
    /// onto the probe as a `dist`-category span, so `total()` equals the
    /// sum of the probe's `compute`/`encode`/`comm`/`decode` span
    /// durations exactly (same `Duration` values, no re-timing).
    pub fn total(&self) -> Duration {
        self.compute + self.encode + self.comm + self.decode
    }

    /// Scales every time component (e.g. extrapolating from a measured
    /// subset of batches to a full epoch). `skipped_steps` is a count, not
    /// a time, and is left untouched.
    pub fn scaled(&self, factor: f64) -> EpochBreakdown {
        let s = |d: Duration| Duration::from_secs_f64(d.as_secs_f64() * factor);
        EpochBreakdown {
            compute: s(self.compute),
            encode: s(self.encode),
            comm: s(self.comm),
            comm_exposed: s(self.comm_exposed),
            decode: s(self.decode),
            skipped_steps: self.skipped_steps,
        }
    }
}

/// Communication time of one synchronization round for a compressor's
/// message under the profile.
pub fn round_comm_time(
    profile: &ClusterProfile,
    aggregation: AggregationKind,
    stats: &RoundStats,
) -> Duration {
    match aggregation {
        AggregationKind::AllReduce => profile.allreduce(stats.bytes_per_worker),
        AggregationKind::AllGather => profile.allgather(stats.bytes_per_worker),
    }
}

/// The trace span name of a collective's communication phase. The comm
/// phase is named after the collective that priced it ("allreduce" /
/// "allgather"), so per-collective latency histograms and α–β fits fall
/// out of the span family directly.
pub fn collective_span_name(aggregation: AggregationKind) -> &'static str {
    match aggregation {
        AggregationKind::AllReduce => "allreduce",
        AggregationKind::AllGather => "allgather",
    }
}

/// One bucket's priced communication within an overlapped round: what the
/// α–β model charged for its collective and how much of that outlasted the
/// round's compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketComm {
    /// Bytes each worker contributed to this bucket.
    pub bytes_per_worker: usize,
    /// Total bytes this bucket moved across all contributors.
    pub wire_bytes: usize,
    /// Modeled collective time for this bucket.
    pub comm: Duration,
    /// The share of `comm` not hidden behind compute
    /// (`max(0, end − max(start, slowest_compute))` on the round's
    /// modeled timeline). Always `≤ comm`.
    pub exposed: Duration,
}

/// Accumulates an epoch breakdown from measured per-round quantities.
#[derive(Debug, Default)]
pub struct BreakdownAccumulator {
    acc: EpochBreakdown,
    rounds: usize,
}

impl BreakdownAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one synchronization round at global step `step`.
    pub fn record(
        &mut self,
        step: usize,
        profile: &ClusterProfile,
        compressor: &dyn GradCompressor,
        compute: Duration,
        stats: &RoundStats,
    ) {
        let comm = round_comm_time(profile, compressor.aggregation(), stats);
        self.record_with_comm(step, compressor.aggregation(), profile.nodes, comm, compute, stats);
    }

    /// Records one round with an explicitly priced communication time —
    /// used by the trainer when the effective profile varies per round
    /// (surviving member set, heterogeneous links, comm jitter). `nodes`
    /// is the participant count the comm phase was priced at; together
    /// with the byte counts on the collective span it makes the measured
    /// α–β fit in `puffer-insight` well-posed.
    pub fn record_with_comm(
        &mut self,
        step: usize,
        aggregation: AggregationKind,
        nodes: usize,
        comm: Duration,
        compute: Duration,
        stats: &RoundStats,
    ) {
        self.acc.compute += compute;
        self.acc.encode += stats.encode_time;
        self.acc.decode += stats.decode_time;
        self.acc.comm += comm;
        // The synchronous round serializes after compute: every comm
        // nanosecond is exposed.
        self.acc.comm_exposed += comm;
        self.rounds += 1;
        if probe::enabled() {
            // Mirror the exact durations just accumulated onto the trace:
            // the Fig.-4 bins and the probe's span sums are the same
            // numbers by construction, not two timing paths. Every phase
            // span carries its step so a round can be reassembled from the
            // trace alone; the comm span is named after its collective.
            probe::emit_span("dist", "compute", compute, vec![("step", step.into())]);
            probe::emit_span("dist", "encode", stats.encode_time, vec![("step", step.into())]);
            probe::emit_span(
                "dist",
                collective_span_name(aggregation),
                comm,
                vec![
                    ("step", step.into()),
                    ("nodes", nodes.into()),
                    ("bytes", stats.encoded_bytes.into()),
                    ("bytes_per_worker", stats.bytes_per_worker.into()),
                    ("exposed_ns", (comm.as_nanos() as u64).into()),
                ],
            );
            probe::emit_span("dist", "decode", stats.decode_time, vec![("step", step.into())]);
            probe::counter_add("dist.rounds", 1);
            probe::counter_add("dist.wire_bytes", stats.encoded_bytes as u64);
        }
    }

    /// Records one **overlapped** round: the comm phase ran as a pipeline
    /// of per-bucket collectives whose start times were gated by gradient
    /// readiness during backward, so part of the wire time hid behind
    /// compute. One collective span is emitted per bucket — named after
    /// the pricing algorithm (`span_name`, see
    /// [`crate::cost::CollectiveAlgo::span_name`]) and carrying its bucket
    /// index, per-worker bytes, and the `exposed_ns` share that outlasted
    /// compute — so the trace's span sum still equals the breakdown's
    /// `comm` exactly, while `Σ exposed_ns` reproduces `comm_exposed`.
    /// `group` stamps the intra-group size on hierarchical spans.
    #[allow(clippy::too_many_arguments)]
    pub fn record_overlapped(
        &mut self,
        step: usize,
        span_name: &'static str,
        group: Option<usize>,
        nodes: usize,
        buckets: &[BucketComm],
        compute: Duration,
        stats: &RoundStats,
    ) {
        self.acc.compute += compute;
        self.acc.encode += stats.encode_time;
        self.acc.decode += stats.decode_time;
        for b in buckets {
            self.acc.comm += b.comm;
            self.acc.comm_exposed += b.exposed;
        }
        self.rounds += 1;
        if probe::enabled() {
            probe::emit_span("dist", "compute", compute, vec![("step", step.into())]);
            probe::emit_span("dist", "encode", stats.encode_time, vec![("step", step.into())]);
            for (i, b) in buckets.iter().enumerate() {
                let mut args = vec![
                    ("step", step.into()),
                    ("nodes", nodes.into()),
                    ("bytes", b.wire_bytes.into()),
                    ("bytes_per_worker", b.bytes_per_worker.into()),
                    ("bucket", i.into()),
                    ("exposed_ns", (b.exposed.as_nanos() as u64).into()),
                ];
                if let Some(g) = group {
                    args.push(("group", g.into()));
                }
                probe::emit_span("dist", span_name, b.comm, args);
            }
            probe::emit_span("dist", "decode", stats.decode_time, vec![("step", step.into())]);
            probe::counter_add("dist.rounds", 1);
            probe::counter_add("dist.wire_bytes", stats.encoded_bytes as u64);
        }
    }

    /// Records a step skipped by the non-finite-gradient guard: compute
    /// happened, but no round was played (see [`EpochBreakdown::total`]).
    pub fn record_skipped(&mut self, step: usize, compute: Duration) {
        self.acc.compute += compute;
        self.acc.skipped_steps += 1;
        if probe::enabled() {
            probe::emit_span(
                "dist",
                "compute",
                compute,
                vec![("step", step.into()), ("skipped", 1usize.into())],
            );
            probe::counter_add("dist.skipped_steps", 1);
        }
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The accumulated breakdown.
    pub fn breakdown(&self) -> EpochBreakdown {
        self.acc
    }
}

/// Measures one data-parallel epoch **sequentially**: worker shards are
/// computed one after another on the calling thread (so compute timings are
/// free of thread contention), the compressor plays a real round per step,
/// and communication is modeled. The model is actually updated each step
/// with the decoded mean gradient, so repeated calls converge like real
/// training. Per-step compute is the *maximum* shard time (the synchronous
/// straggler).
///
/// Returns the epoch's breakdown and the mean training loss.
///
/// # Errors
///
/// Returns [`DistError::BatchTooSmall`] if a batch cannot feed `nodes`
/// shards and [`DistError::WorkerFailed`] if a loss evaluation rejects its
/// inputs.
pub fn measure_sequential_epoch<M: Layer>(
    model: &mut M,
    global_batches: &[(Tensor, Vec<usize>)],
    nodes: usize,
    compressor: &mut dyn GradCompressor,
    profile: &ClusterProfile,
    lr: f32,
) -> DistResult<(EpochBreakdown, f32)> {
    use puffer_nn::loss::softmax_cross_entropy;
    let mut acc = BreakdownAccumulator::new();
    let mut loss_sum = 0.0f64;
    let mut steps = 0usize;
    let mut opt = puffer_nn::optim::Sgd::new(lr, 0.9, 1e-4);
    for batch in global_batches {
        let mut worker_grads: Vec<Vec<Tensor>> = Vec::with_capacity(nodes);
        let mut slowest = Duration::ZERO;
        let mut loss_mean = 0.0f32;
        for w in 0..nodes {
            let (images, labels) = crate::trainer::shard_batch(batch, w, nodes)?;
            let sp = probe::timed_span_with("dist", "shard_compute", || vec![("worker", w.into())]);
            model.zero_grad();
            let logits = model.forward(&images, Mode::Train);
            let (loss, dl) = softmax_cross_entropy(&logits, &labels, 0.0)
                .map_err(|e| DistError::WorkerFailed { worker: w, reason: e.to_string() })?;
            let _ = model.backward(&dl);
            slowest = slowest.max(sp.finish());
            loss_mean += loss / nodes as f32;
            worker_grads.push(model.params().iter().map(|p| p.grad.clone()).collect());
        }
        let (mean, stats) = compressor.round(&worker_grads);
        acc.record(steps, profile, compressor, slowest, &stats);
        model.zero_grad();
        for (p, g) in model.params_mut().into_iter().zip(mean) {
            p.grad = g;
        }
        opt.step(&mut model.params_mut());
        loss_sum += loss_mean as f64;
        steps += 1;
    }
    Ok((acc.breakdown(), (loss_sum / steps.max(1) as f64) as f32))
}

use crate::error::{DistError, DistResult};
use puffer_nn::layer::{Layer, Mode};
use puffer_tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_compress::none::NoCompression;
    use puffer_compress::signum::Signum;
    use puffer_tensor::Tensor;

    #[test]
    fn total_is_sum() {
        let b = EpochBreakdown {
            compute: Duration::from_millis(10),
            encode: Duration::from_millis(1),
            comm: Duration::from_millis(5),
            comm_exposed: Duration::from_millis(2),
            decode: Duration::from_millis(2),
            skipped_steps: 3,
        };
        // `comm_exposed` is a subset of `comm`, not an extra phase.
        assert_eq!(b.total(), Duration::from_millis(18));
        assert_eq!(b.scaled(2.0).total(), Duration::from_millis(36));
        assert_eq!(b.scaled(2.0).comm_exposed, Duration::from_millis(4));
        // Skip counts are not times; scaling leaves them alone.
        assert_eq!(b.scaled(2.0).skipped_steps, 3);
    }

    #[test]
    fn sync_rounds_expose_all_comm_and_overlapped_rounds_less() {
        let profile = ClusterProfile::p3_like(4);
        let mut vanilla = NoCompression::new();
        let grads: Vec<Vec<Tensor>> =
            (0..4).map(|w| vec![Tensor::randn(&[64, 64], 1.0, w as u64)]).collect();
        let (_, stats) = vanilla.round(&grads);

        let mut sync = BreakdownAccumulator::new();
        sync.record(0, &profile, &vanilla, Duration::from_millis(3), &stats);
        assert_eq!(sync.breakdown().comm_exposed, sync.breakdown().comm);

        let mut over = BreakdownAccumulator::new();
        let buckets = [
            BucketComm {
                bytes_per_worker: 8 << 10,
                wire_bytes: 32 << 10,
                comm: Duration::from_millis(2),
                exposed: Duration::ZERO, // fully hidden behind compute
            },
            BucketComm {
                bytes_per_worker: 8 << 10,
                wire_bytes: 32 << 10,
                comm: Duration::from_millis(2),
                exposed: Duration::from_millis(1), // half hidden
            },
        ];
        over.record_overlapped(0, "allreduce", None, 4, &buckets, Duration::from_millis(3), &stats);
        let b = over.breakdown();
        assert_eq!(b.comm, Duration::from_millis(4));
        assert_eq!(b.comm_exposed, Duration::from_millis(1));
        assert!(b.comm_exposed < b.comm);
        assert_eq!(over.rounds(), 1);
    }

    #[test]
    fn accumulator_records_real_rounds() {
        let profile = ClusterProfile::p3_like(4);
        let mut vanilla = NoCompression::new();
        let mut signum = Signum::new(0.9);
        let grads: Vec<Vec<Tensor>> =
            (0..4).map(|w| vec![Tensor::randn(&[256, 256], 1.0, w as u64)]).collect();

        let mut acc_v = BreakdownAccumulator::new();
        let (_, stats) = vanilla.round(&grads);
        acc_v.record(0, &profile, &vanilla, Duration::from_millis(3), &stats);

        let mut acc_s = BreakdownAccumulator::new();
        let (_, stats) = signum.round(&grads);
        acc_s.record(0, &profile, &signum, Duration::from_millis(3), &stats);

        // Signum moves 32× fewer bytes; on 4 nodes its comm must be smaller.
        assert!(acc_s.breakdown().comm < acc_v.breakdown().comm);
        // Signum's majority-vote decode is measured (nonzero).
        assert!(acc_s.breakdown().decode > Duration::ZERO);
        assert_eq!(acc_v.rounds(), 1);
    }
}
