//! Run-level context: a header record stamped into both exporters.
//!
//! Traces and metrics files were previously anonymous — nothing in the
//! output said which seed, worker count, or compression scheme produced
//! it, so downstream analysis (puffer-insight) had to be told out of
//! band. [`run_header`] collects key/value context into a process-global
//! map; the exporter emits it as the *first* JSONL row
//! (`{"type":"run_header",...}`) and as a `"run_context"` metadata record
//! in the Chrome trace, making every artifact self-describing.
//! [`run_header_env`] additionally captures every `PUFFER_*` environment
//! knob, so a report can state the exact configuration it measures.

use crate::span::{ArgValue, TraceEvent};
use crate::{enabled, now_rel};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

static CONTEXT: Mutex<BTreeMap<String, ArgValue>> = Mutex::new(BTreeMap::new());

fn context() -> std::sync::MutexGuard<'static, BTreeMap<String, ArgValue>> {
    CONTEXT.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn clear() {
    context().clear();
}

/// Merges fields into the run header (later values overwrite earlier ones
/// under the same key). A no-op when the probe is disabled.
pub fn run_header(fields: &[(&str, ArgValue)]) {
    if !enabled() {
        return;
    }
    let mut ctx = context();
    for (k, v) in fields {
        ctx.insert((*k).to_string(), v.clone());
    }
}

/// Captures every `PUFFER_*` environment variable into the run header
/// (lower-cased keys, e.g. `puffer_num_threads`). A no-op when disabled.
pub fn run_header_env() {
    if !enabled() {
        return;
    }
    let mut ctx = context();
    for (k, v) in std::env::vars() {
        if k.starts_with("PUFFER_") {
            ctx.insert(k.to_ascii_lowercase(), ArgValue::Str(v));
        }
    }
}

/// A key-sorted snapshot of the current run header.
#[must_use]
pub fn run_header_snapshot() -> Vec<(String, ArgValue)> {
    context().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// The `{"type":"run_header",...}` JSONL row (`None` when no context was
/// stamped).
pub(crate) fn header_row() -> Option<String> {
    let ctx = context();
    if ctx.is_empty() {
        return None;
    }
    let mut line = String::from("{\"type\":\"run_header\"");
    for (k, v) in ctx.iter() {
        line.push(',');
        crate::json::escape_into(&mut line, k);
        line.push(':');
        match v {
            ArgValue::U64(n) => {
                use std::fmt::Write as _;
                let _ = write!(line, "{n}");
            }
            ArgValue::I64(n) => {
                use std::fmt::Write as _;
                let _ = write!(line, "{n}");
            }
            ArgValue::F64(n) => crate::json::number_into(&mut line, *n),
            ArgValue::Str(s) => crate::json::escape_into(&mut line, s),
        }
    }
    line.push('}');
    Some(line)
}

/// Interns a dynamic header key: [`TraceEvent`] arg keys are
/// `&'static str`, so each distinct key is leaked exactly once. Bounded
/// by the number of distinct context keys a process ever stamps (a few
/// dozen), not by record volume.
fn intern(k: &str) -> &'static str {
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut v = INTERNED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(s) = v.iter().find(|s| **s == k) {
        return s;
    }
    let leaked: &'static str = Box::leak(k.to_string().into_boxed_str());
    v.push(leaked);
    leaked
}

/// The `"run_context"` metadata record for the Chrome trace (`None` when
/// no context was stamped).
pub(crate) fn header_event() -> Option<TraceEvent> {
    let ctx = context();
    if ctx.is_empty() {
        return None;
    }
    Some(TraceEvent {
        phase: 'M',
        name: "run_context",
        cat: "",
        ts: now_rel(),
        dur: Duration::ZERO,
        tid: 0,
        args: ctx.iter().map(|(k, v)| (intern(k), v.clone())).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configure, reset, testutil, ProbeConfig};

    #[test]
    fn header_merges_and_serializes() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        run_header(&[("seed", 17u64.into()), ("scheme", "none".into())]);
        run_header(&[("seed", 18u64.into()), ("workers", 4usize.into())]);
        let snap = run_header_snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().any(|(k, v)| k == "seed" && *v == ArgValue::U64(18)));
        let row = header_row().expect("header row present");
        let parsed = crate::json::parse(&row).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("run_header"));
        assert_eq!(parsed.get("workers").unwrap().as_num(), Some(4.0));
        assert_eq!(parsed.get("scheme").unwrap().as_str(), Some("none"));
        let ev = header_event().expect("header event present");
        assert_eq!((ev.phase, ev.name), ('M', "run_context"));
        assert!(ev.args.iter().any(|(k, _)| *k == "scheme"));
        reset();
        assert!(header_row().is_none(), "reset clears the header");
    }

    #[test]
    fn env_knobs_are_captured() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        // Set a knob for the duration of the test; the capture lower-cases.
        std::env::set_var("PUFFER_CTX_TEST_KNOB", "on");
        run_header_env();
        std::env::remove_var("PUFFER_CTX_TEST_KNOB");
        let snap = run_header_snapshot();
        assert!(snap
            .iter()
            .any(|(k, v)| k == "puffer_ctx_test_knob" && *v == ArgValue::Str("on".into())));
        reset();
    }

    #[test]
    fn disabled_header_is_a_no_op() {
        let _guard = testutil::lock();
        reset();
        run_header(&[("seed", 1u64.into())]);
        assert!(run_header_snapshot().is_empty());
        assert!(header_event().is_none());
    }
}
