//! Property-based tests for the NN substrate's core invariants.

use proptest::prelude::*;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::linear::{Linear, LowRankLinear};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::norm::{BatchNorm2d, LayerNorm};
use puffer_nn::optim::{clip_grad_norm, Sgd};
use puffer_nn::param::Param;
use puffer_tensor::stats::l2_norm;
use puffer_tensor::Tensor;

fn tensor2(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bias_free_linear_is_linear(x in tensor2(3, 4), y in tensor2(3, 4), a in -2.0f32..2.0) {
        let mut l = Linear::new(4, 5, false, 7).unwrap();
        let fx = l.forward(&x, Mode::Eval);
        let fy = l.forward(&y, Mode::Eval);
        let mixed = x.zip_map(&y, |xv, yv| a * xv + yv).unwrap();
        let fmix = l.forward(&mixed, Mode::Eval);
        let expected = fx.zip_map(&fy, |u, v| a * u + v).unwrap();
        prop_assert!(
            puffer_tensor::stats::rel_error(&expected, &fmix) < 1e-3,
            "linearity violated"
        );
    }

    #[test]
    fn low_rank_linear_is_linear_too(x in tensor2(2, 6), a in -2.0f32..2.0) {
        let mut l = LowRankLinear::new(6, 4, 2, false, 9).unwrap();
        let fx = l.forward(&x, Mode::Eval);
        let scaled = x.map(|v| a * v);
        let fs = l.forward(&scaled, Mode::Eval);
        for (u, v) in fs.as_slice().iter().zip(fx.as_slice()) {
            prop_assert!((u - a * v).abs() < 1e-3 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn batchnorm_train_output_is_standardized(seed in 0u64..500) {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::randn(&[6, 2, 3, 3], 2.0, seed);
        let y = bn.forward(&x, Mode::Train);
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..6 {
                let base = (n * 2 + c) * 9;
                vals.extend_from_slice(&y.as_slice()[base..base + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "channel {c} mean {mean}");
        }
    }

    #[test]
    fn layernorm_is_shift_invariant(x in tensor2(4, 6), shift in -5.0f32..5.0) {
        let mut ln = LayerNorm::new(6).unwrap();
        let y1 = ln.forward(&x, Mode::Eval);
        let shifted = x.map(|v| v + shift);
        let y2 = ln.forward(&shifted, Mode::Eval);
        prop_assert!(puffer_tensor::stats::rel_error(&y1, &y2) < 1e-2);
    }

    #[test]
    fn ce_gradient_rows_sum_to_zero(logits in tensor2(4, 5), t0 in 0usize..5) {
        let targets = [t0, (t0 + 1) % 5, (t0 + 2) % 5, (t0 + 3) % 5];
        let (_, grad) = softmax_cross_entropy(&logits, &targets, 0.05).unwrap();
        for i in 0..4 {
            let s: f32 = grad.row_slice(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn ce_loss_nonnegative_without_smoothing(logits in tensor2(3, 4)) {
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2], 0.0).unwrap();
        prop_assert!(loss >= -1e-6);
    }

    #[test]
    fn sgd_step_moves_against_gradient(w0 in proptest::collection::vec(-5.0f32..5.0, 1..8)) {
        // One plain-SGD step on f(w) = ½‖w‖² shrinks the norm.
        let mut p = Param::new("w", Tensor::from_vec(w0.clone(), &[w0.len()]).unwrap());
        p.grad = p.value.clone();
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let before = l2_norm(&p.value);
        opt.step(&mut [&mut p]);
        prop_assert!(l2_norm(&p.value) <= before + 1e-6);
    }

    #[test]
    fn clip_never_increases_norm(g in proptest::collection::vec(-10.0f32..10.0, 1..16), max in 0.1f32..5.0) {
        let mut p = Param::new("w", Tensor::zeros(&[g.len()]));
        p.grad = Tensor::from_vec(g, &[p.value.len()]).unwrap();
        let before = l2_norm(&p.grad);
        clip_grad_norm(&mut [&mut p], max);
        let after = l2_norm(&p.grad);
        prop_assert!(after <= before + 1e-5);
        prop_assert!(after <= max + 1e-4);
    }

    #[test]
    fn backward_after_forward_shape_contract(rows in 1usize..5) {
        let mut l = Linear::new(3, 2, true, 11).unwrap();
        let x = Tensor::randn(&[rows, 3], 1.0, rows as u64);
        let y = l.forward(&x, Mode::Train);
        prop_assert_eq!(y.shape(), &[rows, 2]);
        let gx = l.backward(&Tensor::ones(&[rows, 2]));
        prop_assert_eq!(gx.shape(), &[rows, 3]);
    }
}
