//! Property tests for the streaming histogram: bucket containment,
//! merge associativity/commutativity, percentile monotonicity, and the
//! bounded relative error of every quantile. The seeded-loop versions of
//! these properties live in `src/hist.rs`; this file widens them to
//! arbitrary inputs via proptest.

use proptest::prelude::*;
use puffer_probe::Histogram;

fn build(xs: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in xs {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn count_sum_min_max_are_exact(xs in proptest::collection::vec(any::<u64>(), 1..200)) {
        let h = build(&xs);
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.min(), *xs.iter().min().unwrap());
        prop_assert_eq!(h.max(), *xs.iter().max().unwrap());
    }

    #[test]
    fn percentiles_are_monotone(xs in proptest::collection::vec(any::<u64>(), 1..200)) {
        let h = build(&xs);
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = h.percentile(f64::from(i) / 20.0);
            prop_assert!(q >= prev, "quantiles must be non-decreasing in p");
            prev = q;
        }
        prop_assert_eq!(h.percentile(1.0), h.max(), "p100 is the exact maximum");
    }

    #[test]
    fn quantile_error_is_bounded(xs in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let h = build(&xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for p in [0.5, 0.9, 0.99] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.percentile(p);
            prop_assert!(approx >= exact, "upper-bound quantile cannot undershoot");
            prop_assert!(
                approx as f64 <= exact as f64 * 1.125 + 1.0,
                "bucket error exceeded: approx {} vs exact {}", approx, exact
            );
        }
    }

    #[test]
    fn merge_is_associative_and_equals_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");
        // c ⊕ b ⊕ a
        let mut rev = hc.clone();
        rev.merge(&hb);
        rev.merge(&ha);
        prop_assert_eq!(&left, &rev, "merge must be commutative");
        // And equal to recording the concatenated stream.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &build(&all), "shards must equal the unsharded stream");
    }
}
