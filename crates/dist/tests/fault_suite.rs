//! Acceptance tests for the fault-tolerant data-parallel trainer: crash
//! degradation with survivor re-normalization, bitwise checkpoint/resume
//! (including compressor error-feedback state), the AMP-style non-finite
//! guard, message drop/corruption recovery, and config validation.
//!
//! Every fault below is injected from a seeded [`FaultPlan`], so the whole
//! suite is deterministic.

use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_dist::checkpoint::{CheckpointPolicy, DistCheckpoint};
use puffer_dist::cost::{ClusterProfile, HeteroProfile};
use puffer_dist::error::DistError;
use puffer_dist::fault::FaultPlan;
use puffer_dist::trainer::{
    train_data_parallel, train_data_parallel_with, DistConfig, RecoveryPolicy, RunOptions,
};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_tensor::Tensor;
use std::time::Duration;

fn mlp(seed_base: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 16, true, seed_base).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(16, 3, true, seed_base + 1).unwrap()),
    ])
}

/// Batches whose rows are all identical within a batch, so every worker
/// shard produces the **same** per-shard mean gradient. The correct mean
/// over any survivor subset then equals the full mean — which is exactly
/// what lets these tests distinguish survivor re-normalization (mean over
/// `k` contributions) from naive division by the original worker count.
fn uniform_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n_batches)
        .map(|b| {
            let row = Tensor::randn(&[1, 6], 1.0, 300 + b as u64);
            let data: Vec<f32> = row.as_slice().repeat(batch);
            let x = Tensor::from_vec(data, &[batch, 6]).unwrap();
            (x, vec![b % 3; batch])
        })
        .collect()
}

/// Ordinary batches with distinct rows (shards differ across workers).
fn mixed_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n_batches)
        .map(|b| {
            let x = Tensor::randn(&[batch, 6], 1.0, 100 + b as u64);
            let labels = (0..batch).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

fn zero_cost_cfg(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        profile: ClusterProfile::zero_cost(workers),
    }
}

/// Fast-failing recovery so timeout paths resolve in milliseconds.
fn quick_recovery() -> RecoveryPolicy {
    RecoveryPolicy { step_timeout: Duration::from_millis(80), max_retries: 2, backoff: 2.0 }
}

fn max_rel_error(a: &[Tensor], b: &[Tensor]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut worst = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        for (&u, &v) in x.as_slice().iter().zip(y.as_slice()) {
            let denom = u.abs().max(v.abs()).max(1e-6);
            worst = worst.max((u - v).abs() / denom);
        }
    }
    worst
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("puffer_fault_suite_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn crash_degrades_to_survivors_with_renormalized_mean() {
    // Worker 3 of 4 dies at step 1. The run must complete over the three
    // survivors with the mean re-normalized to the contributing count: on
    // uniform batches the renormalized mean equals the full mean, so the
    // degraded run tracks the clean one (a sum/4 implementation would
    // scale the update by 3/4 and drift immediately).
    let batches = uniform_batches(4, 8);
    let cfg = zero_cost_cfg(4);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(11), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        faults: FaultPlan::new(7).with_crash(3, 1),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(11), &batches, &mut comp, &cfg, &opts).unwrap();

    assert_eq!(out.faults.crashed, vec![(3, 1)]);
    assert_eq!(out.faults.survivors, 3);
    assert_eq!(out.step_losses.len(), batches.len());
    let rel = max_rel_error(&out.final_params, &clean.final_params);
    assert!(rel < 1e-3, "degraded run drifted from clean run: rel error {rel}");
}

#[test]
fn checkpoint_crash_resume_is_bitwise_identical() {
    // The flagship robustness claim: checkpoint at step 3, crash every
    // worker at step 4, resume from the on-disk checkpoint, and land on
    // final parameters bitwise identical to an uninterrupted run — with
    // PowerSGD in the loop, so optimizer momentum AND the compressor's
    // error-feedback/query state must both survive the round trip.
    let batches = mixed_batches(6, 8);
    let cfg = zero_cost_cfg(2);
    let factory = |_w: usize| mlp(21);

    let mut clean_c = PowerSgd::new(2, 9);
    let clean = train_data_parallel(factory, &batches, &mut clean_c, &cfg).unwrap();

    // Checkpointing alone must not perturb the run.
    let dir = scratch_dir("resume");
    let ckpt_opts = RunOptions {
        checkpoint: CheckpointPolicy::every(3, &dir),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut ckpt_c = PowerSgd::new(2, 9);
    let with_ckpt =
        train_data_parallel_with(factory, &batches, &mut ckpt_c, &cfg, &ckpt_opts).unwrap();
    assert_eq!(with_ckpt.final_params, clean.final_params);
    assert!(!with_ckpt.checkpoints.is_empty());

    // Crash the whole fleet after the step-3 checkpoint: the run dies, the
    // checkpoint survives on disk.
    let crash_dir = scratch_dir("resume_crash");
    let crash_opts = RunOptions {
        faults: FaultPlan::new(3).with_crash(0, 4).with_crash(1, 4),
        checkpoint: CheckpointPolicy::every(3, &crash_dir),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut crash_c = PowerSgd::new(2, 9);
    let err =
        train_data_parallel_with(factory, &batches, &mut crash_c, &cfg, &crash_opts).unwrap_err();
    assert!(matches!(err, DistError::AllWorkersDead { step: 4 }), "{err:?}");

    // Resume from the surviving checkpoint with a *fresh* compressor.
    let path = CheckpointPolicy::every(3, &crash_dir).path_for(3).unwrap();
    let ck = DistCheckpoint::load(&path).unwrap();
    assert_eq!(ck.step, 3);
    let resume_opts =
        RunOptions { resume: Some(ck), recovery: quick_recovery(), ..RunOptions::default() };
    let mut resume_c = PowerSgd::new(2, 9);
    let resumed =
        train_data_parallel_with(factory, &batches, &mut resume_c, &cfg, &resume_opts).unwrap();
    assert_eq!(resumed.final_params, clean.final_params, "resume must be bitwise identical");
    assert_eq!(resumed.step_losses.len(), 3, "resume replays only steps 3..6");
}

#[test]
fn nonfinite_gradient_skips_the_step_in_lockstep() {
    // A poisoned gradient at (worker 1, step 2) must skip that step on
    // every replica — the run then equals, bitwise, a run whose batch
    // list never contained step 2 at all.
    let batches = mixed_batches(5, 8);
    let cfg = zero_cost_cfg(2);
    let opts = RunOptions {
        faults: FaultPlan::new(5).with_nonfinite(1, 2),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(31), &batches, &mut comp, &cfg, &opts).unwrap();
    assert_eq!(out.faults.skipped_steps, vec![2]);
    assert_eq!(out.breakdown.skipped_steps, 1);
    assert_eq!(out.step_losses.len(), 5);

    let mut without: Vec<_> = batches.clone();
    without.remove(2);
    let mut ref_c = NoCompression::new();
    let reference = train_data_parallel(|_| mlp(31), &without, &mut ref_c, &cfg).unwrap();
    assert_eq!(out.final_params, reference.final_params, "skip must not desynchronize replicas");
}

#[test]
fn dropped_message_is_retried_transparently() {
    // A single dropped send is retried by the worker and the run stays
    // bitwise identical to a clean one.
    let batches = mixed_batches(4, 8);
    let cfg = zero_cost_cfg(2);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(41), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        faults: FaultPlan::new(13).with_drop(1, 1),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(41), &batches, &mut comp, &cfg, &opts).unwrap();
    assert_eq!(out.final_params, clean.final_params);
    assert_eq!(out.faults.lost_contributions, 0);
    assert_eq!(out.faults.survivors, 2);
}

#[test]
fn permanently_lost_contribution_degrades_but_keeps_lockstep() {
    // Worker 1's step-1 message is dropped on every retry. The aggregator
    // times out, gives up on the contribution, and proceeds with the
    // survivor's gradient — but still broadcasts the verdict to both
    // workers, so the replicas remain synchronized and the run completes.
    let batches = uniform_batches(4, 8);
    let cfg = zero_cost_cfg(2);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(51), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        faults: FaultPlan::new(17).with_drop_all(1, 1),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(51), &batches, &mut comp, &cfg, &opts).unwrap();
    assert_eq!(out.faults.lost_contributions, 1);
    assert_eq!(out.faults.survivors, 2, "a slow message is not a death sentence");
    let rel = max_rel_error(&out.final_params, &clean.final_params);
    assert!(rel < 1e-3, "uniform batches: one-worker mean equals full mean, rel {rel}");
}

#[test]
fn corrupted_message_fails_checksum_and_is_discarded() {
    // A bit flipped on the wire at (worker 1, step 2): the checksum
    // rejects the message, the step proceeds on the remaining
    // contribution, and the sender stays a live member.
    let batches = uniform_batches(4, 8);
    let cfg = zero_cost_cfg(2);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(61), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        faults: FaultPlan::new(19).with_corrupt(1, 2),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(61), &batches, &mut comp, &cfg, &opts).unwrap();
    assert_eq!(out.faults.corrupted_messages, 1);
    assert_eq!(out.faults.survivors, 2);
    let rel = max_rel_error(&out.final_params, &clean.final_params);
    assert!(rel < 1e-3, "corrupted contribution must not poison the mean, rel {rel}");
}

#[test]
fn stragglers_change_timing_but_never_math() {
    // A 3x-slow worker stretches the measured compute but the final
    // parameters are bitwise those of the clean run (default timeouts are
    // generous enough that nothing is declared lost).
    let batches = mixed_batches(3, 8);
    let cfg = zero_cost_cfg(2);
    let mut clean_c = NoCompression::new();
    let clean = train_data_parallel(|_| mlp(71), &batches, &mut clean_c, &cfg).unwrap();

    let opts = RunOptions {
        faults: FaultPlan::new(23).with_slowdown(1, 3.0).with_jitter(0.2),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(71), &batches, &mut comp, &cfg, &opts).unwrap();
    assert!(out.faults.is_clean(), "{:?}", out.faults);
    assert_eq!(out.final_params, clean.final_params);
}

#[test]
fn hetero_profile_prices_rounds_deterministically() {
    // A heterogeneous cluster with one slow link prices communication
    // above the homogeneous baseline, and the seeded jitter makes the
    // accounting reproducible run-to-run.
    let batches = mixed_batches(3, 8);
    let cfg = DistConfig::p3(2, 0.05);
    let hetero = HeteroProfile::uniform(cfg.profile)
        .with_node(1, cfg.profile.alpha * 40.0, cfg.profile.beta * 40.0)
        .with_jitter(0.3, 99);
    let opts = RunOptions { hetero: Some(hetero), ..RunOptions::default() };

    let mut c1 = NoCompression::new();
    let a = train_data_parallel_with(|_| mlp(81), &batches, &mut c1, &cfg, &opts).unwrap();
    let mut c2 = NoCompression::new();
    let b = train_data_parallel_with(|_| mlp(81), &batches, &mut c2, &cfg, &opts).unwrap();
    assert_eq!(a.breakdown.comm, b.breakdown.comm, "seeded jitter must reproduce");

    let mut c3 = NoCompression::new();
    let homo = train_data_parallel(|_| mlp(81), &batches, &mut c3, &cfg).unwrap();
    assert!(a.breakdown.comm > homo.breakdown.comm, "slow link must cost more");
}

#[test]
fn invalid_inputs_are_rejected_up_front() {
    let batches = mixed_batches(2, 8);
    let mut comp = NoCompression::new();

    let zero = DistConfig { workers: 0, ..zero_cost_cfg(1) };
    assert!(matches!(
        train_data_parallel(|_| mlp(1), &batches, &mut comp, &zero),
        Err(DistError::InvalidConfig { .. })
    ));

    let nan_lr = DistConfig { lr: f32::NAN, ..zero_cost_cfg(2) };
    assert!(matches!(
        train_data_parallel(|_| mlp(1), &batches, &mut comp, &nan_lr),
        Err(DistError::InvalidConfig { .. })
    ));

    let starved = zero_cost_cfg(16);
    assert!(matches!(
        train_data_parallel(|_| mlp(1), &batches, &mut comp, &starved),
        Err(DistError::BatchTooSmall { rows: 8, workers: 16 })
    ));

    let bad_recovery = RunOptions {
        recovery: RecoveryPolicy { backoff: 0.5, ..RecoveryPolicy::default() },
        ..RunOptions::default()
    };
    assert!(matches!(
        train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &zero_cost_cfg(2), &bad_recovery),
        Err(DistError::InvalidConfig { .. })
    ));

    let stale_resume = RunOptions {
        resume: Some(DistCheckpoint {
            step: 99,
            params: Vec::new(),
            velocity: Vec::new(),
            buffers: Vec::new(),
            compressor: Vec::new(),
            members: Vec::new(),
            epoch: 0,
        }),
        ..RunOptions::default()
    };
    assert!(matches!(
        train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &zero_cost_cfg(2), &stale_resume),
        Err(DistError::Checkpoint { .. })
    ));
}
