//! PyTorch-DistributedDataParallel-style gradient bucketing with
//! compute/communication overlap — the model behind the paper's
//! Figure 4(c) DDP scaling study.
//!
//! DDP buffers gradients during backward and launches an allreduce as soon
//! as a bucket fills (default 25 MB), overlapping communication with the
//! remaining backward computation. We model one training step as a small
//! discrete-event simulation: buckets become ready at evenly spaced points
//! during backward; each bucket's allreduce starts when the bucket is ready
//! *and* the previous allreduce finished (collectives serialize on the
//! NCCL stream); the step ends when both backward and the last allreduce
//! are done.

use crate::cost::ClusterProfile;
use std::time::Duration;

/// DDP's default bucket size (25 MB), per the paper's footnote 2.
pub const DEFAULT_BUCKET_BYTES: usize = 25 << 20;

/// Splits per-layer gradient byte sizes into DDP buckets, walking layers in
/// reverse (gradients become ready back-to-front during backward).
pub fn bucketize(layer_bytes: &[usize], bucket_bytes: usize) -> Vec<usize> {
    assert!(bucket_bytes > 0, "bucket size must be nonzero");
    let mut buckets = Vec::new();
    let mut current = 0usize;
    for &b in layer_bytes.iter().rev() {
        current += b;
        if current >= bucket_bytes {
            buckets.push(current);
            current = 0;
        }
    }
    if current > 0 {
        buckets.push(current);
    }
    buckets
}

/// One simulated DDP training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdpStep {
    /// Pure computation time (forward + backward).
    pub compute: Duration,
    /// Wall-clock of the whole step including communication.
    pub total: Duration,
    /// Communication time that was NOT hidden behind backward.
    pub exposed_comm: Duration,
}

/// Simulates one DDP step.
///
/// * `forward`/`backward` — measured compute times;
/// * `layer_bytes` — per-layer gradient sizes (model order);
/// * `profile` — the cluster.
pub fn simulate_step(
    forward: Duration,
    backward: Duration,
    layer_bytes: &[usize],
    bucket_bytes: usize,
    profile: &ClusterProfile,
) -> DdpStep {
    let buckets = bucketize(layer_bytes, bucket_bytes);
    let compute = forward + backward;
    if buckets.is_empty() || profile.nodes <= 1 {
        return DdpStep { compute, total: compute, exposed_comm: Duration::ZERO };
    }
    let n = buckets.len();
    let bwd = backward.as_secs_f64();
    let fwd = forward.as_secs_f64();
    // Bucket i (in launch order) becomes ready at an evenly spaced fraction
    // of backward.
    let mut stream_free = 0.0f64; // when the comm stream is next available
    let mut last_done = 0.0f64;
    for (i, &bytes) in buckets.iter().enumerate() {
        let ready = fwd + bwd * ((i + 1) as f64 / n as f64);
        let start = ready.max(stream_free);
        let dur = profile.allreduce(bytes).as_secs_f64();
        stream_free = start + dur;
        last_done = stream_free;
    }
    let total = last_done.max(fwd + bwd);
    DdpStep {
        compute,
        total: Duration::from_secs_f64(total),
        exposed_comm: Duration::from_secs_f64((total - (fwd + bwd)).max(0.0)),
    }
}

/// Per-epoch DDP time for `steps` identical steps.
pub fn simulate_epoch(
    forward: Duration,
    backward: Duration,
    layer_bytes: &[usize],
    bucket_bytes: usize,
    profile: &ClusterProfile,
    steps: usize,
) -> Duration {
    let step = simulate_step(forward, backward, layer_bytes, bucket_bytes, profile);
    Duration::from_secs_f64(step.total.as_secs_f64() * steps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketize_respects_threshold() {
        let layers = vec![10 << 20, 10 << 20, 10 << 20, 2 << 20];
        let buckets = bucketize(&layers, 20 << 20);
        let total: usize = buckets.iter().sum();
        assert_eq!(total, 32 << 20);
        // Reverse walk: 2+10+10 = 22 MB ≥ 20 closes bucket 0; 10 MB remains.
        assert_eq!(buckets, vec![22 << 20, 10 << 20]);
    }

    #[test]
    fn single_node_has_no_comm() {
        let step = simulate_step(
            Duration::from_millis(10),
            Duration::from_millis(20),
            &[50 << 20],
            DEFAULT_BUCKET_BYTES,
            &ClusterProfile::p3_like(1),
        );
        assert_eq!(step.total, step.compute);
        assert_eq!(step.exposed_comm, Duration::ZERO);
    }

    #[test]
    fn overlap_hides_some_communication() {
        // Many buckets + long backward: most comm hides behind compute, so
        // total << compute + full-comm.
        let layers = vec![5 << 20; 20]; // 100 MB in 20 layers
        let profile = ClusterProfile::p3_like(8);
        let fwd = Duration::from_millis(50);
        let bwd = Duration::from_millis(150);
        let step = simulate_step(fwd, bwd, &layers, DEFAULT_BUCKET_BYTES, &profile);
        let serial_comm: Duration =
            bucketize(&layers, DEFAULT_BUCKET_BYTES).iter().map(|&b| profile.allreduce(b)).sum();
        assert!(step.total < step.compute + serial_comm, "no overlap achieved");
        assert!(step.total >= step.compute);
    }

    #[test]
    fn smaller_model_scales_better() {
        // The Figure 4(c) claim: the factorized model's smaller gradient
        // gives a larger DDP speedup as node count grows.
        let vanilla_layers = vec![4 << 20; 25]; // 100 MB (ResNet-50-ish)
        let puffer_layers = vec![4 << 20; 15]; // 60 MB (hybrid)
        let fwd = Duration::from_millis(40);
        let bwd_v = Duration::from_millis(120);
        let bwd_p = Duration::from_millis(100);
        for nodes in [2usize, 16] {
            let profile = ClusterProfile::p3_like(nodes);
            let v = simulate_step(fwd, bwd_v, &vanilla_layers, DEFAULT_BUCKET_BYTES, &profile);
            let p = simulate_step(fwd, bwd_p, &puffer_layers, DEFAULT_BUCKET_BYTES, &profile);
            assert!(p.total < v.total, "pufferfish slower at {nodes} nodes");
        }
    }

    #[test]
    fn epoch_scales_linearly_in_steps() {
        let profile = ClusterProfile::p3_like(4);
        let layers = vec![10 << 20];
        let one = simulate_epoch(
            Duration::from_millis(5),
            Duration::from_millis(10),
            &layers,
            DEFAULT_BUCKET_BYTES,
            &profile,
            1,
        );
        let ten = simulate_epoch(
            Duration::from_millis(5),
            Duration::from_millis(10),
            &layers,
            DEFAULT_BUCKET_BYTES,
            &profile,
            10,
        );
        assert!((ten.as_secs_f64() - 10.0 * one.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn zero_bucket_rejected() {
        let _ = bucketize(&[1], 0);
    }
}
