//! Property-based tests for the communication cost model (ring, tree, and
//! hierarchical closed forms vs executed simulations) and the DDP
//! bucketing simulator.

use proptest::prelude::*;
use puffer_dist::collectives::{hier_allreduce, tree_allreduce};
use puffer_dist::cost::{ceil_log2, hier_group, ClusterProfile};
use puffer_dist::ddp::{bucketize, simulate_step, DEFAULT_BUCKET_BYTES};
use puffer_dist::ring::ring_allreduce;
use std::time::Duration;

/// Per-rank buffers `buffer[i] = [(i+1); n]`, whose elementwise allreduce
/// sum is exactly `p(p+1)/2` — representable in f32 for every `p ≤ 64`.
fn rank_buffers(p: usize, n: usize) -> Vec<Vec<f32>> {
    (0..p).map(|i| vec![(i + 1) as f32; n]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allreduce_monotone_in_bytes(a in 0usize..1_000_000, b in 0usize..1_000_000, nodes in 2usize..32) {
        let c = ClusterProfile::p3_like(nodes);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(c.allreduce(lo) <= c.allreduce(hi));
        prop_assert!(c.allgather(lo) <= c.allgather(hi));
    }

    #[test]
    fn allgather_never_cheaper_than_allreduce_at_same_bytes(bytes in 1usize..10_000_000, nodes in 2usize..32) {
        // Per-node allgather traffic (p−1)·n ≥ ring allreduce 2(p−1)/p·n
        // whenever p ≥ 2... latency terms differ; compare bandwidth-dominant
        // sizes only.
        prop_assume!(bytes > 1_000_000);
        let c = ClusterProfile { alpha: 0.0, ..ClusterProfile::p3_like(nodes) };
        prop_assert!(c.allgather(bytes) >= c.allreduce(bytes));
    }

    #[test]
    fn bucketize_conserves_bytes(layers in proptest::collection::vec(1usize..10_000_000, 1..40), bucket in 1usize..50_000_000) {
        let buckets = bucketize(&layers, bucket);
        prop_assert_eq!(buckets.iter().sum::<usize>(), layers.iter().sum::<usize>());
        // Every bucket except possibly the last-flushed is >= threshold
        // (can't easily identify which; weaker: no empty buckets).
        prop_assert!(buckets.iter().all(|&b| b > 0));
    }

    #[test]
    fn ddp_step_at_least_compute_and_no_overhidden_comm(
        fwd_ms in 1u64..50, bwd_ms in 1u64..100,
        layers in proptest::collection::vec(1usize..20_000_000, 1..20),
        nodes in 1usize..32,
    ) {
        let profile = ClusterProfile::p3_like(nodes);
        let fwd = Duration::from_millis(fwd_ms);
        let bwd = Duration::from_millis(bwd_ms);
        let step = simulate_step(fwd, bwd, &layers, DEFAULT_BUCKET_BYTES, &profile);
        prop_assert!(step.total >= step.compute);
        // Total never exceeds compute + fully serialized communication.
        let serial: Duration = bucketize(&layers, DEFAULT_BUCKET_BYTES)
            .iter()
            .map(|&b| profile.allreduce(b))
            .sum();
        prop_assert!(step.total <= step.compute + serial + Duration::from_micros(1));
        prop_assert_eq!(step.exposed_comm, step.total - step.compute);
    }

    #[test]
    fn ring_trace_traffic_matches_closed_form(p in 2usize..12, n in 1usize..200) {
        // Total per-node traffic over an executed ring allreduce must equal
        // the bandwidth term of the closed-form cost, 2·((p−1)/p)·n·4 bytes,
        // up to chunk-rounding: each of the 2(p−1) steps moves a chunk whose
        // size differs from n/p by at most one element.
        let mut buffers: Vec<Vec<f32>> = (0..p).map(|i| vec![i as f32; n]).collect();
        let trace = ring_allreduce(&mut buffers);
        let total: usize = trace.step_bytes.iter().sum();
        let closed = 2.0 * ((p - 1) as f64 / p as f64) * (n * 4) as f64;
        let slack = (8 * (p - 1)) as f64;
        prop_assert!(
            (total as f64 - closed).abs() <= slack,
            "total {} vs closed form {} (p={}, n={})", total, closed, p, n
        );
    }

    #[test]
    fn more_nodes_never_reduces_allgather(bytes in 1usize..1_000_000, a in 2usize..16, b in 2usize..16) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = ClusterProfile::p3_like(lo).allgather(bytes);
        let t_hi = ClusterProfile::p3_like(hi).allgather(bytes);
        prop_assert!(t_hi >= t_lo);
    }

    #[test]
    fn tree_trace_matches_closed_form_and_sums(p in 2usize..=64, n in 1usize..300) {
        let mut buffers = rank_buffers(p, n);
        let trace = tree_allreduce(&mut buffers);
        // Correctness: every rank holds the exact elementwise sum.
        let want = (p * (p + 1) / 2) as f32;
        prop_assert!(buffers.iter().all(|b| b.iter().all(|&v| v == want)));
        // Schedule shape: 2⌈log₂p⌉ full-buffer steps.
        prop_assert_eq!(trace.steps(), 2 * ceil_log2(p) as usize);
        prop_assert!(trace.step_bytes.iter().all(|&b| b == n * 4));
        // Priced trace reproduces the closed form (ns quantization only).
        let profile = ClusterProfile::p3_like(p);
        let closed = profile.tree_allreduce(n * 4);
        let diff = trace.time(&profile).abs_diff(closed);
        prop_assert!(diff <= Duration::from_nanos(2), "diff {:?}", diff);
    }

    #[test]
    fn hier_trace_matches_closed_form_and_sums(
        p in 2usize..=64,
        n in 1usize..300,
        group in 0usize..=9,
    ) {
        let mut buffers = rank_buffers(p, n);
        let trace = hier_allreduce(&mut buffers, group);
        let want = (p * (p + 1) / 2) as f32;
        prop_assert!(buffers.iter().all(|b| b.iter().all(|&v| v == want)));
        // Closed form: 2⌈log₂g⌉ intra steps of n bytes + ring over the
        // ⌈p/g⌉ leaders. The leader ring's chunking rounds each of its
        // 2(G−1) steps by at most one f32 against the (G−1)/G·n·β
        // bandwidth term — everything else is exact.
        let g = hier_group(p, group);
        let groups = p.div_ceil(g);
        let profile = ClusterProfile::p3_like(p);
        let closed = profile.hier_allreduce(n * 4, group);
        let ring_slack = 2.0 * (groups.saturating_sub(1)) as f64 * 4.0 * profile.beta;
        let tol = Duration::from_secs_f64(ring_slack) + Duration::from_nanos(4);
        let diff = trace.time(&profile).abs_diff(closed);
        prop_assert!(diff <= tol, "diff {:?} > tol {:?} (p={}, g={}, n={})", diff, tol, p, g, n);
    }

    #[test]
    fn hier_latency_beats_flat_ring_at_scale(n in 1usize..10_000, p in 16usize..=64) {
        // The point of the two-level schedule: far fewer α rounds than the
        // flat ring once p is large. Compare latency terms only.
        let c = ClusterProfile { beta: 0.0, ..ClusterProfile::p3_like(p) };
        prop_assert!(c.hier_allreduce(n * 4, 0) <= c.allreduce(n * 4));
    }
}
