//! Property test: lexer → parser → span round-trips byte offsets.
//!
//! A seeded xorshift generator assembles random Rust-ish programs from
//! fragments chosen to stress the lexer's hard cases (nested block
//! comments, raw strings, escapes, char vs. lifetime, non-ASCII text) and
//! the parser's recovery paths. For every generated program:
//!
//! 1. every token's `[off, end_off)` slices the source back to exactly the
//!    token's text, tokens are strictly ascending and non-overlapping, and
//!    `line`/`col` agree with an independent scan of the source;
//! 2. every AST span's `tok_lo/tok_hi` index real tokens, and its
//!    `lo/hi/line/col` are precisely those tokens' positions — so a
//!    diagnostic pinned to a span always points at real source text.
//!
//! No proptest dependency: the workspace is zero-dep by policy, so the
//! shrinking loop is replaced by printing the failing seed + program.

use puffer_lint::ast::{self, Expr};
use puffer_lint::callgraph::walk_own_exprs;
use puffer_lint::lexer::{lex, Token};
use puffer_lint::scope::test_mask;

// ---- deterministic rng -------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, good enough for fragment choice.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

// ---- program generator -------------------------------------------------

const IDENTS: &[&str] = &["alpha", "beta", "gamma", "r#match", "x2", "_tmp", "snake_case"];

/// Literal/comment fragments that have historically broken naive lexers.
const SPICE: &[&str] = &[
    "// decoy: .unwrap( and panic!(\"x\") in a comment — em dash too\n",
    "/* block /* nested */ still a comment */",
    "/// doc with `code` and \"quotes\"\n",
    "r#\"raw panic!(\"y\") \\ no escapes\"#",
    "\"esc \\\" \\n \\\\ quote\"",
    "'c'",
    "b\"bytes\\x00\"",
    "\"üñíçødé — multibyte\"",
];

fn gen_expr(rng: &mut Rng, depth: usize, out: &mut String) {
    if depth == 0 {
        match rng.below(4) {
            0 => out.push_str(rng.pick(IDENTS)),
            1 => out.push_str("42"),
            2 => out.push_str("1.5f32"),
            _ => out.push_str("\"lit\""),
        }
        return;
    }
    match rng.below(10) {
        0 => {
            // method chain, sometimes with a turbofish
            gen_expr(rng, depth - 1, out);
            out.push_str(".iter().map(|v| v)");
            if rng.below(2) == 0 {
                out.push_str(".sum::<f32>()");
            } else {
                out.push_str(".count()");
            }
        }
        1 => {
            out.push_str(rng.pick(IDENTS));
            out.push('(');
            gen_expr(rng, depth - 1, out);
            out.push(')');
        }
        2 => {
            gen_expr(rng, 0, out);
            out.push('[');
            gen_expr(rng, depth - 1, out);
            out.push(']');
        }
        3 => {
            out.push_str("vec![");
            gen_expr(rng, depth - 1, out);
            out.push(']');
        }
        4 => {
            out.push_str("if ");
            gen_expr(rng, 0, out);
            out.push_str(" { ");
            gen_expr(rng, depth - 1, out);
            out.push_str(" } else { ");
            gen_expr(rng, depth - 1, out);
            out.push_str(" }");
        }
        5 => {
            out.push_str("match ");
            gen_expr(rng, 0, out);
            out.push_str(" { Some(v) => v, None => ");
            gen_expr(rng, depth - 1, out);
            out.push_str(" }");
        }
        6 => {
            out.push_str("(|a: u32| ");
            gen_expr(rng, depth - 1, out);
            out.push_str(")(7)");
        }
        7 => {
            gen_expr(rng, depth - 1, out);
            out.push('?');
        }
        8 => {
            out.push('&');
            gen_expr(rng, depth - 1, out);
        }
        _ => {
            out.push('(');
            gen_expr(rng, depth - 1, out);
            out.push_str(", ");
            gen_expr(rng, depth - 1, out);
            out.push(')');
        }
    }
}

fn gen_stmt(rng: &mut Rng, out: &mut String) {
    if rng.below(4) == 0 {
        out.push_str("    ");
        out.push_str(rng.pick(SPICE));
        out.push('\n');
    }
    match rng.below(5) {
        0 => {
            out.push_str("    let ");
            out.push_str(rng.pick(IDENTS));
            out.push_str(" = ");
            gen_expr(rng, 2, out);
            out.push_str(";\n");
        }
        1 => {
            out.push_str("    for item in ");
            gen_expr(rng, 1, out);
            out.push_str(" { ");
            gen_expr(rng, 1, out);
            out.push_str("; }\n");
        }
        2 => {
            out.push_str("    while ");
            gen_expr(rng, 0, out);
            out.push_str(" { break; }\n");
        }
        3 => {
            out.push_str("    ");
            gen_expr(rng, 2, out);
            out.push_str(";\n");
        }
        _ => {
            out.push_str("    let _ = ");
            gen_expr(rng, 3, out);
            out.push_str(";\n");
        }
    }
}

fn gen_program(seed: u64) -> String {
    let mut rng = Rng(seed | 1);
    let mut src = String::from("//! generated by span_roundtrip\n");
    for item in 0..1 + rng.below(4) {
        match rng.below(4) {
            0 => {
                src.push_str(&format!("pub fn free_{item}(n: usize) -> Result<u32, E> {{\n"));
                for _ in 0..1 + rng.below(4) {
                    gen_stmt(&mut rng, &mut src);
                }
                src.push_str("    Ok(0)\n}\n");
            }
            1 => {
                src.push_str(&format!("impl Widget{item} {{\n  fn method(&self) {{\n"));
                for _ in 0..1 + rng.below(3) {
                    gen_stmt(&mut rng, &mut src);
                }
                src.push_str("  }\n}\n");
            }
            2 => {
                src.push_str("#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {\n");
                gen_stmt(&mut rng, &mut src);
                src.push_str("  }\n}\n");
            }
            _ => {
                src.push_str(rng.pick(SPICE));
                src.push('\n');
                src.push_str(&format!("pub struct S{item} {{ field: Vec<&'static str> }}\n"));
            }
        }
    }
    src
}

// ---- the properties ----------------------------------------------------

/// Independent line/col computation: 1-based, col counts chars.
fn line_col_at(src: &str, off: usize) -> (u32, u32) {
    let before = &src[..off];
    let line = before.matches('\n').count() as u32 + 1;
    let col = before.chars().rev().take_while(|&c| c != '\n').count() as u32 + 1;
    (line, col)
}

fn check_tokens(src: &str, tokens: &[Token], seed: u64) {
    let mut prev_end = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        assert!(
            t.off >= prev_end && t.end_off() <= src.len(),
            "seed {seed}: token {i} [{}, {}) overlaps or overflows\n{src}",
            t.off,
            t.end_off()
        );
        assert_eq!(
            &src[t.off..t.end_off()],
            t.text,
            "seed {seed}: token {i} text does not round-trip its offsets\n{src}"
        );
        let (line, col) = line_col_at(src, t.off);
        assert_eq!((t.line, t.col), (line, col), "seed {seed}: token {i} line/col\n{src}");
        prev_end = t.end_off();
    }
}

fn check_span(src: &str, tokens: &[Token], span: &ast::Span, what: &str, seed: u64) {
    assert!(span.tok_lo <= span.tok_hi, "seed {seed}: {what} token range inverted");
    assert!(span.tok_hi <= tokens.len(), "seed {seed}: {what} tok_hi out of range");
    assert!(span.lo <= span.hi && span.hi <= src.len(), "seed {seed}: {what} bytes\n{src}");
    assert!(
        src.is_char_boundary(span.lo) && src.is_char_boundary(span.hi),
        "seed {seed}: {what} splits a UTF-8 char\n{src}"
    );
    if span.tok_lo < span.tok_hi {
        let first = &tokens[span.tok_lo];
        let last = &tokens[span.tok_hi - 1];
        assert_eq!(span.lo, first.off, "seed {seed}: {what} lo != first token off\n{src}");
        assert_eq!(span.hi, last.end_off(), "seed {seed}: {what} hi != last token end\n{src}");
        assert_eq!(
            (span.line, span.col),
            (first.line, first.col),
            "seed {seed}: {what} line/col != first token\n{src}"
        );
    }
}

fn check_program(src: &str, seed: u64) {
    let tokens = lex(src);
    check_tokens(src, &tokens, seed);
    assert_eq!(test_mask(&tokens).len(), tokens.len(), "seed {seed}: mask length");

    let file = ast::parse_file(&tokens);
    for (def, _self_ty) in ast::collect_fns(&file) {
        check_span(src, &tokens, &def.span, &format!("fn {}", def.name), seed);
        let Some(body) = &def.body else { continue };
        let mut exprs: Vec<&Expr> = Vec::new();
        walk_own_exprs(body, &mut |e| exprs.push(e));
        for e in exprs {
            check_span(src, &tokens, &e.span, "expr", seed);
        }
    }
}

#[test]
fn generated_programs_round_trip_every_span() {
    for seed in 1..=256u64 {
        let src = gen_program(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        check_program(&src, seed);
    }
}

#[test]
fn hand_picked_lexer_hazards_round_trip() {
    let hazards: &[&str] = &[
        "fn f() { let s = r##\"nested \"# inside\"##; s.len(); }",
        "fn g<'a>(x: &'a str) -> &'a str { x }",
        "fn h() { let c = 'x'; let lt: &'static str = \"s\"; }",
        "/* outer /* inner /* deep */ */ */ fn i() {}",
        "fn j() { let v = vec![1, 2, 3]; v[0]; } // trailing — em dash",
        "fn k() { println!(\"{}\", \"brace }} in string {{\"); }",
        "#[cfg(test)] mod t { fn m() { None::<u32>.unwrap(); } }",
        "fn l(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }",
    ];
    for (i, src) in hazards.iter().enumerate() {
        check_program(src, i as u64);
    }
}

#[test]
fn empty_and_comment_only_sources_parse_to_no_spans() {
    for src in ["", "// only a comment\n", "/* just this */", "\n\n\n"] {
        let tokens = lex(src);
        check_tokens(src, &tokens, 0);
        let file = ast::parse_file(&tokens);
        assert!(ast::collect_fns(&file).is_empty(), "no fns expected in {src:?}");
    }
}
