//! The dense row-major [`Tensor`] type.
//!
//! Elementwise ops (`map`, `zip_map`, `axpy`, `scale`, …) fan out to the
//! process-wide worker pool ([`crate::pool`]) above a size threshold when
//! the `Optimized` matmul profile is the process default. Each element is
//! computed independently, so parallel results are bitwise identical to
//! sequential ones.

use crate::matmul::parallel_under_default;
use crate::{pool, workspace, Result, TensorError};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A dense, row-major, f32 tensor of arbitrary dimensionality.
///
/// The element buffer is a flat `Vec<f32>`; strides are implicit (row-major).
/// All shape-changing operations either copy or, for [`Tensor::reshape`],
/// reuse the buffer.
///
/// Storage comes from the per-thread scratch arenas in
/// [`crate::workspace`]: constructors take recycled buffers when one of a
/// suitable size is free, and `Drop` returns the buffer, so repeated
/// allocation patterns (a steady-state training step) stop touching the
/// heap entirely.
///
/// # Example
///
/// ```
/// use puffer_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = a.map(|x| x * 2.0);
/// assert_eq!(b.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { data: workspace::take_copied(&self.data), shape: self.shape.clone() }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        workspace::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// # use puffer_tensor::Tensor;
    /// let t = Tensor::zeros(&[3, 4]);
    /// assert_eq!(t.len(), 12);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        let mut data = workspace::take_zeroed(len);
        // Bit-compare against +0.0 so `full(shape, -0.0)` still writes the
        // sign bit instead of keeping the arena's +0.0 fill.
        if value.to_bits() != 0 {
            data.fill(value);
        }
        Tensor { data, shape: shape.to_vec() }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: vec![data.len()],
                op: "from_vec",
            });
        }
        Ok(Tensor { data, shape: shape.to_vec() })
    }

    /// Creates a 2-D identity-like tensor (`n x n` with ones on the diagonal).
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Number of rows; valid for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-dimensional.
    pub fn rows(&self) -> usize {
        assert_eq!(self.ndim(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns; valid for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-dimensional.
    pub fn cols(&self) -> usize {
        assert_eq!(self.ndim(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Immutable view of the flat element buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat element buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element reference at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any coordinate exceeds
    /// the corresponding dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() || index.iter().zip(&self.shape).any(|(i, s)| i >= s) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let mut off = 0;
        for (i, s) in index.iter().zip(&self.shape) {
            off = off * s + i;
        }
        Ok(off)
    }

    /// Reshapes the tensor in place semantics (returns a new tensor sharing
    /// the element count).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: self.shape.clone(),
                op: "reshape",
            });
        }
        Ok(Tensor { data: workspace::take_copied(&self.data), shape: shape.to_vec() })
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-dimensional.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose() requires a 2-D tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Applies `f` element-wise, returning a new tensor.
    ///
    /// Fans out to the worker pool for large tensors (hence the `Sync`
    /// bound); results are bitwise identical to the sequential loop.
    pub fn map<F: Fn(f32) -> f32 + Sync>(&self, f: F) -> Tensor {
        let len = self.data.len();
        let data = if parallel_under_default(len) {
            let mut data = workspace::take_zeroed(len);
            let src = &self.data;
            pool::run_chunked(&mut data, 1, |i0, chunk| {
                let end = i0 + chunk.len();
                for (d, s) in chunk.iter_mut().zip(&src[i0..end]) {
                    *d = f(*s);
                }
            });
            data
        } else {
            let mut data = workspace::take_with_capacity(len);
            data.extend(self.data.iter().map(|&x| f(x)));
            data
        };
        Tensor { data, shape: self.shape.clone() }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace<F: Fn(f32) -> f32 + Sync>(&mut self, f: F) {
        if parallel_under_default(self.data.len()) {
            pool::run_chunked(&mut self.data, 1, |_, chunk| {
                for x in chunk {
                    *x = f(*x);
                }
            });
        } else {
            for x in &mut self.data {
                *x = f(*x);
            }
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32 + Sync>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        self.check_same_shape(other, "zip_map")?;
        let len = self.data.len();
        let data = if parallel_under_default(len) {
            let mut data = workspace::take_zeroed(len);
            let (lhs, rhs) = (&self.data, &other.data);
            pool::run_chunked(&mut data, 1, |i0, chunk| {
                let end = i0 + chunk.len();
                for ((d, a), b) in chunk.iter_mut().zip(&lhs[i0..end]).zip(&rhs[i0..end]) {
                    *d = f(*a, *b);
                }
            });
            data
        } else {
            let mut data = workspace::take_with_capacity(len);
            data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
            data
        };
        Ok(Tensor { data, shape: self.shape.clone() })
    }

    /// `self += alpha * other` (axpy), the workhorse of SGD updates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        if parallel_under_default(self.data.len()) {
            let src = &other.data;
            pool::run_chunked(&mut self.data, 1, |i0, chunk| {
                let end = i0 + chunk.len();
                for (a, b) in chunk.iter_mut().zip(&src[i0..end]) {
                    *a += alpha * b;
                }
            });
        } else {
            for (a, b) in self.data.iter_mut().zip(&other.data) {
                *a += alpha * b;
            }
        }
        Ok(())
    }

    /// Scales every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        if parallel_under_default(self.data.len()) {
            pool::run_chunked(&mut self.data, 1, |_, chunk| {
                for x in chunk {
                    *x *= alpha;
                }
            });
        } else {
            for x in &mut self.data {
                *x *= alpha;
            }
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                got: other.shape.clone(),
                op: "dot",
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Extracts row `i` of a 2-D tensor as a 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        let c = self.cols();
        Tensor { data: workspace::take_copied(&self.data[i * c..(i + 1) * c]), shape: vec![c] }
    }

    /// Immutable slice of row `i` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row_slice(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable slice of row `i` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row_slice_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[i * c..(i + 1) * c]
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                got: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    /// An empty 0-element 1-D tensor.
    fn default() -> Self {
        Tensor { data: Vec::new(), shape: vec![0] }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, …, {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`Tensor::zip_map`] for a fallible add.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b).expect("tensor add: shape mismatch")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b).expect("tensor sub: shape mismatch")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// # Panics
    ///
    /// Panics if shapes differ; use [`Tensor::axpy`] for a fallible add.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs).expect("tensor add_assign: shape mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));
        let f = Tensor::full(&[2, 2], 7.5);
        assert!(f.as_slice().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at2(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.shape(), &[2, 6]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at2(2, 1), t.at2(1, 2));
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn offset_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(t.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(t.offset(&[0, 1, 2]).unwrap(), 6);
        assert!(t.offset(&[2, 0, 0]).is_err());
        assert!(t.offset(&[0, 0]).is_err());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        let bad = Tensor::ones(&[4]);
        assert!(a.axpy(1.0, &bad).is_err());
    }

    #[test]
    fn dot_and_hadamard() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn operators() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn rows_and_row_slices() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1).as_slice(), &[3.0, 4.0, 5.0]);
        assert_eq!(t.row_slice(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
    }
}
