//! The rule engine: each rule walks a lexed token stream (with its
//! `#[cfg(test)]` mask) or a manifest and emits [`Diagnostic`]s.
//!
//! # Rule catalog
//!
//! Token rules run here; the starred rules are semantic (AST +
//! call-graph) and live in [`crate::semantic`] — `dist-no-panic`
//! migrated there when the AST landed. [`RULES`] describes all of them.
//!
//! | rule | scope | contract |
//! |---|---|---|
//! | `dist-no-panic`* | `crates/dist/src`, non-test | failures route through `DistError`, never panic |
//! | `dist-panic-reachability`* | `crates/dist/src`, non-test | no panic site transitively reachable from a dist entry point |
//! | `lock-order-consistency`* | workspace, non-test | every lock pair acquired in one consistent order |
//! | `guard-across-blocking-op`* | workspace, non-test | no live lock guard across channel `send`/`recv`/thread `join` |
//! | `nondeterministic-float-reduction`* | workspace minus tensor kernels/probe/insight, non-test | no float reduction over hash iteration order |
//! | `discarded-result`* | workspace, non-test | no silent `let _ =`/bare-statement discard of a `Result` |
//! | `dist-no-instant` | `crates/dist/src`, non-test | dist timing flows through `puffer_probe::TimedSpan` |
//! | `unsafe-needs-safety-comment` | workspace, incl. tests | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `no-wall-clock-outside-probe` | workspace minus `crates/probe`, non-test | `Instant`/`SystemTime` live only in `puffer-probe` |
//! | `dep-allowlist` | every `Cargo.toml` | external deps restricted to the workspace allowlist |
//! | `no-vec-alloc-in-kernel` | tensor kernel modules, non-test | kernel scratch comes from `workspace`, not `vec![x; n]`/`Vec::with_capacity` |
//! | `simd-needs-feature-gate` | workspace, non-test | `_mm*` intrinsic calls live in `#[target_feature]` fns, in a file with an `is_x86_feature_detected!` gate |
//! | `dist-pool-width-via-membership` | `crates/dist/src` minus `membership.rs`, non-test | pool width changes only through `membership::PoolWidthGuard` |
//! | `bucket-apply-order-pinned` | `crates/dist/src` minus `bucket.rs`/`ring.rs`, non-test | gradient accumulation order stays pinned in its two owners |
//! | `no-raw-percentile-math` | workspace minus `crates/probe`/`crates/insight`, non-test | percentile/median helpers live in the probe's `Histogram` and puffer-insight, not re-derived ad hoc |
//!
//! # Suppression
//!
//! A comment containing `lint:allow(<rule>[, <rule>…])` suppresses those
//! rules on the comment's own line(s) and the line immediately after it —
//! so both trailing (`stmt // lint:allow(x)`) and preceding-line markers
//! work. Suppressions are deliberate, visible exemptions; prefer fixing.

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One finding, positioned for `file:line:col` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// Static description of a rule, for `--rules` filtering, `--explain`,
/// and the DESIGN.md catalog (which a test keeps in sync).
pub struct RuleInfo {
    /// The rule's name as used in `--rules` and `lint:allow(...)`.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Why the rule exists — the failure it prevents.
    pub rationale: &'static str,
    /// A minimal violating snippet.
    pub example_bad: &'static str,
    /// The same snippet, fixed.
    pub example_good: &'static str,
}

/// Every rule this binary knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "dist-no-panic",
        description: "no .unwrap()/.expect()/panic!/unreachable! in crates/dist non-test code \
                      (route failures through DistError)",
        rationale: "The fault-tolerance layer exists to survive worker failure; a panic inside \
                    it is a failure mode it cannot model. Every fallible step in crates/dist \
                    must surface as DistError so the aggregator's recovery path sees it.",
        example_bad: "let msg = rx.recv().unwrap();",
        example_good: "let msg = rx.recv().map_err(|_| DistError::ChannelClosed)?;",
    },
    RuleInfo {
        name: "dist-panic-reachability",
        description: "no unwrap/expect/panic!/direct indexing transitively reachable from a \
                      dist entry point (train_data_parallel*, run_worker, run_aggregator, run) \
                      — findings pin the call chain",
        rationale: "dist-no-panic sees one file at a time; this rule walks the call graph, so \
                    a helper three calls below Trainer::run cannot hide an unwrap. A panic \
                    anywhere on a reachable path kills the trainer mid-protocol and strands \
                    the other workers at a barrier.",
        example_bad: "pub fn run_worker(s: &[f32], i: usize) -> f32 { pick(s, i) }\n\
                      fn pick(s: &[f32], i: usize) -> f32 { s[i] }",
        example_good: "pub fn run_worker(s: &[f32], i: usize) -> DistResult<f32> { pick(s, i) }\n\
                       fn pick(s: &[f32], i: usize) -> DistResult<f32> {\n    \
                       s.get(i).copied().ok_or(DistError::ShardOutOfRange)\n}",
    },
    RuleInfo {
        name: "lock-order-consistency",
        description: "two locks acquired in opposite orders in different functions (one level \
                      of call-graph propagation) are a deadlock under contention",
        rationale: "Thread A holds lock X and wants Y; thread B holds Y and wants X — both \
                    block forever. The hazard is invisible file-locally because each function \
                    looks fine on its own; only comparing acquisition orders across the \
                    workspace exposes it.",
        example_bad: "fn a(s: &S) { let g = s.x.lock(); let h = s.y.lock(); }\n\
                      fn b(s: &S) { let h = s.y.lock(); let g = s.x.lock(); }",
        example_good: "fn a(s: &S) { let g = s.x.lock(); let h = s.y.lock(); }\n\
                       fn b(s: &S) { let g = s.x.lock(); let h = s.y.lock(); }",
    },
    RuleInfo {
        name: "guard-across-blocking-op",
        description: "no live Mutex/RwLock guard held across a channel send/recv or thread \
                      join; drop the guard before blocking",
        rationale: "A channel op can block indefinitely (full buffer, dead peer). Holding a \
                    lock while blocked stalls every other thread that needs that lock — in \
                    the dist trainer that is the whole worker pool, one heartbeat from being \
                    declared failed.",
        example_bad: "let st = state.lock().unwrap();\nlet msg = rx.recv();",
        example_good: "let snapshot = { state.lock().unwrap().clone() };\nlet msg = rx.recv();",
    },
    RuleInfo {
        name: "nondeterministic-float-reduction",
        description: "no float .sum()/.fold()/.product() over HashMap/HashSet iteration \
                      outside crates/tensor kernels and probe/insight (hash order varies per \
                      process; float addition does not commute)",
        rationale: "The repo's distributed training is bitwise-deterministic by design \
                    (seeded data order, exact mean aggregation). Float addition is not \
                    associative, so reducing over hash iteration order silently produces \
                    different bits on different runs and breaks replica equivalence checks.",
        example_bad: "let total: f32 = grads_by_worker.values().sum::<f32>();",
        example_good: "let mut vals: Vec<(usize, f32)> = grads_by_worker.iter()\n    \
                       .map(|(k, v)| (*k, *v)).collect();\n\
                       vals.sort_unstable_by_key(|(k, _)| *k);\n\
                       let total: f32 = vals.iter().map(|(_, v)| v).sum::<f32>();",
    },
    RuleInfo {
        name: "discarded-result",
        description: "no `let _ =` or bare-statement discard of a call whose workspace-resolved \
                      return type is Result (make best-effort calls explicit with .ok())",
        rationale: "`let _ = fallible()` swallows the error and compiles clean forever. When \
                    the discard is intentional (best-effort notify on an already-failing \
                    path), `.ok()` says so; when it is not, this rule is the only thing that \
                    notices.",
        example_bad: "let _ = tx.send(Update::Done);",
        example_good: "tx.send(Update::Done).ok(); // best-effort: receiver may be gone",
    },
    RuleInfo {
        name: "dist-no-instant",
        description: "no raw std::time::Instant in crates/dist non-test code \
                      (use puffer_probe::TimedSpan)",
        rationale: "Dist timing must flow through puffer-probe so the Fig.-4 breakdown bins \
                    and the Chrome trace are produced from the same clocks; a raw Instant is \
                    a number nobody can cross-check.",
        example_bad: "let t0 = Instant::now();\nstep();\nlet dt = t0.elapsed();",
        example_good: "let span = timed_span(\"step\");\nstep();\nlet dt = span.finish();",
    },
    RuleInfo {
        name: "unsafe-needs-safety-comment",
        description: "every unsafe block/fn/impl must be preceded by a // SAFETY: comment",
        rationale: "unsafe moves a proof obligation from the compiler to the author; the \
                    SAFETY comment is where that proof lives. Without it, the next editor \
                    cannot know which invariant they are about to break.",
        example_bad: "unsafe { pack_b(b.as_ptr(), bp.as_mut_ptr()) }",
        example_good: "// SAFETY: bp holds KC*NR floats, written before any read.\n\
                       unsafe { pack_b(b.as_ptr(), bp.as_mut_ptr()) }",
    },
    RuleInfo {
        name: "no-wall-clock-outside-probe",
        description: "Instant/SystemTime are confined to crates/probe \
                      (use puffer_probe::{timed_span, Stopwatch})",
        rationale: "One crate owns the clocks so every latency number in the repo is \
                    comparable; scattered Instant::now() calls produce timings with no \
                    registry, no histogram, and no trace events.",
        example_bad: "let t0 = std::time::Instant::now();",
        example_good: "let sw = puffer_probe::Stopwatch::start();",
    },
    RuleInfo {
        name: "dep-allowlist",
        description: "external dependencies restricted to the workspace allowlist \
                      (rand/crossbeam/parking_lot/serde; criterion/proptest as dev-deps only)",
        rationale: "The reproduction's claims depend on the code in this repo, not on an \
                    unreviewed transitive tree; the frozen allowlist keeps the supply chain \
                    and the build offline-capable.",
        example_bad: "[dependencies]\nrayon = \"1\"",
        example_good: "[dependencies]\ncrossbeam = { workspace = true }",
    },
    RuleInfo {
        name: "no-vec-alloc-in-kernel",
        description: "no `vec![elem; len]` / `Vec::with_capacity` in tensor kernel modules \
                      (draw scratch from puffer_tensor::workspace so steady-state steps stay \
                      allocation-free)",
        rationale: "Kernel hot loops run thousands of times per step; an allocation inside \
                    one shows up as allocator contention across the worker pool and ruins \
                    the perf numbers the paper tables depend on.",
        example_bad: "let mut packed = vec![0.0f32; kc * nr];",
        example_good: "let mut packed = workspace::take(kc * nr);",
    },
    RuleInfo {
        name: "simd-needs-feature-gate",
        description: "every `_mm*` intrinsic call sits inside a #[target_feature] fn, and any \
                      file defining such fns also carries an is_x86_feature_detected! runtime \
                      gate (so SIMD paths can never execute on unsupporting hardware)",
        rationale: "Calling an AVX2 intrinsic on a CPU without AVX2 is undefined behavior \
                    (usually SIGILL). The attribute alone is not enough — something must \
                    prove at runtime that the gated fn is reachable only on supporting \
                    hardware, and keeping that check in the same file keeps the proof local.",
        example_bad: "fn add(a: __m256, b: __m256) -> __m256 { _mm256_add_ps(a, b) }",
        example_good: "fn supported() -> bool { is_x86_feature_detected!(\"avx2\") }\n\
                       #[target_feature(enable = \"avx2\")]\n\
                       unsafe fn add(a: __m256, b: __m256) -> __m256 { _mm256_add_ps(a, b) }",
    },
    RuleInfo {
        name: "dist-pool-width-via-membership",
        description: "no direct pool::set_num_threads in crates/dist non-test code outside the \
                      membership module (pool width follows the active member set; go through \
                      membership::PoolWidthGuard)",
        rationale: "Pool width tracks the live member count across join/leave epochs; a \
                    second writer fights the guard's save/restore bookkeeping and leaves the \
                    pool sized for a membership that no longer exists.",
        example_bad: "pool::set_num_threads(members.len());",
        example_good: "let _guard = membership::PoolWidthGuard::resize_for(&members);",
    },
    RuleInfo {
        name: "bucket-apply-order-pinned",
        description: "no indexed `+=` accumulation in crates/dist non-test code outside the \
                      pinned owners (bucket.rs, ring.rs) — gradient summation order is the \
                      bitwise-determinism contract and has exactly two implementations",
        rationale: "The trainer promises bitwise-identical parameters at any bucket size, \
                    worker count, or collective; that only holds because every gradient sum \
                    adds contributors in one pinned id order. A second indexed accumulation \
                    loop elsewhere in dist is an unpinned summation order waiting to diverge.",
        example_bad: "for (w, g) in grads { mean[i] += g.as_slice()[i]; }",
        example_good: "let mean = reducer.finalize(&contributors); // pinned id order",
    },
    RuleInfo {
        name: "no-raw-percentile-math",
        description: "no ad-hoc median/percentile/pNN helper fns outside crates/probe and \
                      crates/insight (summarize through puffer_probe::Histogram so every \
                      quantile in the repo means the same thing)",
        rationale: "Two quantile definitions (nearest-rank vs interpolated, sorted-index \
                    off-by-one) produce reports that disagree about the same run; one \
                    Histogram implementation keeps every p50/p99 in the repo comparable.",
        example_bad: "fn median(xs: &mut Vec<f64>) -> f64 { xs.sort_by(f64::total_cmp); \
                      xs[xs.len() / 2] }",
        example_good: "let mut h = Histogram::new();\nfor x in xs { h.record_ns(x); }\n\
                       let med = h.p50();",
    },
];

/// Kernel modules whose hot loops must draw scratch memory from
/// `puffer_tensor::workspace` rather than the global allocator (the
/// workspace module itself is the one place allowed to allocate).
const KERNEL_MODULES: &[&str] =
    &["crates/tensor/src/matmul.rs", "crates/tensor/src/gemm.rs", "crates/tensor/src/conv.rs"];

/// External crates allowed as regular dependencies.
pub const ALLOWED_DEPS: &[&str] = &["rand", "crossbeam", "parking_lot", "serde"];
/// External crates additionally allowed as dev-dependencies.
pub const ALLOWED_DEV_DEPS: &[&str] = &["proptest", "criterion"];

/// Pre-computed per-file context shared by the token rules.
pub struct FileContext<'a> {
    /// Path relative to the scan root, `/`-separated.
    pub rel_path: String,
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// Per-token `#[cfg(test)]` mask.
    pub test_mask: &'a [bool],
    /// `lint:allow` suppressions: line → rules allowed there.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Whether the file itself is test/bench code (under a `tests/` or
    /// `benches/` directory).
    pub is_test_file: bool,
}

impl<'a> FileContext<'a> {
    /// Builds the context for one lexed file.
    pub fn new(root_rel: &Path, tokens: &'a [Token], test_mask: &'a [bool]) -> Self {
        let rel_path = root_rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let is_test_file = root_rel
            .components()
            .any(|c| matches!(c.as_os_str().to_str(), Some("tests") | Some("benches")));
        let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for t in tokens.iter().filter(|t| t.is_comment()) {
            for rule in parse_allow_marker(&t.text) {
                // The marker covers the comment's own line(s) and the line
                // right below it.
                for line in t.line..=t.end_line() + 1 {
                    allows.entry(line).or_default().insert(rule.clone());
                }
            }
        }
        FileContext { rel_path, tokens, test_mask, allows, is_test_file }
    }

    /// Whether `lint:allow(rule)` covers this line. Public because the
    /// semantic rules reuse the same suppression machinery.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }

    fn diag(&self, rule: &'static str, tok: &Token, message: String, out: &mut Vec<Diagnostic>) {
        if !self.suppressed(rule, tok.line) {
            out.push(Diagnostic {
                file: self.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                rule,
                message,
            });
        }
    }

    fn in_dist_src(&self) -> bool {
        self.rel_path.contains("crates/dist/src/")
    }

    fn in_probe(&self) -> bool {
        self.rel_path.contains("crates/probe/")
    }
}

/// Extracts rule names from `lint:allow(a, b)` markers in a comment.
fn parse_allow_marker(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(idx) = rest.find("lint:allow(") {
        rest = &rest[idx + "lint:allow(".len()..];
        if let Some(close) = rest.find(')') {
            out.extend(
                rest[..close].split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()),
            );
            rest = &rest[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Runs every enabled token-level rule over one file.
pub fn check_tokens(ctx: &FileContext<'_>, enabled: &dyn Fn(&str) -> bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if enabled("dist-no-instant") {
        dist_no_instant(ctx, &mut out);
    }
    if enabled("unsafe-needs-safety-comment") {
        unsafe_needs_safety_comment(ctx, &mut out);
    }
    if enabled("no-wall-clock-outside-probe") {
        no_wall_clock_outside_probe(ctx, &mut out);
    }
    if enabled("no-vec-alloc-in-kernel") {
        no_vec_alloc_in_kernel(ctx, &mut out);
    }
    if enabled("simd-needs-feature-gate") {
        simd_needs_feature_gate(ctx, &mut out);
    }
    if enabled("dist-pool-width-via-membership") {
        dist_pool_width_via_membership(ctx, &mut out);
    }
    if enabled("bucket-apply-order-pinned") {
        bucket_apply_order_pinned(ctx, &mut out);
    }
    if enabled("no-raw-percentile-math") {
        no_raw_percentile_math(ctx, &mut out);
    }
    out
}

/// Iterator over non-comment token indices with their mask.
fn code_tokens<'a>(
    ctx: &'a FileContext<'_>,
) -> impl Iterator<Item = (usize, &'a Token, bool)> + 'a {
    ctx.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, t)| (i, t, ctx.test_mask[i]))
}

/// Next non-comment token after index `i`.
fn next_code<'a>(ctx: &'a FileContext<'_>, i: usize) -> Option<&'a Token> {
    ctx.tokens[i + 1..].iter().find(|t| !t.is_comment())
}

fn dist_no_instant(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_dist_src() || ctx.is_test_file {
        return;
    }
    for (_, tok, in_test) in code_tokens(ctx) {
        if !in_test && tok.kind == TokenKind::Ident && tok.text == "Instant" {
            ctx.diag(
                "dist-no-instant",
                tok,
                "raw std::time::Instant in puffer-dist non-test code; time through \
                 puffer_probe::TimedSpan so breakdown bins and traces stay one set of numbers"
                    .to_string(),
                out,
            );
        }
    }
}

/// Tokens that may legitimately sit between a `SAFETY:` comment and the
/// `unsafe` keyword it justifies: the rest of the item/statement header.
/// String literals appear in attribute arguments
/// (`#[target_feature(enable = "avx2")]`); statement boundaries
/// (`;`/`{`/`}`) still end the search, so a literal in a *previous*
/// statement cannot extend it.
fn header_token(t: &Token) -> bool {
    match t.kind {
        TokenKind::Ident | TokenKind::Lifetime | TokenKind::NumLit | TokenKind::StrLit => true,
        TokenKind::Punct(c) => "#[]()<>,:&*=!".contains(c),
        _ => false,
    }
}

fn unsafe_needs_safety_comment(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        // Walk backward over the header of the construct containing
        // `unsafe` (`pub`, `let x =`, attributes…) and through the
        // contiguous comment run above it — a multi-line `//` justification
        // is several comment tokens, any of which may carry `SAFETY:`. A
        // statement boundary (`;`, `{`, `}`) or other code token ends the
        // search, so a comment on an *earlier* statement cannot justify
        // this one.
        let mut justified = false;
        let mut in_comment_run = false;
        for prev in ctx.tokens[..i].iter().rev() {
            if prev.is_comment() {
                in_comment_run = true;
                if prev.text.contains("SAFETY:") {
                    justified = true;
                    break;
                }
                continue;
            }
            if in_comment_run || !header_token(prev) {
                break;
            }
        }
        if !justified {
            ctx.diag(
                "unsafe-needs-safety-comment",
                tok,
                "`unsafe` without a preceding `// SAFETY:` comment; state the invariant that \
                 makes this sound"
                    .to_string(),
                out,
            );
        }
    }
}

fn no_wall_clock_outside_probe(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.in_probe() || ctx.is_test_file {
        return;
    }
    for (_, tok, in_test) in code_tokens(ctx) {
        if !in_test
            && tok.kind == TokenKind::Ident
            && (tok.text == "Instant" || tok.text == "SystemTime")
        {
            ctx.diag(
                "no-wall-clock-outside-probe",
                tok,
                format!(
                    "`{}` outside crates/probe; use puffer_probe::timed_span for traced \
                     intervals or puffer_probe::Stopwatch for raw measurements",
                    tok.text
                ),
                out,
            );
        }
    }
}

/// Index of the next non-comment token after `i`.
fn next_code_idx(ctx: &FileContext<'_>, i: usize) -> Option<usize> {
    (i + 1..ctx.tokens.len()).find(|&j| !ctx.tokens[j].is_comment())
}

/// Whether the `vec!` invocation whose `[` sits at token index `open` is
/// the repeat form `vec![elem; len]`: a `;` at the macro's own bracket
/// depth before the matching `]`.
fn vec_macro_is_repeat_form(ctx: &FileContext<'_>, open: usize) -> bool {
    let mut depth = 1u32;
    for tok in ctx.tokens[open + 1..].iter().filter(|t| !t.is_comment()) {
        match tok.kind {
            TokenKind::Punct('[' | '(' | '{') => depth += 1,
            TokenKind::Punct(']' | ')' | '}') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokenKind::Punct(';') if depth == 1 => return true,
            _ => {}
        }
    }
    false
}

fn no_vec_alloc_in_kernel(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !KERNEL_MODULES.iter().any(|m| ctx.rel_path.ends_with(m)) {
        return;
    }
    for (i, tok, in_test) in code_tokens(ctx) {
        if in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            // Repeat form `vec![elem; len]` — a fresh zero-filled (or
            // fill-initialized) heap buffer. The list form `vec![a, b]`
            // is fine: it builds small fixed collections (span attrs,
            // error shapes), not kernel scratch.
            "vec" => {
                let bang = next_code_idx(ctx, i);
                let open = bang.and_then(|j| {
                    (ctx.tokens[j].kind == TokenKind::Punct('!'))
                        .then(|| next_code_idx(ctx, j))
                        .flatten()
                });
                if let Some(open) = open {
                    if ctx.tokens[open].kind == TokenKind::Punct('[')
                        && vec_macro_is_repeat_form(ctx, open)
                    {
                        ctx.diag(
                            "no-vec-alloc-in-kernel",
                            tok,
                            "`vec![elem; len]` in a tensor kernel module; take the buffer from \
                             puffer_tensor::workspace instead so warmed-up training steps stay \
                             allocation-free"
                                .to_string(),
                            out,
                        );
                    }
                }
            }
            "Vec" => {
                // `Vec::with_capacity(...)`: Vec :: with_capacity (
                let c1 = next_code_idx(ctx, i);
                let c2 = c1.and_then(|j| {
                    (ctx.tokens[j].kind == TokenKind::Punct(':'))
                        .then(|| next_code_idx(ctx, j))
                        .flatten()
                });
                let name = c2.and_then(|j| {
                    (ctx.tokens[j].kind == TokenKind::Punct(':'))
                        .then(|| next_code_idx(ctx, j))
                        .flatten()
                });
                if let Some(name) = name {
                    let n = &ctx.tokens[name];
                    if n.kind == TokenKind::Ident && n.text == "with_capacity" {
                        ctx.diag(
                            "no-vec-alloc-in-kernel",
                            tok,
                            "`Vec::with_capacity` in a tensor kernel module; take the buffer \
                             from puffer_tensor::workspace (take/take_with_capacity) so \
                             warmed-up training steps stay allocation-free"
                                .to_string(),
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

fn simd_needs_feature_gate(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.is_test_file {
        return;
    }
    let tf_mask = crate::scope::target_feature_mask(ctx.tokens);
    let has_detection = ctx
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "is_x86_feature_detected");
    let mut first_gated: Option<&Token> = None;
    for (i, tok, in_test) in code_tokens(ctx) {
        if in_test {
            continue;
        }
        if tf_mask[i] && first_gated.is_none() {
            first_gated = Some(tok);
        }
        // An intrinsic *call* outside any #[target_feature] fn: `_mm…(`.
        // Imports (`use core::arch::x86_64::_mm256_loadu_ps;`) are idents
        // followed by `,`/`;`/`}` and stay legal — only execution paths
        // need the gate.
        if tok.kind == TokenKind::Ident
            && tok.text.starts_with("_mm")
            && !tf_mask[i]
            && next_code(ctx, i).is_some_and(|n| n.kind == TokenKind::Punct('('))
        {
            ctx.diag(
                "simd-needs-feature-gate",
                tok,
                format!(
                    "`{}` called outside a #[target_feature] fn; move the call into a \
                     #[target_feature(enable = …)] kernel reached only behind runtime \
                     detection, or it faults on hardware without the feature",
                    tok.text
                ),
                out,
            );
        }
    }
    // A file that defines gated kernels must also carry the runtime check
    // that makes them reachable-safe. Keeping detection in the same file is
    // the repo convention (see puffer_tensor::gemm::simd_supported), and it
    // is what makes this rule checkable file-locally.
    if let Some(tok) = first_gated {
        if !has_detection {
            ctx.diag(
                "simd-needs-feature-gate",
                tok,
                "#[target_feature] fn in a file with no is_x86_feature_detected! call; keep \
                 the runtime gate next to the kernel it protects so the gated path is \
                 provably unreachable on unsupporting hardware"
                    .to_string(),
                out,
            );
        }
    }
}

fn dist_pool_width_via_membership(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    // The membership module owns the pool width: `PoolWidthGuard` recaps it
    // to the live member count at each epoch and restores it on drop. Any
    // other dist call site would fight that bookkeeping, so the identifier
    // itself is the violation — whether called or merely imported.
    if !ctx.in_dist_src() || ctx.is_test_file || ctx.rel_path.ends_with("membership.rs") {
        return;
    }
    for (_, tok, in_test) in code_tokens(ctx) {
        if !in_test && tok.kind == TokenKind::Ident && tok.text == "set_num_threads" {
            ctx.diag(
                "dist-pool-width-via-membership",
                tok,
                "direct `set_num_threads` in puffer-dist outside the membership module; pool \
                 width follows the active member set — resize through \
                 membership::PoolWidthGuard so epoch transitions stay the single owner"
                    .to_string(),
                out,
            );
        }
    }
}

fn bucket_apply_order_pinned(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    // Gradient accumulation order is the bitwise-determinism contract:
    // contributors are summed in pinned id order by the bucketed reducer
    // (bucket.rs) and position order by the executable ring (ring.rs).
    // An indexed `+=` anywhere else in dist is a second accumulation site
    // whose order nobody pins — the lexical signature is `]` immediately
    // followed by the `+=` operator.
    if !ctx.in_dist_src()
        || ctx.is_test_file
        || ctx.rel_path.ends_with("bucket.rs")
        || ctx.rel_path.ends_with("ring.rs")
    {
        return;
    }
    let toks: Vec<(usize, &Token, bool)> = code_tokens(ctx).collect();
    for w in toks.windows(3) {
        let [(_, close, in_test), (_, plus, _), (_, eq, _)] = w else { continue };
        if !in_test
            && close.kind == TokenKind::Punct(']')
            && plus.kind == TokenKind::Punct('+')
            && eq.kind == TokenKind::Punct('=')
            && plus.line == eq.line
            && eq.col == plus.col + 1
        {
            ctx.diag(
                "bucket-apply-order-pinned",
                plus,
                "indexed `+=` accumulation in puffer-dist outside bucket.rs/ring.rs; gradient \
                 summation order is pinned by BucketedReducer — route the sum through it (or \
                 the ring) so bitwise determinism has a single owner"
                    .to_string(),
                out,
            );
        }
    }
}

/// Whether a function name claims to compute a quantile: the generic
/// statistics names, or `p` followed by two or more digits (`p50`,
/// `p999`). Compound names like `p50_seconds` are fine — they *consume* a
/// quantile primitive rather than re-deriving one — and single-digit
/// names like `p3` are presets (`ClusterProfile::p3`), not percentiles.
fn is_percentile_fn_name(name: &str) -> bool {
    matches!(name, "median" | "percentile" | "percentiles" | "quantile" | "quantiles")
        || name
            .strip_prefix('p')
            .is_some_and(|rest| rest.len() >= 2 && rest.bytes().all(|b| b.is_ascii_digit()))
}

fn no_raw_percentile_math(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    // The probe's Histogram is the one quantile implementation and
    // puffer-insight is its one consumer-side aggregator; everywhere else
    // a hand-rolled sort-and-index median silently disagrees with the
    // exported summaries.
    if ctx.is_test_file
        || ctx.rel_path.contains("crates/probe/")
        || ctx.rel_path.contains("crates/insight/")
    {
        return;
    }
    for (i, tok, in_test) in code_tokens(ctx) {
        if in_test || tok.kind != TokenKind::Ident || tok.text != "fn" {
            continue;
        }
        let Some(name) = next_code(ctx, i) else { continue };
        if name.kind == TokenKind::Ident && is_percentile_fn_name(&name.text) {
            ctx.diag(
                "no-raw-percentile-math",
                name,
                format!(
                    "`fn {}` re-derives a quantile outside crates/probe//crates/insight; \
                     record into puffer_probe::Histogram (or its hist_record registry) and \
                     read p50/p90/p99 from it so all percentiles share one definition",
                    name.text
                ),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_mask;

    fn run(path: &str, src: &str) -> Vec<(String, u32, String)> {
        let toks = lex(src);
        let mask = test_mask(&toks);
        let ctx = FileContext::new(Path::new(path), &toks, &mask);
        check_tokens(&ctx, &|_| true)
            .into_iter()
            .map(|d| (d.rule.to_string(), d.line, d.message))
            .collect()
    }

    #[test]
    fn wall_clock_flagged_outside_probe_but_not_inside() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(run("crates/core/src/foo.rs", src).len(), 2);
        assert!(run("crates/probe/src/span.rs", src).is_empty());
        let sys = "fn f() { let t = std::time::SystemTime::now(); }";
        assert_eq!(run("crates/nn/src/x.rs", sys).len(), 1);
    }

    #[test]
    fn wall_clock_exempt_in_test_and_bench_files() {
        let src = "use std::time::Instant;";
        assert!(run("crates/tensor/tests/probe_overhead.rs", src).is_empty());
        assert!(run("crates/nn/benches/layer_bench.rs", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let good = "// SAFETY: disjoint chunks.\nunsafe { do_it() }";
        assert!(run("crates/tensor/src/x.rs", good).is_empty());
        let good_header = "// SAFETY: sound because X.\npub unsafe fn f() {}";
        assert!(run("crates/tensor/src/x.rs", good_header).is_empty());
        let good_block = "/* SAFETY: block form. */\nunsafe impl Send for X {}";
        assert!(run("crates/tensor/src/x.rs", good_block).is_empty());
        let bad = "fn f() { unsafe { do_it() } }";
        let diags = run("crates/tensor/src/x.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].0, "unsafe-needs-safety-comment");
    }

    #[test]
    fn multi_line_comment_run_with_safety_first_line_counts() {
        let src = "\
// SAFETY: the borrow is joined below,
// so the transmute to 'static never
// outlives the data.
let job: Job = unsafe { transmute(job) };";
        assert!(run("crates/tensor/src/x.rs", src).is_empty());
        // …but a comment on an earlier statement does not justify this one.
        let src = "// SAFETY: for that line.\nlet a = 1;\nunsafe { b() }";
        assert_eq!(run("crates/tensor/src/x.rs", src).len(), 1);
    }

    #[test]
    fn attribute_with_string_argument_does_not_break_safety_search() {
        let src = "\
// SAFETY: discharged by the runtime detection gate at the call site.
#[target_feature(enable = \"avx2\", enable = \"fma\")]
pub unsafe fn kernel(a: *const f32) {}";
        let diags = run("crates/tensor/src/gemm.rs", src);
        assert!(
            !diags.iter().any(|d| d.0 == "unsafe-needs-safety-comment"),
            "attr string literal must not hide the SAFETY comment: {diags:?}"
        );
        // …but a string in a previous *statement* still ends the search.
        let src = "// SAFETY: for the earlier line.\nlet s = \"x\";\nunsafe { b() }";
        assert_eq!(run("crates/tensor/src/x.rs", src).len(), 1);
    }

    #[test]
    fn second_unsafe_impl_needs_its_own_comment() {
        let src = "// SAFETY: for Send.\nunsafe impl Send for X {}\nunsafe impl Sync for X {}";
        let diags = run("crates/tensor/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].1, 3);
    }

    #[test]
    fn lint_allow_suppresses_on_line_and_next_line() {
        let trailing =
            "fn f() { let t = Instant::now(); } // lint:allow(no-wall-clock-outside-probe)";
        assert!(run("crates/core/src/x.rs", trailing).is_empty());
        let above =
            "// lint:allow(no-wall-clock-outside-probe)\nfn f() { let t = Instant::now(); }";
        assert!(run("crates/core/src/x.rs", above).is_empty());
        let wrong_rule = "// lint:allow(dist-no-panic)\nfn f() { let t = Instant::now(); }";
        assert_eq!(run("crates/core/src/x.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn allow_marker_parses_lists() {
        assert_eq!(parse_allow_marker("// lint:allow(a, b)"), ["a", "b"]);
        assert!(parse_allow_marker("// nothing here").is_empty());
    }

    #[test]
    fn kernel_vec_alloc_flagged_in_kernel_modules_only() {
        let src = "fn f(n: usize) { let mut c = vec![0.0f32; n]; c[0] = 1.0; }";
        for path in ["crates/tensor/src/matmul.rs", "crates/tensor/src/conv.rs"] {
            let diags = run(path, src);
            assert_eq!(diags.len(), 1, "{path}: {diags:?}");
            assert_eq!(diags[0].0, "no-vec-alloc-in-kernel");
        }
        // Same pattern elsewhere — including the workspace module, which is
        // the one place that is *supposed* to allocate — is fine.
        assert!(run("crates/tensor/src/workspace.rs", src).is_empty());
        assert!(run("crates/nn/src/linear.rs", src).is_empty());
    }

    #[test]
    fn kernel_with_capacity_flagged_but_list_vec_is_not() {
        let cap = "fn f(n: usize) { let mut c = Vec::with_capacity(n); c.push(1.0); }";
        let diags = run("crates/tensor/src/matmul.rs", cap);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].0, "no-vec-alloc-in-kernel");
        // List-form vec! builds small fixed collections (probe span attrs,
        // error shapes) — not scratch buffers.
        let list = "fn f(m: usize) { let attrs = vec![(\"m\", m), (\"n\", 2)]; }";
        assert!(run("crates/tensor/src/matmul.rs", list).is_empty());
        // A `;` nested inside the element expression does not make the
        // list form a repeat form.
        let nested = "fn f() { let v = vec![{ let x = 1; x }, 2]; }";
        assert!(run("crates/tensor/src/matmul.rs", nested).is_empty());
    }

    #[test]
    fn gated_intrinsics_with_detection_are_clean() {
        let src = "\
use core::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps};
fn supported() -> bool { is_x86_feature_detected!(\"avx2\") }
#[target_feature(enable = \"avx2\", enable = \"fma\")]
fn kernel(a: *const f32) { let v = _mm256_loadu_ps(a); }";
        assert!(run("crates/tensor/src/gemm.rs", src).is_empty());
    }

    #[test]
    fn ungated_intrinsic_call_flagged_but_import_is_not() {
        let src = "\
use core::arch::x86_64::_mm256_add_ps;
fn supported() -> bool { is_x86_feature_detected!(\"avx2\") }
fn f(a: __m256, b: __m256) -> __m256 { _mm256_add_ps(a, b) }";
        let diags = run("crates/tensor/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!((diags[0].0.as_str(), diags[0].1), ("simd-needs-feature-gate", 3));
    }

    #[test]
    fn gated_fn_without_runtime_detection_flagged() {
        let src = "#[target_feature(enable = \"avx2\")]\nfn kernel(a: *const f32) {}";
        let diags = run("crates/tensor/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!((diags[0].0.as_str(), diags[0].1), ("simd-needs-feature-gate", 1));
    }

    #[test]
    fn simd_rule_exempts_tests_and_honors_suppression() {
        let src = "fn f(a: __m256, b: __m256) -> __m256 { _mm256_add_ps(a, b) }";
        assert!(run("crates/tensor/tests/simd_probe.rs", src).is_empty());
        assert!(run("crates/tensor/benches/kernel_bench.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t(a: __m256) { _mm_probe(a); }\n}";
        assert!(run("crates/tensor/src/x.rs", in_test).is_empty());
        let allowed = "// lint:allow(simd-needs-feature-gate) — cfg-gated call site\n\
                       fn f(a: __m256, b: __m256) -> __m256 { _mm256_add_ps(a, b) }";
        assert!(run("crates/tensor/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn pool_width_mutation_flagged_in_dist_outside_membership() {
        let src = "fn grow(n: usize) { puffer_tensor::pool::set_num_threads(n); }";
        let diags = run("crates/dist/src/trainer.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].0, "dist-pool-width-via-membership");
        // The membership module is the one dist file allowed to resize.
        assert!(run("crates/dist/src/membership.rs", src).is_empty());
        // Other crates manage their own pools; out of scope.
        assert!(run("crates/tensor/src/pool.rs", src).is_empty());
    }

    #[test]
    fn pool_width_rule_exempts_tests_and_honors_suppression() {
        let src = "fn grow(n: usize) { puffer_tensor::pool::set_num_threads(n); }";
        assert!(run("crates/dist/tests/pool_guard_probe.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { pool::set_num_threads(1); }\n}";
        assert!(run("crates/dist/src/trainer.rs", in_test).is_empty());
        let decoy = "fn f() { let s = \"set_num_threads(\"; } // set_num_threads in comment";
        assert!(run("crates/dist/src/trainer.rs", decoy).is_empty());
        let allowed = "// lint:allow(dist-pool-width-via-membership) — startup pinning\n\
                       fn f() { pool::set_num_threads(1); }";
        assert!(run("crates/dist/src/trainer.rs", allowed).is_empty());
    }

    #[test]
    fn indexed_accumulation_flagged_in_dist_outside_pinned_owners() {
        let src =
            "fn sum(mean: &mut [f32], g: &[f32]) { for i in 0..g.len() { mean[i] += g[i]; } }";
        let diags = run("crates/dist/src/trainer.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].0, "bucket-apply-order-pinned");
        // The two pinned owners of accumulation order are exempt.
        assert!(run("crates/dist/src/bucket.rs", src).is_empty());
        assert!(run("crates/dist/src/ring.rs", src).is_empty());
        // Other crates pin their own reduction orders; out of scope.
        assert!(run("crates/tensor/src/gemm.rs", src).is_empty());
    }

    #[test]
    fn indexed_accumulation_rule_ignores_lookalikes_and_honors_suppression() {
        // Plain indexed store, indexed read on the right-hand side, and a
        // split `+` `=` across lines are not the `+=` operator.
        let store = "fn f(a: &mut [u64], v: u64) { a[0] = v; }";
        assert!(run("crates/dist/src/trainer.rs", store).is_empty());
        let read = "fn f(a: &[f32], b: f32) -> f32 { a[0] + b }";
        assert!(run("crates/dist/src/trainer.rs", read).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t(a: &mut [f32]) { a[0] += 1.0; }\n}";
        assert!(run("crates/dist/src/trainer.rs", in_test).is_empty());
        assert!(run(
            "crates/dist/tests/overlap_determinism.rs",
            "fn f(a: &mut [f32]) { a[0] += 1.0; }"
        )
        .is_empty());
        let allowed = "// lint:allow(bucket-apply-order-pinned) — single-contributor path\n\
                       fn f(a: &mut [f32]) { a[0] += 1.0; }";
        assert!(run("crates/dist/src/trainer.rs", allowed).is_empty());
    }

    #[test]
    fn percentile_fns_flagged_outside_probe_and_insight() {
        let src =
            "fn median(mut xs: Vec<f64>) -> f64 { xs.sort_by(f64::total_cmp); xs[xs.len() / 2] }";
        let diags = run("crates/bench/src/bin/soak.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].0, "no-raw-percentile-math");
        // The two crates that own quantile math are exempt…
        assert!(run("crates/probe/src/hist.rs", src).is_empty());
        assert!(run("crates/insight/src/report.rs", src).is_empty());
        // …and so are test/bench files.
        assert!(run("crates/bench/tests/soak_gates.rs", src).is_empty());
        let p99 = "fn p99(xs: &[f64]) -> f64 { xs[xs.len() * 99 / 100] }";
        assert_eq!(run("crates/dist/src/trainer.rs", p99).len(), 1);
    }

    #[test]
    fn percentile_rule_spares_consumers_and_honors_suppression() {
        // Compound names consume a quantile, they don't re-derive one.
        let consumer = "fn p50_seconds(xs: &[f64]) -> f64 { hist(xs).p50() as f64 / 1e9 }";
        assert!(run("crates/bench/src/bin/soak.rs", consumer).is_empty());
        // Calls and variables named median are fine — only `fn` defs claim
        // to implement the math.
        let call = "fn f(h: &Histogram) { let median = h.p50(); report(median); }";
        assert!(run("crates/bench/src/lib.rs", call).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn median(xs: &[f64]) -> f64 { xs[0] }\n}";
        assert!(run("crates/bench/src/lib.rs", in_test).is_empty());
        let allowed = "// lint:allow(no-raw-percentile-math) — exact median needed here\n\
                       fn median(xs: &mut [f64]) -> f64 { xs[0] }";
        assert!(run("crates/bench/src/lib.rs", allowed).is_empty());
        assert!(is_percentile_fn_name("p999"));
        assert!(!is_percentile_fn_name("p"));
        assert!(!is_percentile_fn_name("p3"), "ClusterProfile::p3 is a preset, not a percentile");
        assert!(!is_percentile_fn_name("print"));
        assert!(!is_percentile_fn_name("p2p_send"));
    }

    #[test]
    fn kernel_vec_alloc_exempt_in_tests_and_suppressible() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![0.0; 4]; }\n}";
        assert!(run("crates/tensor/src/conv.rs", in_test).is_empty());
        let allowed = "// lint:allow(no-vec-alloc-in-kernel) — one-shot cold-path buffer\n\
                       fn f(n: usize) { let v = vec![0.0f32; n]; }";
        assert!(run("crates/tensor/src/matmul.rs", allowed).is_empty());
    }
}
