//! Seeded violations for `simd-needs-feature-gate`: intrinsic calls must
//! sit inside `#[target_feature]` fns behind runtime detection.

use core::arch::x86_64::{__m256, _mm256_add_ps, _mm256_loadu_ps};

// Decoy: picks the kernel behind a runtime check; calling gated fns from
// here is the sanctioned pattern.
fn supported() -> bool {
    is_x86_feature_detected!("avx2")
}

// Decoy: the gated kernel itself — intrinsic calls in here are legal.
// SAFETY: callers check `supported()` first.
#[target_feature(enable = "avx2")]
unsafe fn gated(a: *const f32) -> __m256 {
    _mm256_loadu_ps(a)
}

// Violation: an intrinsic call on a plain, unguarded path.
fn violation(a: __m256, b: __m256) -> __m256 {
    _mm256_add_ps(a, b)
}

// Decoy: a deliberate, visible exemption.
fn suppressed(a: __m256, b: __m256) -> __m256 {
    // lint:allow(simd-needs-feature-gate) — call site is cfg-gated upstream
    _mm256_add_ps(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test code may poke intrinsics directly.
    fn fine_in_tests(a: __m256, b: __m256) -> __m256 {
        _mm256_add_ps(a, b)
    }
}
