//! A workspace call graph over the [`crate::symbols`] function index.
//!
//! Each function gets an adjacency list of resolved call sites. Edges are
//! name-resolved through the symbol table (see its caveats: no type
//! inference, no trait dispatch), and test functions never contribute
//! edges — a call that only happens under `#[cfg(test)]` cannot make a
//! panic "reachable" in production. Closure bodies belong to the defining
//! function: a worker closure handed to a thread pool still executes the
//! trainer's code.
//!
//! [`reachable`] runs a BFS from a root set and keeps one parent pointer
//! per reached function, so findings can pin the *shortest* call chain
//! (`run → round → pack_refs`) into their message.

use crate::ast::{Block, Expr, ExprKind, Stmt};
use crate::symbols::SymbolTable;
use std::collections::{HashMap, VecDeque};

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Callee function id.
    pub callee: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
}

/// Adjacency lists, indexed by function id.
pub struct CallGraph {
    /// `calls[f]` = call sites inside function `f`, in source order.
    pub calls: Vec<Vec<CallEdge>>,
}

impl CallGraph {
    /// Resolves every call site in every non-test function.
    pub fn build(symbols: &SymbolTable<'_>) -> CallGraph {
        let mut calls = vec![Vec::new(); symbols.fns.len()];
        for (id, f) in symbols.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(body) = &f.def.body else { continue };
            let mut edges = Vec::new();
            walk_own_exprs(body, &mut |expr| {
                let targets = match &expr.kind {
                    ExprKind::Call { path, .. } => symbols.candidates_for_call(f.file, path),
                    ExprKind::MethodCall { recv, name, .. } => symbols.candidates_for_method(
                        f.file,
                        f.self_ty,
                        receiver_is_self(recv),
                        name,
                    ),
                    _ => return,
                };
                for callee in targets {
                    edges.push(CallEdge { callee, line: expr.span.line, col: expr.span.col });
                }
            });
            calls[id] = edges;
        }
        CallGraph { calls }
    }
}

fn receiver_is_self(recv: &Expr) -> bool {
    match &recv.kind {
        ExprKind::Path(p) => p == "self",
        ExprKind::Unary(inner) | ExprKind::Try(inner) => receiver_is_self(inner),
        _ => false,
    }
}

/// Pre-order walk over a function's *own* expressions: descends into
/// blocks and closures but not into nested item definitions (those are
/// separate call-graph nodes).
pub fn walk_own_exprs<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    walk(e, f);
                }
                if let Some(b) = els {
                    walk_own_exprs(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk(expr, f),
            Stmt::Item(_) => {}
        }
    }
    fn walk<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
        f(expr);
        match &expr.kind {
            ExprKind::Call { args, .. } | ExprKind::Macro { args, .. } => {
                for a in args {
                    walk(a, f);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                walk(recv, f);
                for a in args {
                    walk(a, f);
                }
            }
            ExprKind::Field { base, .. } => walk(base, f),
            ExprKind::Index { base, index } => {
                walk(base, f);
                walk(index, f);
            }
            ExprKind::Try(inner) | ExprKind::Closure(inner) | ExprKind::Unary(inner) => {
                walk(inner, f);
            }
            ExprKind::Block(b) | ExprKind::Loop(b) => walk_own_exprs(b, f),
            ExprKind::If { cond, then, els } => {
                walk(cond, f);
                walk_own_exprs(then, f);
                if let Some(e) = els {
                    walk(e, f);
                }
            }
            ExprKind::Match { scrut, arms } => {
                walk(scrut, f);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        walk(g, f);
                    }
                    walk(&arm.body, f);
                }
            }
            ExprKind::While { cond, body } => {
                walk(cond, f);
                walk_own_exprs(body, f);
            }
            ExprKind::For { iter, body } => {
                walk(iter, f);
                walk_own_exprs(body, f);
            }
            ExprKind::Jump(inner) => {
                if let Some(e) = inner {
                    walk(e, f);
                }
            }
            ExprKind::Chain(parts) | ExprKind::Tuple(parts) | ExprKind::Array(parts) => {
                for p in parts {
                    walk(p, f);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for fl in fields {
                    walk(fl, f);
                }
            }
            ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Opaque => {}
        }
    }
}

/// BFS from `roots` over functions passing `allow`; returns each reached
/// function's parent (`None` for roots). Shortest-path parents, ties
/// broken by source order, so chains are deterministic.
pub fn reachable(
    graph: &CallGraph,
    roots: &[usize],
    allow: &dyn Fn(usize) -> bool,
) -> HashMap<usize, Option<usize>> {
    let mut pred: HashMap<usize, Option<usize>> = HashMap::new();
    let mut queue = VecDeque::new();
    for &r in roots {
        if allow(r) && !pred.contains_key(&r) {
            pred.insert(r, None);
            queue.push_back(r);
        }
    }
    while let Some(id) = queue.pop_front() {
        for edge in &graph.calls[id] {
            if allow(edge.callee) && !pred.contains_key(&edge.callee) {
                pred.insert(edge.callee, Some(id));
                queue.push_back(edge.callee);
            }
        }
    }
    pred
}

/// Renders the call chain from a root down to `id`:
/// `run → round → pack_refs`.
pub fn chain(symbols: &SymbolTable<'_>, pred: &HashMap<usize, Option<usize>>, id: usize) -> String {
    let mut names = Vec::new();
    let mut cur = Some(id);
    while let Some(c) = cur {
        names.push(symbols.fns[c].def.name.clone());
        cur = pred.get(&c).copied().flatten();
    }
    names.reverse();
    names.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::ParsedFile;
    use std::path::Path;

    fn table_of(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources.iter().map(|(rel, src)| ParsedFile::parse(Path::new(rel), src)).collect()
    }

    fn id_of(symbols: &SymbolTable<'_>, name: &str) -> usize {
        symbols.all_named(name)[0]
    }

    #[test]
    fn three_deep_chain_resolves_and_renders() {
        let files = table_of(&[(
            "crates/dist/src/trainer.rs",
            "impl Trainer { pub fn run(&self) { self.round(0); } \
             fn round(&self, s: usize) { pack_refs(s); } } \
             fn pack_refs(s: usize) { helper(s); } \
             fn helper(_s: usize) {}",
        )]);
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&symbols);
        let run = id_of(&symbols, "run");
        let pred = reachable(&graph, &[run], &|_| true);
        let helper = id_of(&symbols, "helper");
        assert!(pred.contains_key(&helper));
        assert_eq!(chain(&symbols, &pred, helper), "run → round → pack_refs → helper");
    }

    #[test]
    fn test_fns_emit_no_edges_and_are_not_reached() {
        let files = table_of(&[(
            "crates/dist/src/x.rs",
            "fn entry() { live(); } fn live() {} \
             #[cfg(test)] mod t { fn t_only() { super::live(); } }",
        )]);
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&symbols);
        let t_only = id_of(&symbols, "t_only");
        assert!(graph.calls[t_only].is_empty());
        let pred = reachable(&graph, &[id_of(&symbols, "entry")], &|_| true);
        assert!(pred.contains_key(&id_of(&symbols, "live")));
        assert!(!pred.contains_key(&t_only));
    }

    #[test]
    fn closure_calls_belong_to_the_defining_fn() {
        let files = table_of(&[(
            "crates/dist/src/x.rs",
            "fn entry(xs: &[u32]) { xs.iter().for_each(|x| deferred(*x)); } \
             fn deferred(_x: u32) {}",
        )]);
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&symbols);
        let pred = reachable(&graph, &[id_of(&symbols, "entry")], &|_| true);
        assert!(pred.contains_key(&id_of(&symbols, "deferred")));
    }

    #[test]
    fn nested_item_fns_are_separate_nodes() {
        let files = table_of(&[(
            "crates/dist/src/x.rs",
            "fn outer() { fn inner() { secret(); } inner(); } fn secret() {}",
        )]);
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&symbols);
        let outer = id_of(&symbols, "outer");
        // outer calls inner (not secret directly)…
        assert!(graph.calls[outer].iter().any(|e| symbols.fns[e.callee].def.name == "inner"));
        assert!(!graph.calls[outer].iter().any(|e| symbols.fns[e.callee].def.name == "secret"));
        // …but secret is still transitively reachable through inner.
        let pred = reachable(&graph, &[outer], &|_| true);
        assert!(pred.contains_key(&id_of(&symbols, "secret")));
    }

    #[test]
    fn allow_filter_bounds_the_traversal() {
        let files = table_of(&[
            ("crates/dist/src/x.rs", "fn entry() { crosses(); }"),
            ("crates/dist/src/y.rs", "fn crosses() { far(); } fn far() {}"),
        ]);
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&symbols);
        let entry = id_of(&symbols, "entry");
        let crosses = id_of(&symbols, "crosses");
        let pred = reachable(&graph, &[entry], &|id| id != crosses);
        assert!(!pred.contains_key(&crosses));
        assert!(!pred.contains_key(&id_of(&symbols, "far")));
    }

    #[test]
    fn recursion_terminates() {
        let files = table_of(&[("crates/dist/src/x.rs", "fn a() { b(); } fn b() { a(); }")]);
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&symbols);
        let pred = reachable(&graph, &[id_of(&symbols, "a")], &|_| true);
        assert_eq!(pred.len(), 2);
    }
}
