//! Uncompressed baseline: exact mean over a single flat allreduce — what
//! "vanilla SGD" means in the paper's Figure 4, including its flat-buffer
//! packing optimization.

use crate::pack::{pack, unpack};
use crate::{exact_mean, AggregationKind, GradCompressor, RoundStats};
use puffer_probe::Stopwatch;
use puffer_tensor::Tensor;

/// No compression: ships raw f32 gradients.
#[derive(Debug, Default)]
pub struct NoCompression;

impl NoCompression {
    /// Creates the baseline.
    pub fn new() -> Self {
        NoCompression
    }
}

impl GradCompressor for NoCompression {
    fn name(&self) -> &'static str {
        "vanilla-sgd"
    }

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::AllReduce
    }

    fn supports_bucketed_overlap(&self) -> bool {
        // The exact mean is linear and stateless: reducing each bucket of
        // the flat buffer independently equals reducing the whole buffer.
        true
    }

    fn round(&mut self, worker_grads: &[Vec<Tensor>]) -> (Vec<Tensor>, RoundStats) {
        // Encode = flatten into one buffer (the paper's packing step).
        let t0 = Stopwatch::start();
        let packed: Vec<_> = worker_grads.iter().map(|g| pack(g)).collect();
        let encode_time = t0.elapsed() / worker_grads.len().max(1) as u32;
        let bytes = packed.first().map(|(_, l)| l.total_bytes()).unwrap_or(0);
        // Decode = unpack the (conceptually allreduced) buffer.
        let t0 = Stopwatch::start();
        let mean = exact_mean(worker_grads);
        let (mean_buf, layout) = pack(&mean);
        let out = unpack(&mean_buf, &layout);
        let decode_time = t0.elapsed();
        (
            out,
            RoundStats::new(
                bytes,
                worker_grads.len(),
                self.aggregation(),
                encode_time,
                decode_time,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_is_exact() {
        let mut c = NoCompression::new();
        let w1 = vec![Tensor::full(&[4], 2.0), Tensor::full(&[2], 0.0)];
        let w2 = vec![Tensor::full(&[4], 4.0), Tensor::full(&[2], 2.0)];
        let (out, stats) = c.round(&[w1, w2]);
        assert_eq!(out[0].as_slice(), &[3.0; 4]);
        assert_eq!(out[1].as_slice(), &[1.0, 1.0]);
        assert_eq!(stats.bytes_per_worker, 6 * 4);
        assert_eq!(c.aggregation(), AggregationKind::AllReduce);
        assert!(c.supports_bucketed_overlap());
    }
}
