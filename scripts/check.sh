#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Referenced from ROADMAP.md; run before every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "== fault-injection suite (fixed seeds)"
cargo test -q -p puffer-dist --test fault_suite

echo "== puffer-lint (workspace correctness contracts, DESIGN.md §8)"
# Replaces the old awk/grep source checks: token-accurate no-panic and
# no-raw-clock rules, SAFETY-comment enforcement, and the dependency
# allowlist. Findings print as file:line:col and fail the gate.
cargo run --release -q -p puffer-lint

echo "== puffer-lint self-test (seeded fixture violations must be caught)"
cargo test -q -p puffer-lint

echo "== probe overhead guard (disabled-probe cost < 2% on a GEMM)"
cargo test -q --release -p puffer-tensor --test probe_overhead

echo "== tensor suite under the scalar GEMM fallback (PUFFER_SIMD=0)"
# The blocked engine promises bitwise-identical results with the SIMD
# micro-kernel disabled; prove the whole tensor suite agrees, not just
# the dedicated A/B tests (which force both paths in-process anyway).
PUFFER_SIMD=0 cargo test -q -p puffer-tensor

echo "== allocation steady-state guard (warmed-up step must not miss the pool)"
cargo run --release -q -p puffer-bench --bin alloc_churn -- --check

echo "== allocation steady-state guard under the scalar GEMM fallback"
PUFFER_SIMD=0 cargo run --release -q -p puffer-bench --bin alloc_churn -- --check

echo "== elastic-membership soak, smoke length (seeded churn, DESIGN.md §11)"
# 24 steps, fixed seed, ≤30 s: joins/rejoins/crashes/leave plus corrupted,
# dropped, and non-finite messages; gates on schedule completion, zero
# steady-state allocation, bounded replay divergence, recovery within k
# rounds, and no leaked pool threads. Writes BENCH_soak.json.
PUFFER_SOAK_SMOKE=1 cargo run --release -q -p puffer-bench --bin soak -- --check

echo "All checks passed."
