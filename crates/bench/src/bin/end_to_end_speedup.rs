//! **Figure 4 end-to-end numbers** (§4.2): total time-to-accuracy of
//! Pufferfish vs vanilla SGD, Signum, and PowerSGD on ResNet-18 / CIFAR-10
//! (8 nodes), *including* Pufferfish's warm-up phase and SVD overhead.
//!
//! Pufferfish's warm-up epochs run on the **full-rank** model (the paper
//! additionally compresses those epochs with PowerSGD rank 4, which we
//! reproduce); the remaining epochs run on the hybrid model with plain
//! allreduce. Shape under reproduction: end-to-end Pufferfish beats
//! vanilla (paper 1.74×), Signum (1.52×), and PowerSGD (1.22×) while
//! matching vanilla accuracy.

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_compress::none::NoCompression;
use puffer_compress::powersgd::PowerSgd;
use puffer_compress::signum::Signum;
use puffer_compress::GradCompressor;
use puffer_dist::breakdown::measure_sequential_epoch;
use puffer_dist::cost::ClusterProfile;
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::units::FactorInit;
use puffer_probe::Stopwatch;
use pufferfish::trainer::{evaluate, ImageModel};

const NODES: usize = 8;

fn main() {
    let scale = RunScale::from_env();
    let data = setups::cifar_data(scale);
    let profile = ClusterProfile::p3_like(NODES);
    let epochs = scale.pick(4, 10);
    let warmup = scale.pick(1, 3);
    let batches = data.train_batches(32, 0);
    println!("== End-to-end speedup, ResNet-18 / CIFAR-10, {NODES} nodes, {epochs} epochs ==\n");

    let mut t =
        Table::new(vec!["method", "end-to-end (s)", "final acc", "speedup of pufferfish", "paper"]);
    let mut results: Vec<(&str, f64, f32)> = Vec::new();
    // (method, per-epoch (cumulative seconds, train loss)) — the
    // convergence-vs-wall-clock series of the paper's Figure 4 bottom rows.
    let mut curves: Vec<(&str, Vec<(f64, f32)>)> = Vec::new();

    // Baselines: the whole budget on the full-rank model.
    for method in ["vanilla-sgd", "signum", "powersgd-r2"] {
        let mut model: ImageModel = setups::resnet18(10, 1).into();
        let mut none_c;
        let mut sig;
        let mut p2;
        let compressor: &mut dyn GradCompressor = match method {
            "signum" => {
                sig = Signum::new(0.9);
                &mut sig
            }
            "powersgd-r2" => {
                p2 = PowerSgd::new(2, 3);
                &mut p2
            }
            _ => {
                none_c = NoCompression::new();
                &mut none_c
            }
        };
        let mut total = 0.0f64;
        let mut curve = Vec::new();
        for _ in 0..epochs {
            let (bd, loss) =
                measure_sequential_epoch(&mut model, &batches, NODES, compressor, &profile, 0.05)
                    .expect("epoch");
            total += bd.total().as_secs_f64();
            curve.push((total, loss));
        }
        let (_, acc) = evaluate(&mut model, &data, 32).expect("eval");
        results.push((method, total, acc));
        curves.push((method, curve));
    }

    // Pufferfish: warm-up epochs on the full model with PowerSGD rank 4,
    // then SVD (timed), then hybrid epochs with plain allreduce.
    {
        let mut model: ImageModel = setups::resnet18(10, 1).into();
        let mut total = 0.0f64;
        let mut p4 = PowerSgd::new(4, 3);
        for _ in 0..warmup {
            let (bd, _) =
                measure_sequential_epoch(&mut model, &batches, NODES, &mut p4, &profile, 0.05)
                    .expect("epoch");
            total += bd.total().as_secs_f64();
        }
        let t0 = Stopwatch::start();
        let ImageModel::ResNet(net) = model else { unreachable!() };
        let mut model: ImageModel = net
            .to_hybrid(&ResNetHybridPlan::resnet18_paper(), FactorInit::WarmStart)
            .expect("hybrid")
            .into();
        total += t0.elapsed().as_secs_f64(); // SVD overhead included
        let mut none_c = NoCompression::new();
        let mut curve = Vec::new();
        for _ in warmup..epochs {
            let (bd, loss) =
                measure_sequential_epoch(&mut model, &batches, NODES, &mut none_c, &profile, 0.05)
                    .expect("epoch");
            total += bd.total().as_secs_f64();
            curve.push((total, loss));
        }
        let (_, acc) = evaluate(&mut model, &data, 32).expect("eval");
        results.push(("pufferfish", total, acc));
        curves.push(("pufferfish", curve));
    }

    let puffer_total = results.iter().find(|(m, _, _)| *m == "pufferfish").unwrap().1;
    for (method, total, acc) in &results {
        let paper = match *method {
            "vanilla-sgd" => "1.74x",
            "signum" => "1.52x",
            "powersgd-r2" => "1.22x",
            _ => "-",
        };
        t.row(vec![
            (*method).into(),
            format!("{total:.2}"),
            format!("{acc:.3}"),
            if *method == "pufferfish" {
                "-".into()
            } else {
                format!("{:.2}x", total / puffer_total)
            },
            paper.into(),
        ]);
        record_result("end_to_end", &format!("{method}: total {total:.2}s acc {acc:.4}"));
    }
    t.print();

    // Convergence vs wall-clock (Figure 4 bottom-row analogue).
    println!("\nconvergence vs cumulative wall-clock (train loss @ seconds):");
    for (method, curve) in &curves {
        let series: Vec<String> = curve.iter().map(|(s, l)| format!("{l:.2}@{s:.1}s")).collect();
        println!("  {method:<14} {}", series.join(" -> "));
    }
    println!("\nall reported times include Pufferfish's warm-up + SVD overhead (as in the paper).");
}
