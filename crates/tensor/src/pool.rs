//! Process-wide persistent worker pool for data-parallel kernels.
//!
//! Every threaded kernel in this crate (`matmul`, `im2col`/`col2im`, the
//! large-tensor elementwise ops) funnels through [`run_partitioned`], which
//! splits an index space into one contiguous chunk per thread and executes
//! the chunks on a lazily-initialized pool of persistent workers. The
//! caller's thread always processes the first chunk itself, so a pool with
//! `t` configured threads spawns at most `t - 1` OS threads.
//!
//! # Thread-count resolution
//!
//! The effective thread count is resolved once, lazily, in this order:
//!
//! 1. `PUFFER_NUM_THREADS` environment variable (a positive integer);
//! 2. [`std::thread::available_parallelism`] otherwise.
//!
//! [`set_num_threads`] overrides the setting at runtime (tests use this to
//! compare identical kernels under different thread counts). With an
//! effective count of 1 — in particular under `PUFFER_NUM_THREADS=1` —
//! every call runs inline on the caller thread and **no worker threads are
//! ever spawned**, so single-threaded CI and the `Reproducible` matmul
//! profile pay zero threading overhead.
//!
//! # Determinism
//!
//! [`run_partitioned`] guarantees nothing about *which* thread runs which
//! chunk, only that chunks are contiguous, disjoint, cover `0..n_items`,
//! and have all completed when the call returns. Kernels built on it keep
//! bitwise-deterministic results by making each item's output depend only
//! on the item index — e.g. GEMM partitions over output rows and keeps the
//! per-row reduction order identical to the sequential kernel — so the
//! result is the same for every thread count.
//!
//! # Panics
//!
//! A panic inside the partition closure is caught on the worker, all
//! sibling chunks are still waited for (so borrowed data stays alive), and
//! the panic is then resumed on the calling thread.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use puffer_probe as probe;

/// Hard cap on the configurable thread count; guards against absurd
/// `PUFFER_NUM_THREADS` values spawning unbounded OS threads.
pub const MAX_THREADS: usize = 256;

/// `0` means "not yet resolved"; any other value is the effective setting.
static SETTING: AtomicUsize = AtomicUsize::new(0);

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Sender<Job>,
    /// Kept alive here so workers can clone it and the channel never closes.
    rx: Receiver<Job>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn resolve_default() -> usize {
    if let Ok(v) = std::env::var("PUFFER_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_THREADS))
}

/// The current effective thread count (resolving `PUFFER_NUM_THREADS` /
/// hardware parallelism on first use).
pub fn num_threads() -> usize {
    match SETTING.load(Ordering::Relaxed) {
        0 => {
            let n = resolve_default();
            // A concurrent set_num_threads may race us; keep whichever wrote
            // last — both are valid settings.
            let _ = SETTING.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
            SETTING.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Overrides the effective thread count (clamped to `1..=MAX_THREADS`).
///
/// Takes effect for subsequent [`run_partitioned`] calls; already-spawned
/// workers are kept parked rather than torn down when shrinking.
pub fn set_num_threads(n: usize) {
    let clamped = n.clamp(1, MAX_THREADS);
    SETTING.store(clamped, Ordering::Relaxed);
    probe::gauge_set("pool.width", clamped as f64);
}

fn pool_with_workers(needed: usize) -> &'static Pool {
    let pool = POOL.get_or_init(|| {
        let (tx, rx) = unbounded::<Job>();
        Pool { tx, rx, spawned: Mutex::new(0) }
    });
    let mut spawned = pool.spawned.lock().expect("pool spawn lock poisoned");
    while *spawned < needed {
        let rx = pool.rx.clone();
        std::thread::Builder::new()
            .name(format!("puffer-pool-{spawned}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .expect("failed to spawn puffer-pool worker");
        *spawned += 1;
    }
    pool
}

/// Balanced contiguous partition: the first `n_items % parts` chunks get one
/// extra item.
fn chunk_range(n_items: usize, parts: usize, idx: usize) -> Range<usize> {
    let base = n_items / parts;
    let rem = n_items % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    start..start + len
}

/// Splits `0..n_items` into one contiguous chunk per effective thread and
/// runs `f` on every chunk, blocking until all chunks complete.
///
/// The caller thread runs the first chunk itself; remaining chunks go to
/// the persistent pool. With an effective thread count of 1 (or fewer than
/// 2 items) the whole range runs inline and the pool is never touched.
pub fn run_partitioned<F>(n_items: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let parts = num_threads().min(n_items);
    if parts <= 1 {
        if n_items > 0 {
            f(0..n_items);
        }
        return;
    }

    let n_jobs = parts - 1;
    probe::counter_add("pool.dispatches", 1);
    probe::counter_add("pool.jobs", n_jobs as u64);
    let _sp = probe::span_with("pool", "dispatch", || {
        vec![("items", n_items.into()), ("parts", parts.into())]
    });
    let pool = pool_with_workers(n_jobs);
    let (done_tx, done_rx) = bounded::<std::thread::Result<()>>(n_jobs);
    for idx in 1..parts {
        let range = chunk_range(n_items, parts, idx);
        let done = done_tx.clone();
        let fref: &(dyn Fn(Range<usize>) + Sync) = &f;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            // The span runs on the worker thread, so the trace shows
            // per-worker occupancy under the pool's own thread names.
            let sp = probe::span_with("pool", "chunk", || {
                vec![("start", range.start.into()), ("len", range.len().into())]
            });
            let result = catch_unwind(AssertUnwindSafe(|| fref(range)));
            drop(sp);
            // Best-effort: the dispatcher may have bailed after a panic in
            // an earlier chunk.
            done.send(result).ok();
        });
        // SAFETY: the job borrows `f` (and anything `f` captures) for less
        // than this stack frame: we block on `done_rx` below until every
        // dispatched job has sent its completion, and the completion send is
        // the job's last action. Extending the borrow to 'static therefore
        // never outlives the data.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
        pool.tx.send(job).expect("puffer-pool job channel closed");
    }

    let caller_result = catch_unwind(AssertUnwindSafe(|| f(chunk_range(n_items, parts, 0))));

    // Wait for every dispatched chunk before propagating anything, so
    // borrows held by in-flight jobs cannot dangle.
    let mut worker_panic = None;
    for _ in 0..n_jobs {
        match done_rx.recv().expect("puffer-pool completion channel closed") {
            Ok(()) => {}
            Err(payload) => worker_panic = Some(payload),
        }
    }
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Partitions a mutable buffer of `n_items = data.len() / item_len`
/// fixed-size items into per-thread sub-slices and runs
/// `f(first_item_index, chunk)` on each, blocking until all complete.
///
/// This is the safe `&mut`-splitting companion to [`run_partitioned`]: each
/// chunk is a disjoint `&mut [f32]` window aligned to `item_len`, so
/// kernels can write rows/planes in parallel without sharing mutable state.
///
/// # Panics
///
/// Panics if `item_len` is zero or does not divide `data.len()`.
pub fn run_chunked<F>(data: &mut [f32], item_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(item_len > 0, "run_chunked: item_len must be positive");
    assert_eq!(
        data.len() % item_len,
        0,
        "run_chunked: data length {} not divisible by item length {}",
        data.len(),
        item_len
    );
    let n_items = data.len() / item_len;

    struct SendPtr(*mut f32);
    // SAFETY: only disjoint regions derived from distinct chunk ranges are
    // ever dereferenced, and run_partitioned joins all chunks before
    // returning.
    unsafe impl Send for SendPtr {}
    // SAFETY: shared references to SendPtr only ever read the pointer value;
    // the disjointness argument above covers the derived slices.
    unsafe impl Sync for SendPtr {}

    let base = SendPtr(data.as_mut_ptr());
    run_partitioned(n_items, |range: Range<usize>| {
        // Capture the whole SendPtr, not its raw-pointer field (edition 2021
        // disjoint capture would otherwise lose the Send + Sync impls).
        let base = &base;
        // SAFETY: run_partitioned hands every worker a distinct, in-bounds
        // `range` over `n_items`, so each slice covers `data` exclusively and
        // the borrow ends when run_partitioned joins.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                base.0.add(range.start * item_len),
                range.len() * item_len,
            )
        };
        f(range.start, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_balanced_and_cover() {
        for &(n, parts) in &[(10usize, 3usize), (7, 7), (64, 5), (1, 1), (5, 2)] {
            let mut next = 0;
            for idx in 0..parts {
                let r = chunk_range(n, parts, idx);
                assert_eq!(r.start, next, "chunks must be contiguous");
                assert!(r.len() >= n / parts && r.len() <= n / parts + 1);
                next = r.end;
            }
            assert_eq!(next, n, "chunks must cover the full range");
        }
    }

    #[test]
    fn run_partitioned_visits_every_item_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        run_partitioned(hits.len(), |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_chunked_writes_disjoint_rows() {
        let mut data = vec![0.0f32; 12 * 5];
        run_chunked(&mut data, 5, |first, chunk| {
            for (offset, row) in chunk.chunks_exact_mut(5).enumerate() {
                row.fill((first + offset) as f32);
            }
        });
        for (i, row) in data.chunks_exact(5).enumerate() {
            assert!(row.iter().all(|&x| x == i as f32), "row {i} corrupted");
        }
    }

    #[test]
    fn zero_items_is_a_no_op() {
        run_partitioned(0, |_| panic!("must not be called"));
        run_chunked(&mut [], 3, |_, _| panic!("must not be called"));
    }

    #[test]
    fn worker_panic_propagates() {
        let prev = num_threads();
        set_num_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_partitioned(100, |range| {
                if range.end == 100 {
                    panic!("boom in last chunk");
                }
            });
        }));
        set_num_threads(prev);
        assert!(result.is_err(), "panic in a chunk must surface to the caller");
    }

    #[test]
    fn set_num_threads_clamps() {
        let prev = num_threads();
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(usize::MAX);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(prev);
    }
}
