//! Binary tensor serialization — the checkpoint substrate.
//!
//! A minimal, dependency-free container format (`PUFT`): magic, version,
//! entry count, then per entry a name, a shape, and little-endian f32 data.
//! Used by `puffer-nn`'s checkpointing to save/restore model state between
//! the phases of long experiments.

use crate::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PUFT";
const VERSION: u32 = 1;

/// Writes named tensors to a writer in the `PUFT` format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_tensors<W: Write>(mut w: W, entries: &[(String, &Tensor)]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    for (name, tensor) in entries {
        let name_bytes = name.as_bytes();
        w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        w.write_all(name_bytes)?;
        w.write_all(&(tensor.ndim() as u32).to_le_bytes())?;
        for &d in tensor.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in tensor.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads named tensors from a reader in the `PUFT` format.
///
/// # Errors
///
/// Returns `InvalidData` for bad magic/version/shape and propagates I/O
/// errors (including truncation).
pub fn read_tensors<R: Read>(mut r: R) -> io::Result<Vec<(String, Tensor)>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible name length"));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 tensor name"))?;
        let ndim = read_u32(&mut r)? as usize;
        if ndim > 16 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible tensor rank"));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut len = 1usize;
        for _ in 0..ndim {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            let d = u64::from_le_bytes(buf) as usize;
            len = len.saturating_mul(d);
            shape.push(d);
        }
        if len > 1 << 30 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible tensor size"));
        }
        let mut data = vec![0f32; len];
        for v in &mut data {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        let tensor = Tensor::from_vec(data, &shape)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push((name, tensor));
    }
    Ok(out)
}

/// Saves named tensors to a file.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn save_tensors<P: AsRef<Path>>(path: P, entries: &[(String, &Tensor)]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_tensors(io::BufWriter::new(file), entries)
}

/// Loads named tensors from a file.
///
/// # Errors
///
/// Propagates file I/O and format errors.
pub fn load_tensors<P: AsRef<Path>>(path: P) -> io::Result<Vec<(String, Tensor)>> {
    let file = std::fs::File::open(path)?;
    read_tensors(io::BufReader::new(file))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, Tensor)> {
        vec![
            ("conv.weight".into(), Tensor::randn(&[2, 3, 3, 3], 1.0, 1)),
            ("bn.weight".into(), Tensor::ones(&[3])),
            ("empty".into(), Tensor::zeros(&[0])),
        ]
    }

    #[test]
    fn round_trip_in_memory() {
        let entries = sample();
        let refs: Vec<(String, &Tensor)> = entries.iter().map(|(n, t)| (n.clone(), t)).collect();
        let mut buf = Vec::new();
        write_tensors(&mut buf, &refs).unwrap();
        let back = read_tensors(&buf[..]).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn round_trip_file() {
        let entries = sample();
        let refs: Vec<(String, &Tensor)> = entries.iter().map(|(n, t)| (n.clone(), t)).collect();
        let path = std::env::temp_dir().join("puffer_io_test.puft");
        save_tensors(&path, &refs).unwrap();
        let back = load_tensors(&path).unwrap();
        assert_eq!(back, entries);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_tensors(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_data_rejected() {
        let entries = sample();
        let refs: Vec<(String, &Tensor)> = entries.iter().map(|(n, t)| (n.clone(), t)).collect();
        let mut buf = Vec::new();
        write_tensors(&mut buf, &refs).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_tensors(&buf[..]).is_err());
    }

    #[test]
    fn special_values_preserved() {
        let t = Tensor::from_vec(vec![f32::INFINITY, -0.0, f32::MIN_POSITIVE], &[3]).unwrap();
        let mut buf = Vec::new();
        write_tensors(&mut buf, &[("x".into(), &t)]).unwrap();
        let back = read_tensors(&buf[..]).unwrap();
        assert_eq!(back[0].1, t);
    }
}
