//! LSTM layers: vanilla and per-gate low-rank factorized (paper §2.3).
//!
//! The paper factorizes each of the eight gate matrices independently
//! (`W_ii, W_if, W_ig, W_io` on the input and `W_hi, W_hf, W_hg, W_ho` on
//! the hidden state), giving `4dr + 12hr` parameters per layer versus
//! `4(dh + h²)` for the vanilla layer (Table 1; appendix Table 12 lists the
//! factor shapes `1500×375` / `375×1500`).

use crate::activation::sigmoid;
use crate::param::Param;
use crate::{NnError, Result};
use puffer_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use puffer_tensor::Tensor;

/// A linear map that is either dense (`W ∈ R^{out×in}`) or factorized
/// (`U ∈ R^{out×r}`, `Vᵀ ∈ R^{r×in}`). The shared building block of the
/// LSTM and attention layers, applied as `y = x·Wᵀ`.
#[derive(Debug)]
pub enum MatOp {
    /// Dense weight.
    Dense(Param),
    /// Low-rank factors.
    LowRank {
        /// `U ∈ R^{out×r}`.
        u: Param,
        /// `Vᵀ ∈ R^{r×in}`.
        vt: Param,
    },
}

impl MatOp {
    /// Creates a dense op with N(0, std²) initialization.
    pub fn dense(name: &str, out_dim: usize, in_dim: usize, std: f32, seed: u64) -> Self {
        MatOp::Dense(Param::new(name, Tensor::randn(&[out_dim, in_dim], std, seed)))
    }

    /// Creates a low-rank op with N(0, std) per-factor initialization.
    pub fn low_rank(
        name: &str,
        out_dim: usize,
        in_dim: usize,
        rank: usize,
        std: f32,
        seed: u64,
    ) -> Self {
        let fs = std / (rank as f32).sqrt();
        MatOp::LowRank {
            u: Param::new(format!("{name}_u"), Tensor::randn(&[out_dim, rank], fs.sqrt(), seed)),
            vt: Param::new(
                format!("{name}_v"),
                Tensor::randn(&[rank, in_dim], fs.sqrt(), seed.wrapping_add(1)),
            ),
        }
    }

    /// Builds a low-rank op from explicit factors.
    pub fn from_factors(name: &str, u: Tensor, vt: Tensor) -> Self {
        MatOp::LowRank {
            u: Param::new(format!("{name}_u"), u),
            vt: Param::new(format!("{name}_v"), vt),
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        match self {
            MatOp::Dense(w) => w.value.shape()[0],
            MatOp::LowRank { u, .. } => u.value.shape()[0],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        match self {
            MatOp::Dense(w) => w.value.shape()[1],
            MatOp::LowRank { vt, .. } => vt.value.shape()[1],
        }
    }

    /// `y = x·Wᵀ` for `x: [n, in]`.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        match self {
            MatOp::Dense(w) => matmul_nt(x, &w.value).expect("MatOp shape"),
            MatOp::LowRank { u, vt } => {
                let h = matmul_nt(x, &vt.value).expect("MatOp shape");
                matmul_nt(&h, &u.value).expect("MatOp shape")
            }
        }
    }

    /// Accumulates parameter gradients for `y = x·Wᵀ` given `x` and
    /// `dy`, returning `dx`.
    pub fn backward(&mut self, x: &Tensor, dy: &Tensor) -> Tensor {
        match self {
            MatOp::Dense(w) => {
                let dw = matmul_tn(dy, x).expect("MatOp shape");
                w.grad.axpy(1.0, &dw).expect("grad shape");
                matmul(dy, &w.value).expect("MatOp shape")
            }
            MatOp::LowRank { u, vt } => {
                let hidden = matmul_nt(x, &vt.value).expect("MatOp shape");
                let du = matmul_tn(dy, &hidden).expect("MatOp shape");
                u.grad.axpy(1.0, &du).expect("grad shape");
                let dh = matmul(dy, &u.value).expect("MatOp shape");
                let dvt = matmul_tn(&dh, x).expect("MatOp shape");
                vt.grad.axpy(1.0, &dvt).expect("grad shape");
                matmul(&dh, &vt.value).expect("MatOp shape")
            }
        }
    }

    /// The effective dense matrix (`W` or `U·Vᵀ`).
    pub fn effective(&self) -> Tensor {
        match self {
            MatOp::Dense(w) => w.value.clone(),
            MatOp::LowRank { u, vt } => matmul(&u.value, &vt.value).expect("factor shapes"),
        }
    }

    /// Immutable parameter views.
    pub fn params(&self) -> Vec<&Param> {
        match self {
            MatOp::Dense(w) => vec![w],
            MatOp::LowRank { u, vt } => vec![u, vt],
        }
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            MatOp::Dense(w) => vec![w],
            MatOp::LowRank { u, vt } => vec![u, vt],
        }
    }
}

/// Rank used by a gate matrix: full or factorized at rank `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateRank {
    /// Dense gate matrices.
    Full,
    /// Per-gate factorization at this rank.
    LowRank(usize),
}

const GATE_NAMES: [&str; 4] = ["i", "f", "g", "o"];

#[derive(Debug)]
struct Gate {
    wx: MatOp,
    wh: MatOp,
    bias: Param,
}

#[derive(Debug, Default)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    gates: [Tensor; 4], // post-activation i, f, g, o
    tanh_c: Tensor,
}

/// A single LSTM layer processing `[T]` steps of `[batch, d]` inputs.
///
/// Not a [`crate::Layer`]: sequences need their own forward/backward API
/// (`forward_seq` / `backward_seq`, full BPTT).
#[derive(Debug)]
pub struct LstmLayer {
    gates: Vec<Gate>,
    d: usize,
    h: usize,
    rank: GateRank,
    cache: Vec<StepCache>,
}

impl LstmLayer {
    /// Creates an LSTM layer with input size `d`, hidden size `h`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero dimensions or a rank
    /// exceeding `min(d, h)`.
    pub fn new(d: usize, h: usize, rank: GateRank, seed: u64) -> Result<Self> {
        if d == 0 || h == 0 {
            return Err(NnError::BadConfig { layer: "LstmLayer", reason: "zero dimension".into() });
        }
        if let GateRank::LowRank(r) = rank {
            if r == 0 || r > d.min(h) {
                return Err(NnError::BadConfig {
                    layer: "LstmLayer",
                    reason: format!("rank {r} out of range for d={d}, h={h}"),
                });
            }
        }
        // PyTorch LSTM init: U(-1/sqrt(h), 1/sqrt(h)); we use a normal with
        // matching scale.
        let std = 1.0 / (h as f32).sqrt();
        let mut gates = Vec::with_capacity(4);
        for (gi, gname) in GATE_NAMES.iter().enumerate() {
            let s = seed.wrapping_add(100 * gi as u64);
            let (wx, wh) = match rank {
                GateRank::Full => (
                    MatOp::dense(&format!("weight.i{gname}"), h, d, std, s),
                    MatOp::dense(&format!("weight.h{gname}"), h, h, std, s.wrapping_add(1)),
                ),
                GateRank::LowRank(r) => (
                    MatOp::low_rank(&format!("weight.i{gname}"), h, d, r, std, s),
                    MatOp::low_rank(&format!("weight.h{gname}"), h, h, r, std, s.wrapping_add(1)),
                ),
            };
            gates.push(Gate {
                wx,
                wh,
                bias: Param::new_no_decay(format!("bias.{gname}"), Tensor::zeros(&[h])),
            });
        }
        Ok(LstmLayer { gates, d, h, rank, cache: Vec::new() })
    }

    /// `(input_size, hidden_size)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.d, self.h)
    }

    /// The gate rank configuration.
    pub fn rank(&self) -> GateRank {
        self.rank
    }

    /// Immutable parameter views (stable order: per gate `wx, wh, bias`).
    pub fn params(&self) -> Vec<&Param> {
        self.gates
            .iter()
            .flat_map(|g| {
                let mut v = g.wx.params();
                v.extend(g.wh.params());
                v.push(&g.bias);
                v
            })
            .collect()
    }

    /// Mutable parameter views, same order as [`LstmLayer::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.gates
            .iter_mut()
            .flat_map(|g| {
                let mut v = g.wx.params_mut();
                v.extend(g.wh.params_mut());
                v.push(&mut g.bias);
                v
            })
            .collect()
    }

    /// Total trainable scalars.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Dense effective gate matrices `(Wx, Wh, b)` for gate `gi ∈ 0..4`
    /// (i, f, g, o) — used by the SVD warm-start.
    pub fn gate_weights(&self, gi: usize) -> (Tensor, Tensor, Tensor) {
        let g = &self.gates[gi];
        (g.wx.effective(), g.wh.effective(), g.bias.value.clone())
    }

    /// Replaces gate `gi`'s maps with explicit [`MatOp`]s and bias (used by
    /// warm-start surgery).
    pub fn set_gate(&mut self, gi: usize, wx: MatOp, wh: MatOp, bias: Tensor) {
        self.gates[gi] =
            Gate { wx, wh, bias: Param::new_no_decay(format!("bias.{}", GATE_NAMES[gi]), bias) };
    }

    /// Runs the layer over a sequence, returning hidden states per step.
    /// Starts from zero initial state. Caches for [`LstmLayer::backward_seq`].
    ///
    /// # Panics
    ///
    /// Panics if any step has the wrong feature dimension.
    pub fn forward_seq(&mut self, xs: &[Tensor]) -> Vec<Tensor> {
        self.cache.clear();
        let batch = if xs.is_empty() { 0 } else { xs[0].shape()[0] };
        let mut h = Tensor::zeros(&[batch, self.h]);
        let mut c = Tensor::zeros(&[batch, self.h]);
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.shape(), &[batch, self.d], "LSTM step input shape");
            let mut acts: Vec<Tensor> = Vec::with_capacity(4);
            for g in &self.gates {
                let mut z = g.wx.apply(x);
                let zh = g.wh.apply(&h);
                z.axpy(1.0, &zh).expect("gate shapes");
                crate::linear::add_bias_rows(&mut z, &g.bias.value);
                acts.push(z);
            }
            let i = acts[0].map(sigmoid);
            let f = acts[1].map(sigmoid);
            let g_ = acts[2].map(f32::tanh);
            let o = acts[3].map(sigmoid);
            let new_c = f
                .hadamard(&c)
                .expect("shape")
                .zip_map(&i.hadamard(&g_).expect("shape"), |a, b| a + b)
                .expect("shape");
            let tanh_c = new_c.map(f32::tanh);
            let new_h = o.hadamard(&tanh_c).expect("shape");
            // Move the previous state into the cache and the new state into
            // the recurrence in one swap — no h/c clones per step.
            self.cache.push(StepCache {
                x: x.clone(),
                h_prev: std::mem::replace(&mut h, new_h.clone()),
                c_prev: std::mem::replace(&mut c, new_c),
                gates: [i, f, g_, o],
                tanh_c,
            });
            out.push(new_h);
        }
        out
    }

    /// Full BPTT given `∂L/∂h_t` for every step; accumulates parameter
    /// gradients and returns `∂L/∂x_t` per step.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_seq` or with a mismatched number of
    /// step gradients.
    pub fn backward_seq(&mut self, dhs: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(dhs.len(), self.cache.len(), "gradient steps != forward steps");
        let t_len = dhs.len();
        if t_len == 0 {
            return Vec::new();
        }
        let batch = dhs[0].shape()[0];
        let mut dxs = vec![Tensor::default(); t_len];
        let mut dh_rec = Tensor::zeros(&[batch, self.h]);
        let mut dc_next = Tensor::zeros(&[batch, self.h]);
        for t in (0..t_len).rev() {
            let cache = &self.cache[t];
            let mut dh = dhs[t].clone();
            dh.axpy(1.0, &dh_rec).expect("shape");
            let [i, f, g_, o] = &cache.gates;
            // dc = dh ⊙ o ⊙ (1 − tanh²c) + dc_next
            let mut dc = dh
                .hadamard(o)
                .expect("shape")
                .zip_map(&cache.tanh_c, |a, tc| a * (1.0 - tc * tc))
                .expect("shape");
            dc.axpy(1.0, &dc_next).expect("shape");
            // Pre-activation gate gradients.
            let dz_o = dh
                .hadamard(&cache.tanh_c)
                .expect("shape")
                .zip_map(o, |a, ov| a * ov * (1.0 - ov))
                .expect("shape");
            let dz_f = dc
                .hadamard(&cache.c_prev)
                .expect("shape")
                .zip_map(f, |a, fv| a * fv * (1.0 - fv))
                .expect("shape");
            let dz_i = dc
                .hadamard(g_)
                .expect("shape")
                .zip_map(i, |a, iv| a * iv * (1.0 - iv))
                .expect("shape");
            let dz_g = dc
                .hadamard(i)
                .expect("shape")
                .zip_map(g_, |a, gv| a * (1.0 - gv * gv))
                .expect("shape");
            dc_next = dc.hadamard(f).expect("shape");

            let mut dx = Tensor::zeros(&[batch, self.d]);
            let mut dh_prev = Tensor::zeros(&[batch, self.h]);
            for (gi, dz) in [&dz_i, &dz_f, &dz_g, &dz_o].into_iter().enumerate() {
                let gate = &mut self.gates[gi];
                crate::linear::accumulate_bias_grad(&mut gate.bias.grad, dz);
                dx.axpy(1.0, &gate.wx.backward(&cache.x, dz)).expect("shape");
                dh_prev.axpy(1.0, &gate.wh.backward(&cache.h_prev, dz)).expect("shape");
            }
            dxs[t] = dx;
            dh_rec = dh_prev;
        }
        dxs
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_tensor::stats::rel_error;

    #[test]
    fn matop_dense_vs_lowrank_full_rank_equivalence() {
        let w = Tensor::randn(&[4, 6], 1.0, 1);
        let f = puffer_tensor::svd::truncated_svd(&w, 4).unwrap();
        let (u, vt) = f.split_balanced();
        let dense = MatOp::Dense(Param::new("w", w));
        let lr = MatOp::from_factors("w", u, vt);
        let x = Tensor::randn(&[3, 6], 1.0, 2);
        assert!(rel_error(&dense.apply(&x), &lr.apply(&x)) < 1e-3);
    }

    #[test]
    fn matop_backward_gradcheck() {
        for op in [&mut MatOp::dense("w", 3, 4, 0.5, 1), &mut MatOp::low_rank("w", 3, 4, 2, 0.5, 2)]
        {
            let x = Tensor::randn(&[2, 4], 1.0, 3);
            let kappa = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, 4);
            let dx = op.backward(&x, &kappa);
            let eps = 1e-2;
            let mut xp = x.clone();
            for idx in 0..x.len() {
                let orig = xp.as_slice()[idx];
                xp.as_mut_slice()[idx] = orig + eps;
                let fp = op.apply(&xp).dot(&kappa).unwrap();
                xp.as_mut_slice()[idx] = orig - eps;
                let fm = op.apply(&xp).dot(&kappa).unwrap();
                xp.as_mut_slice()[idx] = orig;
                let num = (fp - fm) / (2.0 * eps);
                assert!((num - dx.as_slice()[idx]).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn lstm_forward_shapes_and_state_flow() {
        let mut lstm = LstmLayer::new(5, 7, GateRank::Full, 1).unwrap();
        let xs: Vec<Tensor> = (0..4).map(|t| Tensor::randn(&[2, 5], 1.0, t)).collect();
        let hs = lstm.forward_seq(&xs);
        assert_eq!(hs.len(), 4);
        assert!(hs.iter().all(|h| h.shape() == [2, 7]));
        // Hidden state evolves: consecutive steps differ.
        assert!(rel_error(&hs[0], &hs[1]) > 1e-4);
    }

    #[test]
    fn lstm_bptt_gradcheck_input() {
        let mut lstm = LstmLayer::new(3, 4, GateRank::Full, 2).unwrap();
        let xs: Vec<Tensor> = (0..3).map(|t| Tensor::randn(&[2, 3], 0.5, 10 + t)).collect();
        let hs = lstm.forward_seq(&xs);
        let dhs: Vec<Tensor> =
            hs.iter().map(|h| Tensor::rand_uniform(h.shape(), -1.0, 1.0, 99)).collect();
        let _ = lstm.forward_seq(&xs);
        let dxs = lstm.backward_seq(&dhs);

        let eps = 1e-2;
        let objective = |lstm: &mut LstmLayer, xs: &[Tensor]| -> f32 {
            let hs = lstm.forward_seq(xs);
            hs.iter().zip(&dhs).map(|(h, k)| h.dot(k).unwrap()).sum()
        };
        for t in 0..3 {
            for idx in 0..xs[t].len() {
                let mut xs2: Vec<Tensor> = xs.to_vec();
                xs2[t].as_mut_slice()[idx] += eps;
                let fp = objective(&mut lstm, &xs2);
                xs2[t].as_mut_slice()[idx] -= 2.0 * eps;
                let fm = objective(&mut lstm, &xs2);
                let num = (fp - fm) / (2.0 * eps);
                let ana = dxs[t].as_slice()[idx];
                assert!((num - ana).abs() < 2e-2, "t={t} idx={idx}: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn lstm_bptt_gradcheck_params_low_rank() {
        let mut lstm = LstmLayer::new(3, 3, GateRank::LowRank(2), 3).unwrap();
        let xs: Vec<Tensor> = (0..2).map(|t| Tensor::randn(&[1, 3], 0.5, 20 + t)).collect();
        let hs = lstm.forward_seq(&xs);
        let dhs: Vec<Tensor> =
            hs.iter().map(|h| Tensor::rand_uniform(h.shape(), -1.0, 1.0, 98)).collect();
        lstm.zero_grad();
        let _ = lstm.forward_seq(&xs);
        let _ = lstm.backward_seq(&dhs);
        let analytic: Vec<Tensor> = lstm.params().iter().map(|p| p.grad.clone()).collect();

        let eps = 1e-2;
        for (pi, analytic_p) in analytic.iter().enumerate() {
            for idx in 0..analytic_p.len().min(6) {
                let orig = lstm.params()[pi].value.as_slice()[idx];
                lstm.params_mut()[pi].value.as_mut_slice()[idx] = orig + eps;
                let fp: f32 =
                    lstm.forward_seq(&xs).iter().zip(&dhs).map(|(h, k)| h.dot(k).unwrap()).sum();
                lstm.params_mut()[pi].value.as_mut_slice()[idx] = orig - eps;
                let fm: f32 =
                    lstm.forward_seq(&xs).iter().zip(&dhs).map(|(h, k)| h.dot(k).unwrap()).sum();
                lstm.params_mut()[pi].value.as_mut_slice()[idx] = orig;
                let num = (fp - fm) / (2.0 * eps);
                let ana = analytic_p.as_slice()[idx];
                assert!((num - ana).abs() < 2e-2, "param {pi} idx {idx}: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn param_count_matches_table1() {
        let (d, h, r) = (20usize, 16usize, 4usize);
        let full = LstmLayer::new(d, h, GateRank::Full, 1).unwrap();
        assert_eq!(full.param_count(), 4 * (d * h + h * h) + 4 * h);
        let lr = LstmLayer::new(d, h, GateRank::LowRank(r), 1).unwrap();
        assert_eq!(lr.param_count(), 4 * d * r + 12 * h * r + 4 * h);
    }

    #[test]
    fn constructor_validation() {
        assert!(LstmLayer::new(0, 4, GateRank::Full, 1).is_err());
        assert!(LstmLayer::new(4, 4, GateRank::LowRank(5), 1).is_err());
        assert!(LstmLayer::new(4, 4, GateRank::LowRank(0), 1).is_err());
    }

    #[test]
    fn empty_sequence() {
        let mut lstm = LstmLayer::new(2, 2, GateRank::Full, 1).unwrap();
        assert!(lstm.forward_seq(&[]).is_empty());
        assert!(lstm.backward_seq(&[]).is_empty());
    }
}
