//! Satellite coverage for elastic-membership observability: the trainer's
//! join / leave / crash / catch-up transitions are emitted as instant
//! trace events plus `membership_event` JSONL rows, and both must carry
//! full worker + step + epoch attribution end to end — through the
//! in-memory sink, the Chrome trace exporter, and the JSONL metrics file.
//!
//! `puffer-probe` is upstream of `puffer-dist`, so this test replays the
//! exact category/name/row-type literals the trainer uses
//! (`puffer_dist::membership::{PROBE_CATEGORY, EV_*, ROW_TYPE}`); the
//! dist-side membership suite asserts the trainer actually emits them.

use puffer_probe as probe;
use puffer_probe::{ArgValue, ProbeConfig};

const CATEGORY: &str = "membership";
const ROW_TYPE: &str = "membership_event";

/// `(event name, kind, worker, step, epoch)` — one of each transition the
/// trainer can emit, in a plausible churn order.
const TRANSITIONS: &[(&str, &str, usize, usize, u64)] = &[
    ("member_crashed", "crash", 3, 4, 1),
    ("member_joined", "join", 4, 6, 2),
    ("catch_up", "catch_up", 4, 6, 2),
    ("member_left", "leave", 0, 7, 3),
    ("member_joined", "rejoin", 3, 8, 4),
];

fn emit_all() {
    for &(name, kind, worker, step, epoch) in TRANSITIONS {
        probe::event(
            CATEGORY,
            name,
            vec![
                ("worker", worker.into()),
                ("step", step.into()),
                ("epoch", epoch.into()),
                ("kind", kind.into()),
            ],
        );
        probe::metrics_row(
            ROW_TYPE,
            &[
                ("kind", kind.into()),
                ("worker", worker.into()),
                ("step", step.into()),
                ("epoch", epoch.into()),
            ],
        );
    }
}

#[test]
fn membership_events_round_trip_with_full_attribution() {
    probe::reset();
    probe::configure(ProbeConfig::in_memory());
    emit_all();

    // In-memory trace events: one instant record per transition, each with
    // worker/step/epoch/kind args intact.
    let events: Vec<_> =
        probe::take_events().into_iter().filter(|e| e.cat == CATEGORY && e.phase == 'i').collect();
    assert_eq!(events.len(), TRANSITIONS.len());
    for (ev, &(name, kind, worker, step, epoch)) in events.iter().zip(TRANSITIONS) {
        assert_eq!(ev.name, name);
        let arg = |k: &str| ev.args.iter().find(|(n, _)| *n == k).map(|(_, v)| v.clone());
        assert_eq!(arg("worker"), Some(ArgValue::U64(worker as u64)), "{name}");
        assert_eq!(arg("step"), Some(ArgValue::U64(step as u64)), "{name}");
        assert_eq!(arg("epoch"), Some(ArgValue::U64(epoch)), "{name}");
        assert_eq!(arg("kind"), Some(ArgValue::Str(kind.into())), "{name}");
    }

    // The Chrome exporter must accept the records unchanged.
    let trace = probe::render_chrome_trace(&events);
    let summary = probe::validate_chrome_trace(&trace).unwrap();
    assert_eq!(summary.instants, TRANSITIONS.len());

    // JSONL rows: every transition parses back with the same attribution.
    let rows = probe::metrics_rows();
    assert_eq!(rows.len(), TRANSITIONS.len());
    for (row, &(_, kind, worker, step, epoch)) in rows.iter().zip(TRANSITIONS) {
        let parsed = probe::json::parse(row).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some(ROW_TYPE));
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some(kind));
        assert_eq!(parsed.get("worker").unwrap().as_num(), Some(worker as f64));
        assert_eq!(parsed.get("step").unwrap().as_num(), Some(step as f64));
        assert_eq!(parsed.get("epoch").unwrap().as_num(), Some(epoch as f64));
        assert!(parsed.get("t_us").is_some(), "rows must be timestamped");
    }
    probe::reset();
}

#[test]
fn membership_rows_survive_the_jsonl_file_exporter() {
    let dir = std::env::temp_dir().join(format!("puffer_probe_member_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("membership.jsonl");

    probe::reset();
    probe::configure(ProbeConfig {
        metrics_path: Some(metrics_path.clone()),
        ..ProbeConfig::in_memory()
    });
    emit_all();
    let report = probe::flush().unwrap();
    assert_eq!(report.metrics_rows, TRANSITIONS.len());

    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // One row per transition plus the trailing counters summary.
    assert_eq!(lines.len(), TRANSITIONS.len() + 1);
    for (line, &(_, kind, worker, _, epoch)) in lines.iter().zip(TRANSITIONS) {
        let parsed = probe::json::parse(line).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some(ROW_TYPE));
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some(kind));
        assert_eq!(parsed.get("worker").unwrap().as_num(), Some(worker as f64));
        assert_eq!(parsed.get("epoch").unwrap().as_num(), Some(epoch as f64));
    }
    let last = probe::json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("type").unwrap().as_str(), Some("counters"));

    probe::reset();
    let _ = std::fs::remove_dir_all(&dir);
}
