//! An executable ring allreduce — the algorithm whose closed-form cost the
//! [`crate::cost`] model encodes (Thakur, Rabenseifner & Gropp 2005).
//!
//! The buffer is split into `p` chunks. Phase 1 (reduce-scatter): for
//! `p − 1` steps, node `i` sends one chunk to node `i+1` and adds the chunk
//! it receives into its buffer, so after the phase each node owns the fully
//! reduced version of one chunk. Phase 2 (allgather): the owned chunks
//! circulate for another `p − 1` steps. Each step moves `n/p` elements per
//! node, giving the familiar `2(p−1)·α + 2·((p−1)/p)·n·β` time.
//!
//! [`ring_allreduce`] executes the data movement for real (in memory),
//! which both documents the algorithm and lets tests verify that the cost
//! model's step count matches an actual execution trace exactly.

use crate::cost::ClusterProfile;
use std::time::Duration;

/// The execution trace of one ring allreduce: per-step message sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingTrace {
    /// Bytes each node sent in each step (all nodes send concurrently).
    pub step_bytes: Vec<usize>,
}

impl RingTrace {
    /// Total steps (should be `2(p−1)`).
    pub fn steps(&self) -> usize {
        self.step_bytes.len()
    }

    /// Evaluates the trace under a cluster profile: each step costs
    /// `α + bytes·β` (all nodes transfer concurrently around the ring).
    pub fn time(&self, profile: &ClusterProfile) -> Duration {
        let secs: f64 =
            self.step_bytes.iter().map(|&b| profile.alpha + b as f64 * profile.beta).sum();
        Duration::from_secs_f64(secs)
    }
}

/// Runs a real ring allreduce over per-node buffers (all must have equal
/// length). On return every buffer holds the element-wise **sum** across
/// nodes; the returned trace records the per-step traffic.
///
/// # Panics
///
/// Panics if buffers are empty or have mismatched lengths.
pub fn ring_allreduce(buffers: &mut [Vec<f32>]) -> RingTrace {
    let p = buffers.len();
    assert!(p > 0, "need at least one node");
    let n = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == n), "buffer lengths must match");
    if p == 1 || n == 0 {
        return RingTrace { step_bytes: Vec::new() };
    }

    // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
    let starts: Vec<usize> = (0..=p).map(|c| c * n / p).collect();
    let chunk = |c: usize| (starts[c], starts[c + 1]);
    let mut trace = Vec::with_capacity(2 * (p - 1));

    // Phase 1: reduce-scatter. In step s, node i sends chunk (i − s) mod p
    // to node i+1, which accumulates it.
    for s in 0..p - 1 {
        let mut step_bytes = 0usize;
        // Gather the outgoing chunks first so all sends happen "concurrently".
        let outgoing: Vec<(usize, usize, Vec<f32>)> = (0..p)
            .map(|i| {
                let c = (i + p - s) % p;
                let (lo, hi) = chunk(c);
                (i, c, buffers[i][lo..hi].to_vec())
            })
            .collect();
        for (i, c, data) in outgoing {
            let dst = (i + 1) % p;
            let (lo, _) = chunk(c);
            for (k, v) in data.iter().enumerate() {
                buffers[dst][lo + k] += v;
            }
            step_bytes = step_bytes.max(data.len() * 4);
        }
        trace.push(step_bytes);
    }

    // Phase 2: allgather. Node i now owns the reduced chunk (i + 1) mod p;
    // circulate ownership for p − 1 steps.
    for s in 0..p - 1 {
        let mut step_bytes = 0usize;
        let outgoing: Vec<(usize, usize, Vec<f32>)> = (0..p)
            .map(|i| {
                let c = (i + 1 + p - s) % p;
                let (lo, hi) = chunk(c);
                (i, c, buffers[i][lo..hi].to_vec())
            })
            .collect();
        for (i, c, data) in outgoing {
            let dst = (i + 1) % p;
            let (lo, _) = chunk(c);
            buffers[dst][lo..lo + data.len()].copy_from_slice(&data);
            step_bytes = step_bytes.max(data.len() * 4);
        }
        trace.push(step_bytes);
    }
    RingTrace { step_bytes: trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_buffers(p: usize, n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let buffers: Vec<Vec<f32>> = (0..p)
            .map(|i| (0..n).map(|k| ((i * 31 + k * 7) % 13) as f32 - 6.0).collect())
            .collect();
        let mut expected = vec![0.0f32; n];
        for b in &buffers {
            for (e, v) in expected.iter_mut().zip(b) {
                *e += v;
            }
        }
        (buffers, expected)
    }

    #[test]
    fn computes_exact_sum() {
        for (p, n) in [(2usize, 8usize), (3, 10), (4, 16), (5, 7), (8, 64), (7, 5)] {
            let (mut buffers, expected) = random_buffers(p, n);
            let _ = ring_allreduce(&mut buffers);
            for (i, b) in buffers.iter().enumerate() {
                assert_eq!(b, &expected, "node {i} of p={p}, n={n}");
            }
        }
    }

    #[test]
    fn step_count_is_2p_minus_2() {
        let (mut buffers, _) = random_buffers(6, 24);
        let trace = ring_allreduce(&mut buffers);
        assert_eq!(trace.steps(), 2 * (6 - 1));
    }

    #[test]
    fn trace_time_matches_closed_form() {
        // With n divisible by p, every step moves exactly n/p elements and
        // the trace time equals the cost model's allreduce formula.
        let p = 8;
        let n = 8 * 128;
        let (mut buffers, _) = random_buffers(p, n);
        let trace = ring_allreduce(&mut buffers);
        let profile = ClusterProfile::p3_like(p);
        let traced = trace.time(&profile).as_secs_f64();
        let closed = profile.allreduce(n * 4).as_secs_f64();
        assert!((traced - closed).abs() < closed * 1e-6, "traced {traced} vs closed-form {closed}");
    }

    #[test]
    fn uneven_chunks_still_sum_correctly() {
        // n not divisible by p exercises the boundary arithmetic.
        let (mut buffers, expected) = random_buffers(4, 11);
        let trace = ring_allreduce(&mut buffers);
        for b in &buffers {
            assert_eq!(b, &expected);
        }
        assert_eq!(trace.steps(), 6);
    }

    #[test]
    fn more_nodes_than_elements() {
        // p > n leaves some chunks zero-width (consecutive chunk starts
        // coincide); the sums must stay exact and the step count stays
        // 2(p−1), with no step moving more than one element per node.
        for (p, n) in [(6usize, 3usize), (8, 1), (5, 2)] {
            let (mut buffers, expected) = random_buffers(p, n);
            let trace = ring_allreduce(&mut buffers);
            for b in &buffers {
                assert_eq!(b, &expected, "p={p} n={n}");
            }
            assert_eq!(trace.steps(), 2 * (p - 1), "p={p} n={n}");
            assert!(trace.step_bytes.iter().all(|&b| b <= 4), "p={p} n={n}: {trace:?}");
        }
    }

    #[test]
    fn single_node_is_identity() {
        let mut buffers = vec![vec![1.0, 2.0, 3.0]];
        let trace = ring_allreduce(&mut buffers);
        assert_eq!(trace.steps(), 0);
        assert_eq!(buffers[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let mut buffers = vec![vec![1.0], vec![1.0, 2.0]];
        let _ = ring_allreduce(&mut buffers);
    }
}
