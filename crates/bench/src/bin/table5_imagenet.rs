//! **Table 5**: ResNet-50 and WideResNet-50-2 on ImageNet(-lite):
//! parameters, accuracy (top-1/top-5), MACs, FP32 + emulated AMP.
//!
//! Full-scale parameter columns come from the spec ledgers (vanilla
//! 25,557,032 / Pufferfish 15,202,344 for ResNet-50 — the paper's hybrid
//! count reproduced exactly; compression ratios 1.68× / 1.72× as in the
//! paper's limitations section). Accuracies come from bench-scale training
//! on ImageNet-lite, where the claim is accuracy parity.

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, ratio, Table};
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::spec::{resnet50_imagenet, wide_resnet50_2_imagenet, SpecVariant};
use puffer_nn::loss::top_k_accuracy;
use puffer_nn::{Layer, Mode};
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(5, 14);
    let warmup = scale.pick(2, 4);
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;
    println!("== Table 5: ImageNet-lite params / top-1 / top-5 / MACs (epochs={epochs}) ==\n");

    let mut t = Table::new(vec![
        "Model Archs.",
        "# Params (full-scale)",
        "Top-1 (synthetic)",
        "Top-5 (synthetic)",
        "MACs (G, full-scale)",
    ]);

    for (arch, wide) in [("ResNet-50", false), ("WideResNet-50-2", true)] {
        let (spec_v, spec_p) = if wide {
            (
                wide_resnet50_2_imagenet(SpecVariant::Vanilla),
                wide_resnet50_2_imagenet(SpecVariant::Pufferfish),
            )
        } else {
            (resnet50_imagenet(SpecVariant::Vanilla), resnet50_imagenet(SpecVariant::Pufferfish))
        };
        for amp in [false, true] {
            // AMP rows only for ResNet-50, as in the paper.
            if amp && wide {
                continue;
            }
            let tag = if amp { "AMP" } else { "FP32" };
            for pufferfish in [false, true] {
                let mut cfg =
                    TrainConfig::imagenet_small(epochs, if pufferfish { warmup } else { 0 });
                cfg.amp = amp;
                let model = if wide {
                    setups::wide_resnet50(classes, 1)
                } else {
                    setups::resnet50(classes, 1)
                };
                let plan = if pufferfish {
                    ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet50_paper())
                } else {
                    ModelPlan::None
                };
                let mut out = train(model, plan, &data, &cfg).expect("training");
                // Top-5 on the test split.
                let mut top5_sum = 0.0f64;
                let mut n = 0usize;
                for (images, labels) in data.test_batches(32) {
                    let logits = out.model.forward(&images, Mode::Eval);
                    top5_sum += top_k_accuracy(&logits, &labels, 5) as f64 * labels.len() as f64;
                    n += labels.len();
                }
                let top5 = (top5_sum / n.max(1) as f64) as f32;
                let top1 = out.report.final_test_accuracy();
                let spec = if pufferfish { &spec_p } else { &spec_v };
                let label = if pufferfish { "Pufferfish" } else { "Vanilla" };
                t.row(vec![
                    format!("{label} {arch} ({tag})"),
                    commas(spec.params()),
                    format!("{:.2}%", top1 * 100.0),
                    format!("{:.2}%", top5 * 100.0),
                    if amp { "N/A".into() } else { format!("{:.2}", spec.macs() as f64 / 1e9) },
                ]);
                record_result(
                    "table5_imagenet",
                    &format!("{label} {arch} {tag}: top1 {:.4} top5 {top5:.4}", top1),
                );
            }
        }
        println!(
            "{arch}: full-scale compression ratio = {}",
            ratio(spec_v.params() as f64, spec_p.params() as f64)
        );
    }
    t.print();
    println!("\npaper shape: Pufferfish ≈ vanilla accuracy at 1.68x (ResNet-50) / 1.72x");
    println!("(WideResNet-50-2) fewer parameters; stability under AMP.");
}
