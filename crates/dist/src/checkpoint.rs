//! Checkpoint/resume for data-parallel training.
//!
//! A [`DistCheckpoint`] freezes everything the synchronous-SGD state
//! machine needs to continue **bitwise identically**: parameter values,
//! SGD momentum, and the gradient compressor's cross-round state (PowerSGD
//! error-feedback memory and warm-started query matrices — Vogels et al.
//! stress that error feedback must survive restarts, or the compression
//! bias it corrects comes back). Checkpoints are written by the aggregator
//! every `K` steps (see [`CheckpointPolicy`]) in the `PUFT` tensor
//! container, so they share the format of model checkpoints.
//!
//! A checkpoint taken after step `s` records `step = s + 1` — the index of
//! the first batch a resumed run must process.

use crate::error::{DistError, DistResult};
use puffer_tensor::io::{load_tensors, save_tensors};
use puffer_tensor::Tensor;
use std::path::{Path, PathBuf};

const META_NAME: &str = "dist.meta";
const MEMBERS_NAME: &str = "dist.members";
const PARAM_PREFIX: &str = "param.";
const VEL_PREFIX: &str = "vel.";
const BUF_PREFIX: &str = "buf.";
const COMP_PREFIX: &str = "comp.";

/// When and where the trainer writes checkpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint every `every` steps (`0` disables checkpointing).
    pub every: usize,
    /// Directory receiving `dist_ckpt_<step>.puft` files.
    pub dir: Option<PathBuf>,
}

impl CheckpointPolicy {
    /// No checkpointing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Checkpoint every `every` steps into `dir`.
    pub fn every<P: Into<PathBuf>>(every: usize, dir: P) -> Self {
        CheckpointPolicy { every, dir: Some(dir.into()) }
    }

    /// Whether the policy actually checkpoints.
    pub fn is_enabled(&self) -> bool {
        self.every > 0 && self.dir.is_some()
    }

    /// The file path for the checkpoint whose first unprocessed step is
    /// `step`.
    pub fn path_for(&self, step: usize) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("dist_ckpt_{step:06}.puft")))
    }
}

/// Frozen state of a data-parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistCheckpoint {
    /// Index of the first global batch a resumed run must process.
    pub step: usize,
    /// Parameter values (identical on every replica).
    pub params: Vec<Tensor>,
    /// SGD momentum buffers, positionally matching `params` (empty if the
    /// checkpoint was taken before the first update).
    pub velocity: Vec<Tensor>,
    /// Non-trainable model buffers (BatchNorm running statistics).
    pub buffers: Vec<Tensor>,
    /// The compressor's cross-round state
    /// ([`puffer_compress::GradCompressor::state_snapshot`]).
    pub compressor: Vec<(String, Tensor)>,
    /// Active member ids at `step` (ascending). Empty means the
    /// checkpoint predates elastic membership (or was taken by a
    /// static-fleet run): a resumed run then activates all
    /// `DistConfig::workers` ids, the pre-elastic behavior.
    pub members: Vec<usize>,
    /// Membership epoch at `step` (0 for legacy checkpoints); a resumed
    /// run continues the epoch sequence from here.
    pub epoch: u64,
}

impl DistCheckpoint {
    /// Serializes the checkpoint to a `PUFT` file.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Checkpoint`] on I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> DistResult<()> {
        // Steps, counts, and the epoch are stored as f32 (exact below
        // 2^24 — far beyond any run this trainer simulates).
        let meta = Tensor::from_vec(
            vec![
                self.step as f32,
                self.params.len() as f32,
                self.velocity.len() as f32,
                self.buffers.len() as f32,
                self.epoch as f32,
                self.members.len() as f32,
            ],
            &[6],
        )
        .map_err(|e| DistError::Checkpoint { reason: e.to_string() })?;
        let members_t = if self.members.is_empty() {
            None
        } else {
            let ids: Vec<f32> = self.members.iter().map(|&w| w as f32).collect();
            let n = ids.len();
            Some(
                Tensor::from_vec(ids, &[n])
                    .map_err(|e| DistError::Checkpoint { reason: e.to_string() })?,
            )
        };
        let mut entries: Vec<(String, &Tensor)> = vec![(META_NAME.to_string(), &meta)];
        if let Some(t) = &members_t {
            entries.push((MEMBERS_NAME.to_string(), t));
        }
        for (i, t) in self.params.iter().enumerate() {
            entries.push((format!("{PARAM_PREFIX}{i:04}"), t));
        }
        for (i, t) in self.velocity.iter().enumerate() {
            entries.push((format!("{VEL_PREFIX}{i:04}"), t));
        }
        for (i, t) in self.buffers.iter().enumerate() {
            entries.push((format!("{BUF_PREFIX}{i:04}"), t));
        }
        for (name, t) in &self.compressor {
            entries.push((format!("{COMP_PREFIX}{name}"), t));
        }
        save_tensors(path, &entries).map_err(|e| DistError::Checkpoint { reason: e.to_string() })
    }

    /// Loads a checkpoint from a `PUFT` file.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Checkpoint`] on I/O failure or a malformed
    /// container.
    pub fn load<P: AsRef<Path>>(path: P) -> DistResult<Self> {
        let entries =
            load_tensors(path).map_err(|e| DistError::Checkpoint { reason: e.to_string() })?;
        let meta = entries
            .iter()
            .find(|(n, _)| n == META_NAME)
            .ok_or_else(|| DistError::Checkpoint { reason: "missing meta entry".into() })?;
        let m = meta.1.as_slice();
        // Legacy (pre-elastic) checkpoints carry a 4-entry meta tensor:
        // no epoch, no member list. They load as epoch 0 / empty members,
        // which the trainer interprets as "all configured workers".
        if m.len() != 4 && m.len() != 6 {
            return Err(DistError::Checkpoint { reason: "malformed meta entry".into() });
        }
        let (step, n_params, n_vel, n_buf) = // lint:allow(dist-panic-reachability) — len is 4 or 6, checked above
            (m[0] as usize, m[1] as usize, m[2] as usize, m[3] as usize);
        let (epoch, n_members) = // lint:allow(dist-panic-reachability) — guarded by the len == 6 test
            if m.len() == 6 { (m[4] as u64, m[5] as usize) } else { (0, 0) };
        let mut params = vec![None; n_params];
        let mut velocity = vec![None; n_vel];
        let mut buffers = vec![None; n_buf];
        let mut compressor = Vec::new();
        let mut members: Vec<usize> = Vec::new();
        for (name, t) in entries {
            if name == MEMBERS_NAME {
                members = t.as_slice().iter().map(|&v| v as usize).collect();
            } else if let Some(i) = parse_index(&name, PARAM_PREFIX) {
                if let Some(slot) = params.get_mut(i) {
                    *slot = Some(t);
                }
            } else if let Some(i) = parse_index(&name, VEL_PREFIX) {
                if let Some(slot) = velocity.get_mut(i) {
                    *slot = Some(t);
                }
            } else if let Some(i) = parse_index(&name, BUF_PREFIX) {
                if let Some(slot) = buffers.get_mut(i) {
                    *slot = Some(t);
                }
            } else if let Some(rest) = name.strip_prefix(COMP_PREFIX) {
                compressor.push((rest.to_string(), t));
            }
        }
        let params: Option<Vec<Tensor>> = params.into_iter().collect();
        let velocity: Option<Vec<Tensor>> = velocity.into_iter().collect();
        let buffers: Option<Vec<Tensor>> = buffers.into_iter().collect();
        if members.len() != n_members {
            return Err(DistError::Checkpoint { reason: "malformed member list".into() });
        }
        match (params, velocity, buffers) {
            (Some(params), Some(velocity), Some(buffers)) => {
                Ok(DistCheckpoint { step, params, velocity, buffers, compressor, members, epoch })
            }
            _ => Err(DistError::Checkpoint { reason: "missing param/velocity entries".into() }),
        }
    }
}

fn parse_index(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix).and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistCheckpoint {
        DistCheckpoint {
            step: 12,
            params: vec![Tensor::randn(&[3, 4], 1.0, 1), Tensor::randn(&[4], 1.0, 2)],
            velocity: vec![Tensor::randn(&[3, 4], 0.1, 3), Tensor::randn(&[4], 0.1, 4)],
            buffers: vec![Tensor::randn(&[4], 1.0, 7)],
            compressor: vec![
                ("q.0000".into(), Tensor::randn(&[4, 2], 1.0, 5)),
                ("m.00.0000".into(), Tensor::randn(&[3, 4], 1.0, 6)),
            ],
            members: vec![0, 2, 5],
            epoch: 4,
        }
    }

    #[test]
    fn round_trip_is_bitwise() {
        let ck = sample();
        let path = std::env::temp_dir().join("puffer_dist_ckpt_test.puft");
        ck.save(&path).unwrap();
        let back = DistCheckpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_velocity_and_compressor_allowed() {
        let ck = DistCheckpoint {
            step: 0,
            params: vec![Tensor::ones(&[2])],
            velocity: Vec::new(),
            buffers: Vec::new(),
            compressor: Vec::new(),
            members: Vec::new(),
            epoch: 0,
        };
        let path = std::env::temp_dir().join("puffer_dist_ckpt_empty.puft");
        ck.save(&path).unwrap();
        assert_eq!(DistCheckpoint::load(&path).unwrap(), ck);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn legacy_four_entry_meta_loads_with_empty_membership() {
        // A pre-elastic checkpoint: 4-long meta, no member entry. It must
        // load as epoch 0 / empty members (= "all configured workers").
        use puffer_tensor::io::save_tensors;
        let meta = Tensor::from_vec(vec![3.0, 1.0, 0.0, 0.0], &[4]).unwrap();
        let p = Tensor::randn(&[2, 2], 1.0, 8);
        let path = std::env::temp_dir().join("puffer_dist_ckpt_legacy.puft");
        save_tensors(&path, &[("dist.meta".to_string(), &meta), ("param.0000".to_string(), &p)])
            .unwrap();
        let ck = DistCheckpoint::load(&path).unwrap();
        assert_eq!(ck.step, 3);
        assert_eq!(ck.params, vec![p]);
        assert!(ck.members.is_empty());
        assert_eq!(ck.epoch, 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = DistCheckpoint::load("/nonexistent/nope.puft").unwrap_err();
        assert!(matches!(err, DistError::Checkpoint { .. }));
    }

    #[test]
    fn policy_paths_and_enablement() {
        assert!(!CheckpointPolicy::disabled().is_enabled());
        let p = CheckpointPolicy::every(5, "/tmp/ckpts");
        assert!(p.is_enabled());
        assert_eq!(p.path_for(30).unwrap().file_name().unwrap(), "dist_ckpt_000030.puft");
    }
}
