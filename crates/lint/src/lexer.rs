//! A small but honest Rust lexer.
//!
//! The awk/grep lints this crate replaces were comment-blind and
//! string-blind: `".unwrap("` inside a string literal tripped them, and a
//! `panic!` inside a block comment did too. This lexer implements the full
//! token surface those rules need to be exact about:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string, byte-string, char and byte-char literals with escapes;
//! * raw strings (`r"…"`, `r#"…"#`, `br##"…"##`) with any hash depth;
//! * lifetimes (`'a`, `'static`) vs. char literals (`'a'`, `'\n'`);
//! * raw identifiers (`r#match`);
//! * numbers, including tuple-field chains (`x.0.unwrap()` still lexes
//!   `unwrap` as its own identifier token).
//!
//! Tokens carry 1-based line/column positions so diagnostics are
//! clickable. The lexer never fails: unknown bytes become one-character
//! punctuation tokens, and unterminated literals run to end of file.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String or byte-string literal, escaped form (`"…"`, `b"…"`).
    StrLit,
    /// Raw (byte-)string literal (`r"…"`, `br##"…"##`).
    RawStrLit,
    /// Numeric literal (including suffix: `1_000u32`, `2.5e-3f64`).
    NumLit,
    /// A `//` comment, up to but excluding the newline.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
    /// One punctuation character (`.`, `(`, `{`, `!`, …).
    Punct(char),
}

/// One lexed token with its source text and position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text (comments include their delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source.
    pub off: usize,
}

impl Token {
    /// End line of the token (same as `line` except for multi-line
    /// comments and raw strings).
    pub fn end_line(&self) -> u32 {
        self.line + self.text.matches('\n').count() as u32
    }

    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Byte offset one past the token's last character. Source files are
    /// valid UTF-8, so the token text's byte length equals its source
    /// extent.
    pub fn end_off(&self) -> usize {
        self.off + self.text.len()
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count characters, not bytes: UTF-8 continuation bytes do not
            // advance the column.
            self.col += 1;
        }
        Some(b)
    }

    fn starts_ident(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
    }

    fn continues_ident(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
    }

    /// Consumes an escaped literal body up to an unescaped `close`.
    fn eat_escaped_until(&mut self, close: u8) {
        while let Some(b) = self.bump() {
            if b == b'\\' {
                self.bump();
            } else if b == close {
                break;
            }
        }
    }

    /// At `r`/`br` with `hashes` hashes already counted: consumes the raw
    /// string body through `"` + `hashes` hashes.
    fn eat_raw_string(&mut self, hashes: usize) {
        // Opening quote.
        self.bump();
        loop {
            match self.bump() {
                None => return,
                Some(b'"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn eat_number(&mut self) {
        // Integer part (covers 0x/0b/0o digits and `_` separators; hex
        // letters are alphanumeric).
        while self.peek(0).is_some_and(Self::continues_ident) {
            self.bump();
        }
        // Fractional part only when `.` is followed by a digit — `0..10`
        // and `x.0.unwrap()` must not swallow the dot.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(Self::continues_ident) {
                self.bump();
            }
        }
        // Signed exponent (`1e-3`): the `-`/`+` is part of the number only
        // right after `e`/`E` with digits following.
        if self.src[..self.pos].last().is_some_and(|b| matches!(b, b'e' | b'E'))
            && self.peek(0).is_some_and(|b| matches!(b, b'+' | b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            while self.peek(0).is_some_and(Self::continues_ident) {
                self.bump();
            }
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        // Skip whitespace.
        while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
            self.bump();
        }
        let b = self.peek(0)?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let kind = match b {
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match self.bump() {
                        None => break,
                        Some(b'/') if self.peek(0) == Some(b'*') => {
                            self.bump();
                            depth += 1;
                        }
                        Some(b'*') if self.peek(0) == Some(b'/') => {
                            self.bump();
                            depth -= 1;
                        }
                        Some(_) => {}
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                self.bump();
                self.eat_escaped_until(b'"');
                TokenKind::StrLit
            }
            b'r' | b'b' if self.raw_string_ahead() => {
                // r"…" / r#"…"# / b"…" / br##"…"## / rb is invalid but lexed
                // leniently as a raw string would be harmless.
                if b == b'b' && self.peek(1) == Some(b'"') {
                    self.bump(); // b
                    self.bump(); // "
                    self.eat_escaped_until(b'"');
                    TokenKind::StrLit
                } else {
                    self.bump(); // r or b
                    if self.peek(0) == Some(b'r') {
                        self.bump();
                    }
                    let mut hashes = 0usize;
                    while self.peek(0) == Some(b'#') {
                        self.bump();
                        hashes += 1;
                    }
                    self.eat_raw_string(hashes);
                    TokenKind::RawStrLit
                }
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.bump(); // b
                self.bump(); // '
                self.eat_escaped_until(b'\'');
                TokenKind::CharLit
            }
            b'\'' => {
                // Lifetime vs char literal. `'a'` / `'\n'` are chars;
                // `'a`, `'static` (no closing quote) are lifetimes.
                self.bump(); // '
                if self.peek(0) == Some(b'\\') {
                    self.eat_escaped_until(b'\'');
                    TokenKind::CharLit
                } else if self.peek(0).is_some_and(Self::starts_ident)
                    && self.peek(1) != Some(b'\'')
                {
                    while self.peek(0).is_some_and(Self::continues_ident) {
                        self.bump();
                    }
                    // A closing quote after the "ident" means this was a
                    // multi-byte char literal ('é'), not a lifetime.
                    if self.peek(0) == Some(b'\'') {
                        self.bump();
                        TokenKind::CharLit
                    } else {
                        TokenKind::Lifetime
                    }
                } else {
                    self.eat_escaped_until(b'\'');
                    TokenKind::CharLit
                }
            }
            b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(Self::starts_ident) => {
                // Raw identifier r#match.
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(Self::continues_ident) {
                    self.bump();
                }
                TokenKind::Ident
            }
            b if Self::starts_ident(b) => {
                while self.peek(0).is_some_and(Self::continues_ident) {
                    self.bump();
                }
                TokenKind::Ident
            }
            b if b.is_ascii_digit() => {
                self.eat_number();
                TokenKind::NumLit
            }
            other => {
                self.bump();
                TokenKind::Punct(other as char)
            }
        };
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        Some(Token { kind, text, line, col, off: start })
    }

    /// Is a raw/byte string opener at the cursor? (`r"`, `r#…#"`, `b"`,
    /// `br"`, `br#…#"`.)
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the leading r or b
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'r') {
            i = 2;
        } else if self.peek(0) == Some(b'b') {
            return self.peek(1) == Some(b'"');
        }
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        // `r#ident` falls through here (no quote after the hashes) and is
        // lexed as a raw identifier instead.
        self.peek(i) == Some(b'"')
    }
}

/// Lexes a whole source file into tokens (whitespace dropped, comments
/// kept).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(t) = lx.next_token() {
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn unwrap_inside_string_is_one_literal() {
        let toks = kinds(r#"let s = ".unwrap(";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::StrLit && t == "\".unwrap(\""));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn panic_inside_block_comment_is_comment() {
        let toks = kinds("/* panic!(\"x\") /* nested panic! */ still comment */ fn f() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("nested panic!"));
        assert_eq!(toks[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"panic!(".unwrap(")"#; let t = r"x";"###);
        let raws: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::RawStrLit).collect();
        assert_eq!(raws.len(), 2);
        assert!(raws[0].1.contains("panic!"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn byte_raw_string_and_byte_char() {
        let toks = kinds(r##"let a = br#"Instant"#; let b = b"x"; let c = b'\'';"##);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::RawStrLit && t.contains("Instant")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::StrLit && t == "b\"x\""));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::CharLit && t == "b'\\''"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let nl = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).map(|(_, t)| t).collect();
        assert_eq!(chars, ["'z'", "'\\n'"]);
    }

    #[test]
    fn tuple_field_unwrap_still_lexes_unwrap_ident() {
        let toks = kinds("let v = x.0.unwrap();");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::NumLit && t == "0"));
    }

    #[test]
    fn numbers_with_ranges_exponents_suffixes() {
        let toks = kinds("let a = 0..10; let b = 1e-3f64; let c = 1_000usize; let d = 2.5;");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::NumLit).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, ["0", "10", "1e-3f64", "1_000usize", "2.5"]);
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn positions_are_one_based_and_multiline() {
        let toks = lex("fn a() {}\n  let x = 1;");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let let_tok = toks.iter().find(|t| t.text == "let").unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 3));
    }

    #[test]
    fn byte_offsets_slice_back_to_token_text() {
        let src = "fn f(é: &str) { let s = \"münü\"; x.unwrap() } // trailing";
        for t in lex(src) {
            assert_eq!(&src[t.off..t.end_off()], t.text, "offset drift at {}:{}", t.line, t.col);
        }
    }

    #[test]
    fn multiline_block_comment_end_line() {
        let toks = lex("/* a\nb\nc */ fn f() {}");
        assert_eq!(toks[0].end_line(), 3);
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 3);
    }
}
