//! The lint's self-test: run the engine over `tests/fixtures/` — a
//! miniature workspace seeded with one violation per rule edge case — and
//! pin every finding to its exact `file:line`.
//!
//! This is also the regression suite for the two bugs the lexer-based
//! lint fixes over the old awk/grep gate:
//!
//! 1. **comment/string blindness** — decoy `".unwrap("` literals and
//!    `panic!` in comments must produce *zero* findings;
//! 2. **the first-`#[cfg(test)]` early exit** — code after an early test
//!    module must still be scanned (`after_test_module.rs`).

use puffer_lint::{run, Config};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every seeded violation: (file, line, rule).
const EXPECTED: &[(&str, u32, &str)] = &[
    ("crates/badcrate/Cargo.toml", 12, "dep-allowlist"),
    ("crates/badcrate/Cargo.toml", 13, "dep-allowlist"),
    ("crates/badcrate/Cargo.toml", 19, "dep-allowlist"),
    ("crates/dist/src/after_test_module.rs", 23, "dist-no-panic"),
    ("crates/dist/src/after_test_module.rs", 26, "dist-no-instant"),
    ("crates/dist/src/after_test_module.rs", 26, "no-wall-clock-outside-probe"),
    ("crates/dist/src/after_test_module.rs", 29, "dist-no-instant"),
    ("crates/dist/src/after_test_module.rs", 29, "no-wall-clock-outside-probe"),
    ("crates/dist/src/nested_tests.rs", 20, "dist-no-panic"),
    ("crates/dist/src/nested_tests.rs", 30, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 15, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 19, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 24, "dist-no-panic"),
    ("crates/dist/src/panics.rs", 28, "dist-no-panic"),
    ("crates/dist/src/pool_width.rs", 14, "dist-pool-width-via-membership"),
    ("crates/other/src/percentiles.rs", 7, "no-raw-percentile-math"),
    ("crates/other/src/wall_clock.rs", 3, "no-wall-clock-outside-probe"),
    ("crates/other/src/wall_clock.rs", 4, "no-wall-clock-outside-probe"),
    ("crates/other/src/wall_clock.rs", 7, "no-wall-clock-outside-probe"),
    ("crates/other/src/wall_clock.rs", 8, "no-wall-clock-outside-probe"),
    ("crates/tensor/src/matmul.rs", 17, "no-vec-alloc-in-kernel"),
    ("crates/tensor/src/matmul.rs", 21, "no-vec-alloc-in-kernel"),
    ("crates/tensor/src/simd.rs", 21, "simd-needs-feature-gate"),
    ("crates/tensor/src/simd_nodetect.rs", 7, "simd-needs-feature-gate"),
    ("crates/tensor/src/unsafe_blocks.rs", 7, "unsafe-needs-safety-comment"),
    ("crates/tensor/src/unsafe_blocks.rs", 18, "unsafe-needs-safety-comment"),
    ("crates/tensor/src/unsafe_blocks.rs", 30, "unsafe-needs-safety-comment"),
];

#[test]
fn every_seeded_violation_is_reported_at_its_exact_position() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let got: Vec<(String, u32, &str)> =
        report.diagnostics.iter().map(|d| (d.file.clone(), d.line, d.rule)).collect();
    let want: Vec<(String, u32, &str)> =
        EXPECTED.iter().map(|(f, l, r)| (f.to_string(), *l, *r)).collect();
    assert_eq!(got, want, "fixture findings diverged");
}

#[test]
fn decoys_produce_no_findings() {
    // panics.rs seeds its decoys (strings, comments, raw strings) in the
    // first 12 lines; nothing there may be flagged.
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.ends_with("panics.rs") && d.line < 14),
        "a decoy was flagged: {:?}",
        report.diagnostics
    );
    // And the probe fixture (raw Instant inside crates/probe) stays clean.
    assert!(!report.diagnostics.iter().any(|d| d.file.contains("probe")));
}

#[test]
fn awk_gate_regression_code_after_early_test_module_is_scanned() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let after: Vec<_> =
        report.diagnostics.iter().filter(|d| d.file.ends_with("after_test_module.rs")).collect();
    // The early test module ends on line 20; every finding sits below it —
    // exactly the region the awk gate never scanned.
    assert!(!after.is_empty(), "post-test-module code was not scanned");
    assert!(after.iter().all(|d| d.line > 20));
}

#[test]
fn pool_width_fixture_flags_only_the_unexempted_mutation() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    let pool: Vec<_> =
        report.diagnostics.iter().filter(|d| d.rule == "dist-pool-width-via-membership").collect();
    // pool_width.rs seeds one live violation plus three exempt call sites
    // (string decoy, lint:allow, #[cfg(test)]); membership.rs — the module
    // that owns the pool width — must stay clean.
    assert_eq!(pool.len(), 1, "{pool:?}");
    assert!(pool[0].file.ends_with("pool_width.rs"));
    assert!(!report.diagnostics.iter().any(|d| d.file.ends_with("membership.rs")));
}

#[test]
fn rules_filter_restricts_findings() {
    let mut config = Config::new(fixtures_root());
    config.rules = Some(BTreeSet::from(["dep-allowlist".to_string()]));
    let report = run(&config).expect("fixture scan");
    assert_eq!(report.diagnostics.len(), 3);
    assert!(report.diagnostics.iter().all(|d| d.rule == "dep-allowlist"));

    config.rules = Some(BTreeSet::from(["unsafe-needs-safety-comment".to_string()]));
    let report = run(&config).expect("fixture scan");
    assert_eq!(report.diagnostics.len(), 3);
    assert!(report.diagnostics.iter().all(|d| d.file.ends_with("unsafe_blocks.rs")));
}

#[test]
fn scan_counts_cover_the_fixture_tree() {
    let report = run(&Config::new(fixtures_root())).expect("fixture scan");
    assert_eq!(report.files_scanned, 13, "fixture .rs census changed");
    assert_eq!(report.manifests_scanned, 1, "fixture manifest census changed");
    assert!(!report.is_clean());
}
