//! Cross-crate property-based tests: the invariants that tie the
//! factorization machinery, compression, and packing together.

use proptest::prelude::*;
use pufferfish_repro::compress::exact_mean;
use pufferfish_repro::compress::none::NoCompression;
use pufferfish_repro::compress::pack::{pack, unpack};
use pufferfish_repro::compress::signum::SignMessage;
use pufferfish_repro::compress::GradCompressor;
use pufferfish_repro::models::units::{factorize_conv, factorize_linear, FactorInit};
use pufferfish_repro::nn::conv::Conv2d;
use pufferfish_repro::nn::linear::Linear;
use pufferfish_repro::nn::{Layer, Mode};
use pufferfish_repro::tensor::stats::rel_error;
use pufferfish_repro::tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_rank_linear_factorization_is_lossless(
        out_f in 2usize..6, in_f in 2usize..6, seed in 0u64..1000
    ) {
        let mut dense = Linear::new(in_f, out_f, true, seed).unwrap();
        let rank = in_f.min(out_f);
        let mut lr = factorize_linear(&dense, rank, FactorInit::WarmStart).unwrap();
        let x = Tensor::randn(&[3, in_f], 1.0, seed + 1);
        let err = rel_error(&dense.forward(&x, Mode::Eval), &lr.forward(&x, Mode::Eval));
        prop_assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn full_rank_conv_factorization_is_lossless(
        c_in in 1usize..4, seed in 0u64..1000
    ) {
        let c_out = 3usize;
        let mut dense = Conv2d::new(c_in, c_out, 3, 1, 1, false, seed).unwrap();
        let rank = (c_in * 9).min(c_out);
        let mut lr = factorize_conv(&dense, rank, FactorInit::WarmStart).unwrap();
        let x = Tensor::randn(&[2, c_in, 5, 5], 1.0, seed + 1);
        let err = rel_error(&dense.forward(&x, Mode::Eval), &lr.forward(&x, Mode::Eval));
        prop_assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn truncated_factorization_never_grows_params(
        c_in in 2usize..5, c_out in 4usize..9, ratio in 0.1f32..0.5
    ) {
        let dense = Conv2d::new(c_in, c_out, 3, 1, 1, false, 1).unwrap();
        let max = (c_in * 9).min(c_out);
        let rank = ((c_out as f32 * ratio).round() as usize).clamp(1, max);
        let lr = factorize_conv(&dense, rank, FactorInit::Random(2)).unwrap();
        // r(c_in k² + c_out) < c_in c_out k² whenever r <= c_out/4-ish;
        // at minimum the constructor must keep counts consistent.
        prop_assert_eq!(lr.param_count(), c_in * rank * 9 + rank * c_out);
    }

    #[test]
    fn pack_unpack_round_trips(
        dims in proptest::collection::vec((1usize..5, 1usize..5), 1..6),
        seed in 0u64..100
    ) {
        let tensors: Vec<Tensor> = dims
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| Tensor::randn(&[a, b], 1.0, seed + i as u64))
            .collect();
        let (buf, layout) = pack(&tensors);
        prop_assert_eq!(unpack(&buf, &layout), tensors);
    }

    #[test]
    fn exact_mean_is_permutation_invariant(
        seed in 0u64..100, n_workers in 2usize..5
    ) {
        let grads: Vec<Vec<Tensor>> = (0..n_workers)
            .map(|w| vec![Tensor::randn(&[4, 3], 1.0, seed + w as u64)])
            .collect();
        let mut reversed = grads.clone();
        reversed.reverse();
        let a = exact_mean(&grads);
        let b = exact_mean(&reversed);
        prop_assert!(rel_error(&a[0], &b[0]) < 1e-5);
    }

    #[test]
    fn vanilla_compressor_round_equals_exact_mean(
        seed in 0u64..100, n_workers in 1usize..4
    ) {
        let grads: Vec<Vec<Tensor>> = (0..n_workers)
            .map(|w| vec![Tensor::randn(&[6], 1.0, seed + w as u64), Tensor::randn(&[2, 2], 1.0, 77 + w as u64)])
            .collect();
        let mut comp = NoCompression::new();
        let (out, stats) = comp.round(&grads);
        let reference = exact_mean(&grads);
        for (o, r) in out.iter().zip(&reference) {
            prop_assert!(rel_error(r, o) < 1e-6);
        }
        prop_assert_eq!(stats.bytes_per_worker, 10 * 4);
    }

    #[test]
    fn sign_message_round_trips_signs(values in proptest::collection::vec(-10.0f32..10.0, 1..200)) {
        let msg = SignMessage::encode(&values);
        for (i, &v) in values.iter().enumerate() {
            let expected = if v >= 0.0 { 1.0 } else { -1.0 };
            prop_assert_eq!(msg.sign(i), expected);
        }
        prop_assert!(msg.bytes() <= values.len().div_ceil(64) * 8);
    }
}
