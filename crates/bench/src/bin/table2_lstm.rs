//! **Table 2**: vanilla vs Pufferfish 2-layer LSTM on WikiText-2(-like):
//! parameters, train/val/test perplexity, MACs.
//!
//! Full-scale parameter/MAC columns reproduce the paper's exact counts
//! (85,962,278 → 67,962,278; MAC ratio 2×); perplexities come from
//! training the bench-scale tied LSTM on the synthetic Markov corpus,
//! averaged over seeds. Shape under reproduction: the factorized model's
//! perplexity stays close to (the paper: slightly worse train ppl, nearly
//! equal val/test ppl than) the vanilla model at ~0.79× the parameters.

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_models::spec::{lstm_wikitext2, SpecVariant};
use pufferfish::ablation::mean_std;
use pufferfish::lm::{train_lm, LmTrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(3, 8);
    let warmup = scale.pick(1, 2);
    let seeds = scale.seeds();
    let corpus = setups::lm_corpus(scale);
    println!(
        "== Table 2: LSTM on WikiText-2-like corpus (epochs={epochs}, seeds={}) ==\n",
        seeds.len()
    );

    let spec_v = lstm_wikitext2(SpecVariant::Vanilla);
    let spec_p = lstm_wikitext2(SpecVariant::Pufferfish);

    // (label, train-ppl per seed, valid-ppl per seed, test-ppl per seed)
    type Row = (String, Vec<f32>, Vec<f32>, Vec<f32>);
    let mut rows: Vec<Row> = vec![
        ("Vanilla LSTM".into(), vec![], vec![], vec![]),
        ("Pufferfish LSTM".into(), vec![], vec![], vec![]),
    ];
    for &seed in &seeds {
        // Vanilla: warm-up = total epochs (never converts).
        let cfg = LmTrainConfig::small(epochs, epochs, setups::LSTM_RANK);
        let out =
            train_lm(setups::lstm_lm(corpus.vocab(), seed), &corpus, &cfg).expect("lm training");
        rows[0].1.push(out.report.epochs.last().map(|e| e.train_loss.exp()).unwrap_or(f32::NAN));
        rows[0].2.push(out.report.final_perplexity());
        rows[0].3.push(out.test_perplexity);
        // Pufferfish: warm-up then factorized.
        let cfg = LmTrainConfig::small(epochs, warmup, setups::LSTM_RANK);
        let out =
            train_lm(setups::lstm_lm(corpus.vocab(), seed), &corpus, &cfg).expect("lm training");
        rows[1].1.push(out.report.epochs.last().map(|e| e.train_loss.exp()).unwrap_or(f32::NAN));
        rows[1].2.push(out.report.final_perplexity());
        rows[1].3.push(out.test_perplexity);
    }

    let mut t = Table::new(vec![
        "Model archs.",
        "# Params (full-scale)",
        "Train Ppl.",
        "Val. Ppl.",
        "Test Ppl.",
        "MACs (full-scale)",
    ]);
    for (i, (name, train_p, val_p, test_p)) in rows.iter().enumerate() {
        let (tm, ts) = mean_std(train_p);
        let (vm, vs) = mean_std(val_p);
        let (em, es) = mean_std(test_p);
        let spec = if i == 0 { &spec_v } else { &spec_p };
        t.row(vec![
            name.clone(),
            commas(spec.params()),
            format!("{tm:.2} ± {ts:.2}"),
            format!("{vm:.2} ± {vs:.2}"),
            format!("{em:.2} ± {es:.2}"),
            format!("{}M", spec.macs() / 1_000_000),
        ]);
        record_result("table2_lstm", &format!("{name}: train {tm:.2} val {vm:.2} test {em:.2}"));
    }
    t.print();
    println!("\npaper reference: params 85,962,278 -> 67,962,278 (reproduced exactly at full");
    println!("scale); val ppl 92.49 vs 93.62, test 88.16 vs 88.72 — near-parity at 0.79x params.");
    println!("uniform-baseline perplexity on this corpus = {}", corpus.vocab());
}
