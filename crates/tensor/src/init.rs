//! Random tensor constructors and weight initializers.
//!
//! All constructors take an explicit `seed` so that every experiment in the
//! workspace is reproducible; the paper averages over 3 seeds and we follow
//! the same protocol in the bench harness.

use crate::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

impl Tensor {
    /// Standard-normal tensor scaled by `std`, deterministic in `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// # use puffer_tensor::Tensor;
    /// let a = Tensor::randn(&[4, 4], 1.0, 7);
    /// let b = Tensor::randn(&[4, 4], 1.0, 7);
    /// assert_eq!(a, b); // same seed, same tensor
    /// ```
    pub fn randn(shape: &[usize], std: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = Tensor::zeros(shape);
        fill_normal(t.as_mut_slice(), std, &mut rng);
        t
    }

    /// Uniform tensor on `[lo, hi)`, deterministic in `seed`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = Tensor::zeros(shape);
        for x in t.as_mut_slice() {
            *x = rng.gen_range(lo..hi);
        }
        t
    }
}

/// Fills `buf` with N(0, std²) samples via Box–Muller.
pub fn fill_normal<R: Rng>(buf: &mut [f32], std: f32, rng: &mut R) {
    let mut i = 0;
    while i < buf.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        buf[i] = r * theta.cos() * std;
        i += 1;
        if i < buf.len() {
            buf[i] = r * theta.sin() * std;
            i += 1;
        }
    }
}

/// Kaiming (He) normal initialization for a layer with `fan_in` inputs.
///
/// This is the initializer PyTorch applies to conv and FC layers and hence
/// what the paper's vanilla models start from.
pub fn kaiming_normal(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(shape, std, seed)
}

/// Xavier/Glorot uniform initialization (`U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`), used for the Transformer and LSTM.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn randn_moments() {
        let t = Tensor::randn(&[10_000], 2.0, 11);
        let mean = stats::mean(&t);
        let var =
            t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / (t.len() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, 3);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Tensor::randn(&[16], 1.0, 1);
        let b = Tensor::randn(&[16], 1.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let t = kaiming_normal(&[64, 576], 576, 5);
        let var = t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / 576.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var} vs {expected}");
    }

    #[test]
    fn xavier_bound() {
        let t = xavier_uniform(&[32, 32], 32, 32, 9);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn odd_length_box_muller() {
        // Regression: odd-length buffers must be fully filled.
        let t = Tensor::randn(&[7], 1.0, 13);
        assert!(t.as_slice().iter().any(|&x| x != 0.0));
    }
}
