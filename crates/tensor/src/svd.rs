//! Singular value decomposition.
//!
//! Pufferfish's "vanilla warm-up" converts a partially trained full-rank
//! layer `W` into low-rank factors via truncated SVD:
//! `W ≈ Ũ_r Σ_r Ṽ_rᵀ`, then `U = Ũ_r Σ_r^½` and `Vᵀ = Σ_r^½ Ṽ_rᵀ`
//! (paper §3, Algorithm 1). This module provides:
//!
//! * [`svd_jacobi`] — a full one-sided Jacobi SVD, the accuracy reference;
//! * [`truncated_svd`] — a randomized range-finder (Halko et al.) followed by
//!   a small Jacobi SVD, which is what the training pipeline calls (it is the
//!   operation timed in the paper's appendix Table 19);
//! * [`orthogonalize_columns`] — modified Gram–Schmidt, shared with the
//!   PowerSGD baseline which orthogonalizes its `P` factor every iteration.

use crate::matmul::{matmul, matmul_tn};
use crate::{Result, Tensor, TensorError};

/// The factors of a (possibly truncated) SVD `A ≈ U · diag(S) · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SvdFactors {
    /// Left singular vectors, `m × r`, orthonormal columns.
    pub u: Tensor,
    /// Singular values in non-increasing order, length `r`.
    pub s: Vec<f32>,
    /// Right singular vectors transposed, `r × n`, orthonormal rows.
    pub vt: Tensor,
}

impl SvdFactors {
    /// Rank of the factorization.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstructs `U · diag(S) · Vᵀ`.
    pub fn reconstruct(&self) -> Tensor {
        let mut us = self.u.clone();
        let r = self.rank();
        let m = us.shape()[0];
        for i in 0..m {
            for (j, &sj) in self.s.iter().enumerate().take(r) {
                us.as_mut_slice()[i * r + j] *= sj;
            }
        }
        matmul(&us, &self.vt).expect("svd factor shapes are consistent")
    }

    /// Splits into the balanced Pufferfish factors
    /// `(U Σ^½, Σ^½ Vᵀ)` so that their product equals the truncated SVD.
    ///
    /// Balancing spreads the singular-value magnitude evenly between the two
    /// trainable factors, which the paper found important for the
    /// continued-training phase.
    pub fn split_balanced(&self) -> (Tensor, Tensor) {
        let r = self.rank();
        let m = self.u.shape()[0];
        let n = self.vt.shape()[1];
        let sqrt_s: Vec<f32> = self.s.iter().map(|&x| x.max(0.0).sqrt()).collect();
        let mut u = self.u.clone();
        for i in 0..m {
            let row = &mut u.as_mut_slice()[i * r..(i + 1) * r];
            for (x, &s) in row.iter_mut().zip(&sqrt_s) {
                *x *= s;
            }
        }
        let mut vt = self.vt.clone();
        for (j, &sj) in sqrt_s.iter().enumerate() {
            for k in 0..n {
                vt.as_mut_slice()[j * n + k] *= sj;
            }
        }
        (u, vt)
    }

    /// Keeps only the top `rank` singular triplets.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankOutOfRange`] if `rank` is 0 or exceeds the
    /// current rank.
    pub fn truncate(&self, rank: usize) -> Result<SvdFactors> {
        if rank == 0 || rank > self.rank() {
            return Err(TensorError::RankOutOfRange { requested: rank, max: self.rank() });
        }
        let m = self.u.shape()[0];
        let n = self.vt.shape()[1];
        let r0 = self.rank();
        let mut u = Tensor::zeros(&[m, rank]);
        for i in 0..m {
            for j in 0..rank {
                u.as_mut_slice()[i * rank + j] = self.u.as_slice()[i * r0 + j];
            }
        }
        let mut vt = Tensor::zeros(&[rank, n]);
        vt.as_mut_slice().copy_from_slice(&self.vt.as_slice()[..rank * n]);
        Ok(SvdFactors { u, s: self.s[..rank].to_vec(), vt })
    }
}

const JACOBI_MAX_SWEEPS: usize = 60;
const JACOBI_TOL: f32 = 1e-6;

/// Full SVD via one-sided Jacobi rotations.
///
/// Numerically robust and dependency-free; `O(m n²)` per sweep, so intended
/// for matrices up to a few thousand on a side. Larger factorizations should
/// use [`truncated_svd`].
///
/// # Errors
///
/// Returns [`TensorError::WrongDimensions`] for non-2-D input and
/// [`TensorError::NoConvergence`] if the rotation sweeps fail to converge
/// (does not occur for finite inputs in practice).
pub fn svd_jacobi(a: &Tensor) -> Result<SvdFactors> {
    if a.ndim() != 2 {
        return Err(TensorError::WrongDimensions { expected: 2, got: a.ndim(), op: "svd_jacobi" });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    if m >= n {
        svd_jacobi_tall(a)
    } else {
        // SVD(Aᵀ) = V Σ Uᵀ: factor the transpose and swap the factors.
        let f = svd_jacobi_tall(&a.transpose())?;
        Ok(SvdFactors { u: f.vt.transpose(), s: f.s, vt: f.u.transpose() })
    }
}

/// One-sided Jacobi for `m >= n`: orthogonalize the columns of a working
/// copy of `A` by right rotations, accumulating them into `V`.
fn svd_jacobi_tall(a: &Tensor) -> Result<SvdFactors> {
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut w = a.clone(); // m x n, columns become U * diag(S)
    let mut v = Tensor::eye(n);

    let mut converged = false;
    for _sweep in 0..JACOBI_MAX_SWEEPS {
        let mut rotations = 0usize;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let (mut app, mut aqq, mut apq) = (0.0f32, 0.0f32, 0.0f32);
                for i in 0..m {
                    let wp = w.as_slice()[i * n + p];
                    let wq = w.as_slice()[i * n + q];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= JACOBI_TOL * (app * aqq).sqrt().max(f32::MIN_POSITIVE) {
                    continue;
                }
                rotations += 1;
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_columns(w.as_mut_slice(), m, n, p, q, c, s);
                rotate_columns(v.as_mut_slice(), n, n, p, q, c, s);
            }
        }
        if rotations == 0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(TensorError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: JACOBI_MAX_SWEEPS,
        });
    }

    // Column norms are the singular values; normalize to get U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut norms = vec![0.0f32; n];
    for (j, nj) in norms.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..m {
            let x = w.as_slice()[i * n + j];
            acc += x * x;
        }
        *nj = acc.sqrt();
    }
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).unwrap_or(std::cmp::Ordering::Equal));

    let mut u = Tensor::zeros(&[m, n]);
    let mut vt = Tensor::zeros(&[n, n]);
    let mut s = vec![0.0f32; n];
    for (dst, &src) in order.iter().enumerate() {
        s[dst] = norms[src];
        let inv = if norms[src] > 0.0 { 1.0 / norms[src] } else { 0.0 };
        for i in 0..m {
            u.as_mut_slice()[i * n + dst] = w.as_slice()[i * n + src] * inv;
        }
        for k in 0..n {
            // column src of V becomes row dst of Vᵀ
            vt.as_mut_slice()[dst * n + k] = v.as_slice()[k * n + src];
        }
    }
    Ok(SvdFactors { u, s, vt })
}

#[inline]
fn rotate_columns(data: &mut [f32], rows: usize, cols: usize, p: usize, q: usize, c: f32, s: f32) {
    for i in 0..rows {
        let base = i * cols;
        let xp = data[base + p];
        let xq = data[base + q];
        data[base + p] = c * xp - s * xq;
        data[base + q] = s * xp + c * xq;
    }
}

/// Truncated SVD of `a` at the given `rank`.
///
/// Uses the randomized range finder of Halko, Martinsson & Tropp (2011) with
/// oversampling 8 and two power iterations, followed by an exact Jacobi SVD
/// of the small projected matrix. For matrices whose smaller side is at most
/// `rank + 8` the exact Jacobi SVD is used directly.
///
/// # Errors
///
/// Returns [`TensorError::RankOutOfRange`] if `rank` is 0 or exceeds
/// `min(m, n)`, and propagates convergence failures from the Jacobi core.
///
/// # Example
///
/// ```
/// use puffer_tensor::{Tensor, svd::truncated_svd, stats::rel_error};
/// // A rank-2 matrix is recovered exactly (up to f32 noise) at rank 2.
/// let u = Tensor::randn(&[12, 2], 1.0, 1);
/// let v = Tensor::randn(&[2, 9], 1.0, 2);
/// let a = puffer_tensor::matmul::matmul(&u, &v)?;
/// let f = truncated_svd(&a, 2)?;
/// assert!(rel_error(&a, &f.reconstruct()) < 1e-3);
/// # Ok::<(), puffer_tensor::TensorError>(())
/// ```
pub fn truncated_svd(a: &Tensor, rank: usize) -> Result<SvdFactors> {
    truncated_svd_seeded(a, rank, 0x5EED)
}

/// [`truncated_svd`] with an explicit seed for the randomized range finder.
///
/// # Errors
///
/// Same as [`truncated_svd`].
pub fn truncated_svd_seeded(a: &Tensor, rank: usize, seed: u64) -> Result<SvdFactors> {
    if a.ndim() != 2 {
        return Err(TensorError::WrongDimensions {
            expected: 2,
            got: a.ndim(),
            op: "truncated_svd",
        });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let maxr = m.min(n);
    if rank == 0 || rank > maxr {
        return Err(TensorError::RankOutOfRange { requested: rank, max: maxr });
    }
    const OVERSAMPLE: usize = 8;
    const POWER_ITERS: usize = 2;
    let sketch = (rank + OVERSAMPLE).min(maxr);
    if maxr <= sketch + 4 || maxr <= 32 {
        // Small problem: exact SVD then truncate.
        return svd_jacobi(a)?.truncate(rank);
    }
    if m < n {
        let f = truncated_svd_seeded(&a.transpose(), rank, seed)?;
        return Ok(SvdFactors { u: f.vt.transpose(), s: f.s, vt: f.u.transpose() });
    }

    // Range finder: Y = A Ω, orthogonalize, power-iterate.
    let omega = Tensor::randn(&[n, sketch], 1.0, seed);
    let mut q = matmul(a, &omega)?;
    orthogonalize_columns(&mut q);
    for _ in 0..POWER_ITERS {
        let mut z = matmul_tn(a, &q)?; // n x sketch
        orthogonalize_columns(&mut z);
        q = matmul(a, &z)?; // m x sketch
        orthogonalize_columns(&mut q);
    }

    // B = Qᵀ A (sketch x n), small exact SVD, lift back: U = Q Ub.
    let b = matmul_tn(&q, a)?;
    let fb = svd_jacobi(&b)?.truncate(rank)?;
    let u = matmul(&q, &fb.u)?;
    Ok(SvdFactors { u, s: fb.s, vt: fb.vt })
}

/// In-place modified Gram–Schmidt orthogonalization of the columns of a 2-D
/// tensor. Zero columns are replaced by zeros (not unit vectors), matching
/// the PowerSGD reference implementation's `orthogonalize`.
///
/// # Panics
///
/// Panics if `q` is not 2-dimensional.
pub fn orthogonalize_columns(q: &mut Tensor) {
    assert_eq!(q.ndim(), 2, "orthogonalize_columns requires a 2-D tensor");
    let (m, n) = (q.shape()[0], q.shape()[1]);
    let data = q.as_mut_slice();
    for j in 0..n {
        // Subtract projections onto previous columns.
        for k in 0..j {
            let mut dot = 0.0f32;
            for i in 0..m {
                dot += data[i * n + j] * data[i * n + k];
            }
            for i in 0..m {
                data[i * n + j] -= dot * data[i * n + k];
            }
        }
        let mut norm = 0.0f32;
        for i in 0..m {
            norm += data[i * n + j] * data[i * n + j];
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            let inv = 1.0 / norm;
            for i in 0..m {
                data[i * n + j] *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::rel_error;

    fn assert_orthonormal_cols(t: &Tensor, tol: f32) {
        let (m, n) = (t.shape()[0], t.shape()[1]);
        for j in 0..n {
            for k in j..n {
                let mut dot = 0.0;
                for i in 0..m {
                    dot += t.as_slice()[i * n + j] * t.as_slice()[i * n + k];
                }
                let expected = if j == k { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < tol, "col {j}·{k} = {dot}");
            }
        }
    }

    #[test]
    fn full_svd_reconstructs() {
        let a = Tensor::randn(&[10, 6], 1.0, 1);
        let f = svd_jacobi(&a).unwrap();
        assert!(rel_error(&a, &f.reconstruct()) < 1e-4);
        assert_orthonormal_cols(&f.u, 1e-3);
        assert_orthonormal_cols(&f.vt.transpose(), 1e-3);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let a = Tensor::randn(&[5, 12], 1.0, 2);
        let f = svd_jacobi(&a).unwrap();
        assert_eq!(f.u.shape(), &[5, 5]);
        assert_eq!(f.vt.shape(), &[5, 12]);
        assert!(rel_error(&a, &f.reconstruct()) < 1e-4);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = Tensor::randn(&[15, 8], 2.0, 3);
        let f = svd_jacobi(&a).unwrap();
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
        assert!(f.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn truncation_is_best_low_rank() {
        // Eckart–Young: rank-r truncation error equals the tail singular values.
        let a = Tensor::randn(&[20, 12], 1.0, 4);
        let f = svd_jacobi(&a).unwrap();
        let r = 4;
        let tr = f.truncate(r).unwrap();
        let err = {
            let rec = tr.reconstruct();
            (&a - &rec).as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
        };
        let tail: f32 = f.s[r..].iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((err - tail).abs() < 1e-2 * tail.max(1.0), "err {err} vs tail {tail}");
    }

    #[test]
    fn exact_recovery_of_low_rank_matrix() {
        let u = Tensor::randn(&[40, 3], 1.0, 5);
        let v = Tensor::randn(&[3, 25], 1.0, 6);
        let a = matmul(&u, &v).unwrap();
        let f = truncated_svd(&a, 3).unwrap();
        assert!(rel_error(&a, &f.reconstruct()) < 1e-3);
    }

    #[test]
    fn randomized_matches_exact_on_decaying_spectrum() {
        // Build a matrix with known decaying spectrum.
        let mut u = Tensor::randn(&[60, 60], 1.0, 7);
        orthogonalize_columns(&mut u);
        let mut v = Tensor::randn(&[50, 50], 1.0, 8);
        orthogonalize_columns(&mut v);
        let r = 50;
        let mut a = Tensor::zeros(&[60, 50]);
        for j in 0..r {
            let s = 0.7f32.powi(j as i32);
            for row in 0..60 {
                for col in 0..50 {
                    a.as_mut_slice()[row * 50 + col] +=
                        s * u.as_slice()[row * 60 + j] * v.as_slice()[col * 50 + j];
                }
            }
        }
        let f = truncated_svd(&a, 6).unwrap();
        for (j, &sj) in f.s.iter().enumerate() {
            let expected = 0.7f32.powi(j as i32);
            assert!((sj - expected).abs() < 0.05, "σ_{j} = {sj}, expected {expected}");
        }
    }

    #[test]
    fn split_balanced_product_matches() {
        let a = Tensor::randn(&[12, 10], 1.0, 9);
        let f = truncated_svd(&a, 5).unwrap();
        let (u, vt) = f.split_balanced();
        let prod = matmul(&u, &vt).unwrap();
        assert!(rel_error(&f.reconstruct(), &prod) < 1e-4);
        // Balance: both factors should carry comparable norms.
        let nu = crate::stats::l2_norm(&u);
        let nv = crate::stats::l2_norm(&vt);
        assert!(nu / nv < 10.0 && nv / nu < 10.0);
    }

    #[test]
    fn rank_validation() {
        let a = Tensor::randn(&[6, 4], 1.0, 10);
        assert!(truncated_svd(&a, 0).is_err());
        assert!(truncated_svd(&a, 5).is_err());
        let f = svd_jacobi(&a).unwrap();
        assert!(f.truncate(0).is_err());
        assert!(f.truncate(5).is_err());
    }

    #[test]
    fn orthogonalize_produces_orthonormal_columns() {
        let mut q = Tensor::randn(&[30, 6], 1.0, 11);
        orthogonalize_columns(&mut q);
        assert_orthonormal_cols(&q, 1e-3);
    }

    #[test]
    fn orthogonalize_handles_dependent_columns() {
        // Second column is a multiple of the first: must not produce NaNs.
        let mut q = Tensor::zeros(&[4, 2]);
        for i in 0..4 {
            q.as_mut_slice()[i * 2] = (i + 1) as f32;
            q.as_mut_slice()[i * 2 + 1] = 2.0 * (i + 1) as f32;
        }
        orthogonalize_columns(&mut q);
        assert!(q.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn svd_of_zero_matrix() {
        let a = Tensor::zeros(&[5, 3]);
        let f = svd_jacobi(&a).unwrap();
        assert!(f.s.iter().all(|&x| x == 0.0));
        assert!(rel_error(&a, &f.reconstruct()) < 1e-6);
    }

    #[test]
    fn non_2d_rejected() {
        let a = Tensor::zeros(&[2, 2, 2]);
        assert!(svd_jacobi(&a).is_err());
        assert!(truncated_svd(&a, 1).is_err());
    }
}
