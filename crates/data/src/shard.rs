//! Row-wise batch sharding for data-parallel members.
//!
//! A global batch is split into `members` equal contiguous row ranges;
//! member `rank` owns rows `[rank·per, (rank+1)·per)` with
//! `per = rows / members` (trailing remainder rows are dropped, matching
//! DistributedSampler-style even division). The split is a pure function
//! of `(rank, members)`, so an elastic trainer can re-shard a stream
//! mid-run for a changed member set and every member still sees a
//! disjoint, deterministic slice.

use puffer_tensor::Tensor;
use std::fmt;

/// Why a shard could not be extracted.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// `members` equal shards of a `rows`-row batch would be empty.
    EmptyShard {
        /// Rows in the global batch.
        rows: usize,
        /// Members the batch was split across.
        members: usize,
    },
    /// `rank` does not name one of the `members` shards.
    RankOutOfRange {
        /// The requested shard.
        rank: usize,
        /// Number of shards.
        members: usize,
    },
    /// The label vector does not cover the batch rows, or the feature
    /// tensor has no row dimension.
    Malformed {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::EmptyShard { rows, members } => {
                write!(f, "{rows} rows split across {members} members leaves empty shards")
            }
            ShardError::RankOutOfRange { rank, members } => {
                write!(f, "shard rank {rank} out of range for {members} members")
            }
            ShardError::Malformed { reason } => write!(f, "malformed batch: {reason}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Extracts member `rank`'s rows of a `(features, labels)` batch split
/// evenly across `members` members.
///
/// The feature tensor's first dimension is the row (sample) dimension;
/// `labels` must have one entry per row.
///
/// # Errors
///
/// [`ShardError::RankOutOfRange`] for `rank ≥ members` (or `members == 0`),
/// [`ShardError::EmptyShard`] when the batch has fewer rows than members,
/// and [`ShardError::Malformed`] for label/shape inconsistencies.
pub fn shard_rows(
    features: &Tensor,
    labels: &[usize],
    rank: usize,
    members: usize,
) -> Result<(Tensor, Vec<usize>), ShardError> {
    if rank >= members {
        return Err(ShardError::RankOutOfRange { rank, members });
    }
    let shape = features.shape();
    let Some((&rows, rest)) = shape.split_first() else {
        return Err(ShardError::Malformed { reason: "feature tensor has no row dimension".into() });
    };
    if labels.len() != rows {
        return Err(ShardError::Malformed {
            reason: format!("{} labels for {rows} rows", labels.len()),
        });
    }
    let per = rows / members;
    if per == 0 {
        return Err(ShardError::EmptyShard { rows, members });
    }
    let row_width: usize = rest.iter().product();
    let start = rank * per;
    let data = features.as_slice()[start * row_width..(start + per) * row_width].to_vec();
    let mut shard_shape = vec![per];
    shard_shape.extend_from_slice(rest);
    let shard = Tensor::from_vec(data, &shard_shape)
        .map_err(|e| ShardError::Malformed { reason: e.to_string() })?;
    Ok((shard, labels[start..start + per].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_disjoint_and_cover_the_divisible_prefix() {
        let batch = Tensor::randn(&[9, 4], 1.0, 3);
        let labels: Vec<usize> = (0..9).collect();
        let mut seen = Vec::new();
        for rank in 0..4 {
            let (x, l) = shard_rows(&batch, &labels, rank, 4).unwrap();
            assert_eq!(x.shape(), &[2, 4]);
            assert_eq!(l, vec![rank * 2, rank * 2 + 1]);
            seen.extend(l);
        }
        // 4 members × 2 rows; the 9th (remainder) row is dropped.
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn resharding_is_a_pure_function_of_rank_and_count() {
        // A member's shard depends only on (rank, members) — rank 0 of 2
        // sees the same rows regardless of which worker id holds it.
        let batch = Tensor::randn(&[8, 3], 1.0, 5);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let a = shard_rows(&batch, &labels, 0, 2).unwrap();
        let b = shard_rows(&batch, &labels, 0, 2).unwrap();
        assert_eq!(a, b);
        // Shrinking 4 → 2 members widens every shard.
        let narrow = shard_rows(&batch, &labels, 0, 4).unwrap();
        assert_eq!(narrow.0.shape(), &[2, 3]);
        assert_eq!(a.0.shape(), &[4, 3]);
    }

    #[test]
    fn errors_are_typed() {
        let batch = Tensor::randn(&[2, 3], 1.0, 1);
        let labels = vec![0, 1];
        assert_eq!(
            shard_rows(&batch, &labels, 2, 2).unwrap_err(),
            ShardError::RankOutOfRange { rank: 2, members: 2 }
        );
        assert_eq!(
            shard_rows(&batch, &labels, 0, 0).unwrap_err(),
            ShardError::RankOutOfRange { rank: 0, members: 0 }
        );
        assert_eq!(
            shard_rows(&batch, &labels, 0, 3).unwrap_err(),
            ShardError::EmptyShard { rows: 2, members: 3 }
        );
        assert!(matches!(
            shard_rows(&batch, &[0], 0, 2).unwrap_err(),
            ShardError::Malformed { .. }
        ));
    }
}
