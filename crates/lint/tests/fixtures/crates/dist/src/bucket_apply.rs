//! Fixture: an indexed `+=` accumulation loop in dist outside the pinned
//! owners (bucket.rs / ring.rs). Gradient summation order is the bitwise
//! determinism contract; a second accumulation site has no pinned order.
//!
//! Decoys first — none of these may be flagged:
//! a comment mentioning `mean[i] += g[i]` is inert.

pub fn decoys(a: &mut [f32], b: f32) -> f32 {
    let _s = "mean[i] += g[i]"; // string decoy
    /* acc[0] += 1.0 in a block comment */
    a[0] = b; // plain indexed store, not +=
    a[0] + b // indexed read on the right-hand side
}

pub fn unpinned_accumulate(mean: &mut [f32], grad: &[f32]) {
    for i in 0..grad.len() {
        mean[i] += grad[i];
    }
}

pub fn single_writer_counter(hits: &mut [u64], slot: usize) {
    // lint:allow(bucket-apply-order-pinned) — deliberate, visible exemption
    hits[slot] += 1;
}

#[cfg(test)]
mod tests {
    pub fn tests_may_accumulate(acc: &mut [f32]) {
        acc[0] += 1.0;
    }
}
