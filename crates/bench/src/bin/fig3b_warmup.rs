//! **Figure 3(b)**: final accuracy of hybrid ResNet-50 as a function of the
//! vanilla warm-up period `E_wu ∈ {2, 5, 10, 15, 20}` (scaled to the bench
//! epoch budget).
//!
//! The shape under reproduction: some warm-up clearly beats none, and a
//! tuned warm-up period sits in the middle of the range — too much warm-up
//! leaves too few epochs to fine-tune the factorized model (paper §3).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_models::resnet::ResNetHybridPlan;
use pufferfish::trainer::{train, ModelPlan, TrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(8, 18);
    // The paper sweeps E_wu = {2, 5, 10, 15, 20} of 90 ImageNet epochs;
    // we sweep the same fractions of our budget.
    let warmups: Vec<usize> = scale.pick(vec![0, 2, 4], vec![0, 1, 2, 4, 6, 9]);
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;

    println!("== Figure 3(b): hybrid ResNet-50 accuracy vs warm-up epochs (total {epochs}) ==\n");
    let mut t = Table::new(vec!["E_wu", "final acc", "switch epoch", "svd time (ms)"]);
    let mut best = (0usize, 0.0f32);
    for &wu in &warmups {
        let cfg = TrainConfig::imagenet_small(epochs, wu);
        let out = train(
            setups::resnet50(classes, 1),
            ModelPlan::ResNetHybrid(ResNetHybridPlan::resnet50_paper()),
            &data,
            &cfg,
        )
        .expect("training");
        let acc = out.report.final_test_accuracy();
        if acc > best.1 {
            best = (wu, acc);
        }
        t.row(vec![
            wu.to_string(),
            format!("{acc:.3}"),
            out.report.switch_epoch.map(|e| e.to_string()).unwrap_or_default(),
            out.report
                .svd_time
                .map(|d| format!("{:.1}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into()),
        ]);
        record_result("fig3b_warmup", &format!("E_wu={wu} acc={acc:.4}"));
    }
    t.print();
    println!("\nbest warm-up: E_wu = {} (acc {:.3})", best.0, best.1);
    println!("paper shape: warm-up > no warm-up, with an interior optimum (~10 of 90 epochs).");
}
