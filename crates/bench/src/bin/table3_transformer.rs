//! **Table 3**: vanilla vs Pufferfish 6-layer Transformer on WMT'16-like
//! translation: parameters, train/val perplexity, validation BLEU.
//!
//! Full-scale parameter columns reproduce the paper's exact counts
//! (48,978,432 → 26,696,192); perplexity/BLEU come from the bench-scale
//! Transformer on the synthetic reversal-translation task. Shape under
//! reproduction: the factorized Transformer matches or *beats* the vanilla
//! one (the paper observes better val ppl and BLEU — implicit
//! regularization).

use puffer_bench::scale::RunScale;
use puffer_bench::table::{commas, Table};
use puffer_bench::{record_result, setups};
use puffer_models::spec::{transformer_wmt16, SpecVariant};
use pufferfish::ablation::mean_std;
use pufferfish::seq2seq::{train_seq2seq, Seq2SeqConfig};

fn main() {
    let scale = RunScale::from_env();
    let epochs = scale.pick(3, 10);
    let warmup = scale.pick(1, 2);
    let seeds = scale.seeds();
    let data = setups::translation_data(scale);
    let vocab = data.config().vocab;
    println!(
        "== Table 3: Transformer on WMT'16-like translation (epochs={epochs}, seeds={}) ==\n",
        seeds.len()
    );

    let spec_v = transformer_wmt16(SpecVariant::Vanilla);
    let spec_p = transformer_wmt16(SpecVariant::Pufferfish);

    // (label, train-ppl per seed, valid-ppl per seed, BLEU per seed)
    type Row = (String, Vec<f32>, Vec<f32>, Vec<f64>);
    let mut results: Vec<Row> = vec![
        ("Vanilla Transformer".into(), vec![], vec![], vec![]),
        ("Pufferfish Transformer".into(), vec![], vec![], vec![]),
    ];
    for &seed in &seeds {
        let cfg = Seq2SeqConfig::small(epochs, epochs, setups::TRANSFORMER_RANK);
        let out =
            train_seq2seq(setups::transformer(vocab, None, seed), &data, &cfg).expect("seq2seq");
        results[0].1.push(out.report.epochs.last().map(|e| e.train_loss.exp()).unwrap_or(f32::NAN));
        results[0].2.push(out.report.final_perplexity());
        results[0].3.push(out.valid_bleu);

        let cfg = Seq2SeqConfig::small(epochs, warmup, setups::TRANSFORMER_RANK);
        let out =
            train_seq2seq(setups::transformer(vocab, None, seed), &data, &cfg).expect("seq2seq");
        results[1].1.push(out.report.epochs.last().map(|e| e.train_loss.exp()).unwrap_or(f32::NAN));
        results[1].2.push(out.report.final_perplexity());
        results[1].3.push(out.valid_bleu);
    }

    let mut t = Table::new(vec![
        "Model archs.",
        "# Params (full-scale)",
        "Train Ppl.",
        "Val. Ppl.",
        "Val. BLEU",
    ]);
    for (i, (name, train_p, val_p, bleu)) in results.iter().enumerate() {
        let (tm, ts) = mean_std(train_p);
        let (vm, vs) = mean_std(val_p);
        let bleus: Vec<f32> = bleu.iter().map(|&b| b as f32).collect();
        let (bm, bs) = mean_std(&bleus);
        let spec = if i == 0 { &spec_v } else { &spec_p };
        t.row(vec![
            name.clone(),
            commas(spec.params()),
            format!("{tm:.2} ± {ts:.2}"),
            format!("{vm:.2} ± {vs:.2}"),
            format!("{bm:.2} ± {bs:.2}"),
        ]);
        record_result("table3_transformer", &format!("{name}: val_ppl {vm:.2} bleu {bm:.2}"));
    }
    t.print();
    println!("\npaper reference: params 48,978,432 -> 26,696,192 (reproduced exactly at full");
    println!("scale); val ppl 11.88 vs 7.34, BLEU 19.05 vs 26.87 (factorized model better).");
}
