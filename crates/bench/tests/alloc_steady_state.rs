//! Satellite guarantee for the scratch-arena workspace: training reaches an
//! **allocation-free steady state**. After a two-step warm-up every scratch
//! buffer a step needs is already sitting in a per-thread arena, so
//! `alloc.pool_misses` stops growing — for a single-process image-trainer
//! step and for a full data-parallel round.
//!
//! Both tests read the probe's process-global counters, so they serialize
//! on a file-local lock (`puffer_probe::testutil::lock` is crate-private;
//! this is the same idiom as `crates/dist/tests/probe_breakdown.rs`).

use puffer_compress::none::NoCompression;
use puffer_dist::cost::ClusterProfile;
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RunOptions};
use puffer_nn::activation::Relu;
use puffer_nn::conv::Conv2d;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::linear::Linear;
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::norm::BatchNorm2d;
use puffer_nn::optim::Sgd;
use puffer_nn::pool::{Flatten, GlobalAvgPool};
use puffer_nn::Sequential;
use puffer_probe as probe;
use puffer_tensor::{workspace, Tensor};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn pool_misses() -> f64 {
    probe::counter_value("alloc.pool_misses").unwrap_or(0.0)
}

/// A small but representative image model: convolution (im2col/col2im
/// scratch), batch norm, pooled head. Everything the workspace has to keep
/// allocation-free in one package.
fn image_model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Conv2d::new(3, 8, 3, 1, 1, false, seed).unwrap()),
        Box::new(BatchNorm2d::new(8).unwrap()),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(8, 8, 3, 1, 1, false, seed + 1).unwrap()),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(8, 10, true, seed + 2).unwrap()),
    ])
}

fn train_step(model: &mut Sequential, opt: &mut Sgd, images: &Tensor, labels: &[usize]) {
    model.zero_grad();
    let logits = model.forward(images, Mode::Train);
    let (_, dl) = softmax_cross_entropy(&logits, labels, 0.0).expect("loss");
    let _ = model.backward(&dl);
    opt.step(&mut model.params_mut());
}

#[test]
fn image_trainer_step_is_allocation_free_after_warmup() {
    let _guard = GLOBAL.lock().unwrap();
    workspace::set_enabled(true);
    workspace::clear_thread_arena();

    let mut model = image_model(7);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let images = Tensor::randn(&[4, 3, 8, 8], 1.0, 11);
    let labels: Vec<usize> = (0..4).map(|i| i % 10).collect();

    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());

    // Warm-up: step 1 allocates every buffer fresh, step 2 settles the
    // lazily created optimizer state.
    train_step(&mut model, &mut opt, &images, &labels);
    train_step(&mut model, &mut opt, &images, &labels);

    let warm = pool_misses();
    assert!(warm > 0.0, "warm-up must have allocated through the pool");
    train_step(&mut model, &mut opt, &images, &labels);
    let after = pool_misses();
    assert_eq!(
        after,
        warm,
        "steady-state step allocated fresh buffers: {} new pool misses",
        after - warm
    );
    // And it was pool traffic, not a bypass: the step recorded hits.
    let hits = probe::counter_value("alloc.pool_hits").unwrap_or(0.0);
    assert!(hits > 0.0, "steady-state step recorded no pool hits");

    probe::reset();
}

/// One data-parallel round after warm-up must add zero pool misses.
///
/// Worker and aggregator threads are created per run, so their arenas
/// cannot be warmed across runs from here; instead compare two otherwise
/// identical runs that differ by one trailing round. The extra round runs
/// on threads whose arenas three earlier rounds have already filled, so it
/// must be served entirely from the pools.
#[test]
fn dist_round_is_allocation_free_after_warmup() {
    let _guard = GLOBAL.lock().unwrap();
    workspace::set_enabled(true);

    let cfg = DistConfig {
        workers: 2,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(2),
    };

    let misses_for = |rounds: usize| -> f64 {
        workspace::clear_thread_arena();
        let batches: Vec<(Tensor, Vec<usize>)> = (0..rounds * cfg.workers)
            .map(|b| {
                let x = Tensor::randn(&[4, 3, 8, 8], 1.0, 500 + b as u64 % 2);
                let labels = (0..4).map(|i| i % 10).collect();
                (x, labels)
            })
            .collect();
        probe::reset();
        probe::configure(probe::ProbeConfig::in_memory());
        let mut comp = NoCompression::new();
        let out = train_data_parallel_with(
            |w| image_model(30 + w as u64),
            &batches,
            &mut comp,
            &cfg,
            &RunOptions::default(),
        )
        .expect("clean run");
        assert!(out.breakdown.skipped_steps == 0);
        let misses = pool_misses();
        probe::reset();
        misses
    };

    let warm = misses_for(3);
    let extended = misses_for(4);
    assert!(warm > 0.0, "warm-up rounds must have allocated through the pool");
    assert_eq!(
        extended,
        warm,
        "the post-warm-up round allocated fresh buffers: {} new pool misses",
        extended - warm
    );
}
