//! **Table 9**: warm-up ablation on the low-rank LSTM / WikiText-2-like
//! corpus — low-rank from scratch vs low-rank with vanilla warm-up.
//!
//! Shape under reproduction: warm-up improves train/val/test perplexity
//! (paper: val 97.59 → 93.62, test 92.04 → 88.72).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use pufferfish::ablation::mean_std;
use pufferfish::lm::{train_lm, LmTrainConfig};

fn main() {
    let scale = RunScale::from_env();
    let corpus = setups::lm_corpus(scale);
    let epochs = scale.pick(3, 8);
    let warmup = scale.pick(1, 2);
    let seeds = scale.seeds();
    println!("== Table 9: LSTM warm-up ablation (epochs={epochs}, seeds={}) ==\n", seeds.len());

    // (label, train-ppl per seed, valid-ppl per seed, test-ppl per seed)
    type Row = (&'static str, Vec<f32>, Vec<f32>, Vec<f32>);
    let mut results: Vec<Row> = vec![
        ("Low-rank LSTM (wo. vanilla warm-up)", vec![], vec![], vec![]),
        ("Low-rank LSTM (w. vanilla warm-up)", vec![], vec![], vec![]),
    ];
    for &seed in &seeds {
        for (i, wu) in [0usize, warmup].into_iter().enumerate() {
            let cfg = LmTrainConfig::small(epochs, wu, setups::LSTM_RANK);
            let out = train_lm(setups::lstm_lm(corpus.vocab(), seed), &corpus, &cfg).expect("lm");
            results[i]
                .1
                .push(out.report.epochs.last().map(|e| e.train_loss.exp()).unwrap_or(f32::NAN));
            results[i].2.push(out.report.final_perplexity());
            results[i].3.push(out.test_perplexity);
        }
    }

    let mut t = Table::new(vec!["Methods", "Train Ppl.", "Val. Ppl.", "Test Ppl."]);
    for (name, train_p, val_p, test_p) in &results {
        let (tm, ts) = mean_std(train_p);
        let (vm, vs) = mean_std(val_p);
        let (em, es) = mean_std(test_p);
        t.row(vec![
            (*name).into(),
            format!("{tm:.2} ± {ts:.2}"),
            format!("{vm:.2} ± {vs:.2}"),
            format!("{em:.2} ± {es:.2}"),
        ]);
        record_result(
            "table9_ablation",
            &format!("{name}: train {tm:.2} val {vm:.2} test {em:.2}"),
        );
    }
    t.print();
    println!("\npaper shape: warm-up lowers all three perplexities");
    println!("(paper: train 68.04->62.2, val 97.59->93.62, test 92.04->88.72).");
}
