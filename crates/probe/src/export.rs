//! Exporters: Chrome trace-event JSON and the JSONL metrics file.
//!
//! The trace format is the Chrome `chrome://tracing` / Perfetto "JSON
//! array" flavor: one object per event with `name`/`cat`/`ph`/`pid`/
//! `tid`/`ts` (+`dur` for complete events), timestamps in *microseconds*
//! as floats. Durations are kept as exact [`std::time::Duration`]s until
//! this final conversion.

use crate::json::{escape_into, number_into};
use crate::span::{ArgValue, TraceEvent};
use crate::ProbeConfig;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// What [`crate::flush`] wrote.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushReport {
    /// The trace file written, if configured.
    pub trace_path: Option<PathBuf>,
    /// The metrics file written, if configured.
    pub metrics_path: Option<PathBuf>,
    /// Trace events drained (written to the trace file or discarded).
    pub trace_events: usize,
    /// Metrics rows drained (counters summary row excluded).
    pub metrics_rows: usize,
    /// Events dropped at the in-memory cap since the last reset.
    pub dropped_events: u64,
}

fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn arg_into(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(n) => number_into(out, *n),
        ArgValue::Str(s) => escape_into(out, s),
    }
}

fn event_into(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":");
    escape_into(out, ev.name);
    if ev.phase != 'M' {
        out.push_str(",\"cat\":");
        escape_into(out, if ev.cat.is_empty() { "probe" } else { ev.cat });
    }
    let _ = write!(out, ",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":", ev.phase, ev.tid);
    number_into(out, us(ev.ts));
    if ev.phase == 'X' {
        out.push_str(",\"dur\":");
        number_into(out, us(ev.dur));
    }
    if ev.phase == 'i' {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(out, k);
            out.push(':');
            arg_into(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders events as a complete Chrome trace-event JSON document.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        event_into(&mut out, ev);
    }
    out.push_str("\n]\n");
    out
}

/// Writes events as Chrome trace-event JSON.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_chrome_trace<W: io::Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    w.write_all(render_chrome_trace(events).as_bytes())
}

pub(crate) fn export(
    cfg: &ProbeConfig,
    events: &[TraceEvent],
    rows: &[String],
    dropped: u64,
) -> io::Result<FlushReport> {
    if let Some(path) = &cfg.trace_path {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        // Prepend the run-context header and append per-family histogram
        // summaries so the trace file is self-describing.
        let extras = crate::trace_extras();
        let mut all = Vec::with_capacity(events.len() + extras.len());
        all.extend(extras.iter().filter(|e| e.name == "run_context").cloned());
        all.extend_from_slice(events);
        all.extend(extras.into_iter().filter(|e| e.name != "run_context"));
        write_chrome_trace(std::fs::File::create(path)?, &all)?;
    }
    if let Some(path) = &cfg.metrics_path {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let mut doc = String::with_capacity(rows.iter().map(|r| r.len() + 1).sum::<usize>() + 64);
        if let Some(header) = crate::context::header_row() {
            doc.push_str(&header);
            doc.push('\n');
        }
        for row in rows {
            doc.push_str(row);
            doc.push('\n');
        }
        doc.push_str(&crate::metrics::counters_row());
        doc.push('\n');
        for row in crate::hist::hist_rows() {
            doc.push_str(&row);
            doc.push('\n');
        }
        std::fs::write(path, doc)?;
    }
    Ok(FlushReport {
        trace_path: cfg.trace_path.clone(),
        metrics_path: cfg.metrics_path.clone(),
        trace_events: events.len(),
        metrics_rows: rows.len(),
        dropped_events: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::{configure, flush, reset, testutil};
    use std::time::Duration;

    #[test]
    fn rendered_trace_validates_and_round_trips_values() {
        let _guard = testutil::lock();
        reset();
        configure(ProbeConfig::in_memory());
        {
            let _s = crate::span_with("cat-a", "spañ \"x\"", || {
                vec![("n", 3usize.into()), ("f", ArgValue::F64(1.5)), ("s", "q\"".into())]
            });
            crate::event("fault", "nan_skip", vec![("step", 1usize.into())]);
            crate::counter_add("bytes", 128);
        }
        let events = crate::take_events();
        let doc = render_chrome_trace(&events);
        let summary = validate_chrome_trace(&doc).unwrap();
        assert!(summary.spans >= 1 && summary.instants == 1 && summary.counters == 1);
        assert!(summary.has_name("spañ \"x\""));
        assert!(summary.cats.contains("cat-a"));
        reset();
    }

    #[test]
    fn flush_writes_both_files() {
        let _guard = testutil::lock();
        reset();
        let dir = std::env::temp_dir().join(format!("puffer-probe-test-{}", std::process::id()));
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.jsonl");
        configure(ProbeConfig {
            trace_path: Some(trace.clone()),
            metrics_path: Some(metrics.clone()),
            collect: false,
        });
        crate::run_header(&[("seed", 17u64.into())]);
        crate::emit_span("t", "modeled", Duration::from_micros(10), Vec::new());
        crate::metrics_row("step", &[("step", 0usize.into())]);
        crate::counter_add("c", 2);
        let report = flush().unwrap();
        assert_eq!(report.metrics_rows, 1);
        assert!(report.trace_events >= 1);
        let doc = std::fs::read_to_string(&trace).unwrap();
        let summary = validate_chrome_trace(&doc).unwrap();
        assert!(summary.has_name("run_context"), "trace carries the run header");
        assert!(summary.has_name("histogram"), "trace carries span-family histograms");
        let lines: Vec<String> =
            std::fs::read_to_string(&metrics).unwrap().lines().map(String::from).collect();
        assert_eq!(lines.len(), 4, "header + step row + counters summary + one hist row");
        let first = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("run_header"));
        assert_eq!(first.get("seed").unwrap().as_num(), Some(17.0));
        let counters = crate::json::parse(&lines[2]).unwrap();
        assert_eq!(counters.get("type").unwrap().as_str(), Some("counters"));
        assert_eq!(counters.get("c").unwrap().as_num(), Some(2.0));
        let hist = crate::json::parse(&lines[3]).unwrap();
        assert_eq!(hist.get("type").unwrap().as_str(), Some("hist"));
        assert_eq!(hist.get("name").unwrap().as_str(), Some("modeled"));
        assert_eq!(hist.get("count").unwrap().as_num(), Some(1.0));
        // Second flush starts from drained buffers.
        let report2 = flush().unwrap();
        assert_eq!((report2.trace_events, report2.metrics_rows), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }
}
