//! The semantic rules: AST- and call-graph-backed analyses the token
//! engine structurally cannot do.
//!
//! | rule | what it proves |
//! |---|---|
//! | `dist-no-panic` | (migrated from the token engine) no panic constructs in dist non-test code |
//! | `dist-panic-reachability` | no panic site is *transitively reachable* from a dist entry point — findings pin the call chain |
//! | `lock-order-consistency` | no two locks are acquired in opposite orders (one-level call-graph propagation) |
//! | `guard-across-blocking-op` | no live lock guard is held across a channel `send`/`recv`/thread `join` |
//! | `nondeterministic-float-reduction` | no float `sum`/`fold`/`product` over an iteration order that can vary between runs |
//! | `discarded-result` | no `let _ =` / bare-statement discard of a workspace-resolved `Result` |
//!
//! Analysis boundaries (also in DESIGN.md §8): resolution is name-based
//! (no trait dispatch, no type inference), lock-order propagates exactly
//! one call level, closure bodies are deferred code (they do not extend a
//! guard's liveness, and their own acquisitions are not propagated), and
//! float-reduction sources resolve only through same-function `let`
//! bindings.

use crate::ast::{self, Block, Expr, ExprKind, FnDef, Stmt};
use crate::callgraph::{self, CallGraph};
use crate::rules::{Diagnostic, FileContext};
use crate::symbols::{ParsedFile, SymbolTable};
use std::collections::BTreeMap;
use std::path::Path;

/// Functions whose bodies start the dist panic-reachability traversal:
/// the public training drivers, the two spawned role loops, and `run`
/// (the conventional method name for trainer-like drivers).
pub const DIST_ENTRY_POINTS: &[&str] =
    &["train_data_parallel", "train_data_parallel_with", "run_worker", "run_aggregator", "run"];

/// `std::fs` functions that return `io::Result` (the discard rule's
/// external-knowledge table; the workspace itself never defines these).
const FS_RESULT_FNS: &[&str] = &[
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "create_dir",
    "write",
    "rename",
    "copy",
    "hard_link",
    "set_permissions",
];

/// Channel/thread methods that return `Result`, keyed by (name, arity).
/// The arity pin keeps `PathBuf::join(x)` (1 arg) distinct from
/// `JoinHandle::join()` (0 args).
const EXTERNAL_RESULT_METHODS: &[(&str, usize)] =
    &[("send", 1), ("try_send", 1), ("recv", 0), ("try_recv", 0), ("recv_timeout", 1), ("join", 0)];

/// Blocking operations a lock guard must not be held across, keyed by
/// (name, arity) like [`EXTERNAL_RESULT_METHODS`].
const BLOCKING_METHODS: &[(&str, usize)] =
    &[("send", 1), ("recv", 0), ("recv_timeout", 1), ("join", 0)];

/// Method names whose std-prelude meaning (panicking or `()`-returning)
/// overwhelmingly dominates any same-name workspace definition —
/// `vec.truncate(n)` must not resolve to `SvdFactors::truncate`. The
/// discard rule never attributes these to workspace functions.
const STD_SHADOWED_METHODS: &[&str] = &[
    "expect", "unwrap", "truncate", "push", "insert", "remove", "clear", "extend", "resize",
    "sort", "reverse",
];

/// Runs every enabled semantic rule over the parsed workspace.
pub fn check(files: &[ParsedFile], enabled: &dyn Fn(&str) -> bool) -> Vec<Diagnostic> {
    let symbols = SymbolTable::build(files);
    let ctxs: Vec<FileContext<'_>> =
        files.iter().map(|pf| FileContext::new(Path::new(&pf.rel), &pf.tokens, &pf.mask)).collect();
    let mut out = Vec::new();
    if enabled("dist-no-panic") {
        dist_no_panic(&symbols, &ctxs, &mut out);
    }
    if enabled("dist-panic-reachability") {
        dist_panic_reachability(&symbols, &ctxs, &mut out);
    }
    if enabled("lock-order-consistency") || enabled("guard-across-blocking-op") {
        lock_rules(&symbols, &ctxs, enabled, &mut out);
    }
    if enabled("nondeterministic-float-reduction") {
        nondeterministic_float_reduction(&symbols, &ctxs, &mut out);
    }
    if enabled("discarded-result") {
        discarded_result(&symbols, &ctxs, &mut out);
    }
    out
}

fn push(
    ctx: &FileContext<'_>,
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if !ctx.suppressed(rule, line) {
        out.push(Diagnostic { file: ctx.rel_path.clone(), line, col, rule, message });
    }
}

// ---- panic sites ------------------------------------------------------

/// One potential panic in a function body.
struct PanicSite {
    line: u32,
    col: u32,
    /// `.unwrap()`, `panic!`, `indexing \`shard[…]\``, …
    what: String,
}

fn is_panic_macro(name: &str) -> bool {
    matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
}

/// Collects unwrap/expect calls, panic-family macros, and direct indexing
/// in a function body (closures included — they run as this fn's code).
fn panic_sites(pf: &ParsedFile, def: &FnDef) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    let Some(body) = &def.body else { return sites };
    callgraph::walk_own_exprs(body, &mut |e| match &e.kind {
        ExprKind::MethodCall { name, name_tok, .. } if name == "unwrap" || name == "expect" => {
            let t = &pf.tokens[*name_tok];
            sites.push(PanicSite { line: t.line, col: t.col, what: format!("`.{name}()`") });
        }
        ExprKind::Macro { name, name_tok, .. } if is_panic_macro(name) => {
            let t = &pf.tokens[*name_tok];
            sites.push(PanicSite { line: t.line, col: t.col, what: format!("`{name}!`") });
        }
        ExprKind::Index { base, .. } => {
            let label = ast::receiver_label(base);
            sites.push(PanicSite {
                line: e.span.line,
                col: e.span.col,
                what: format!("indexing `{label}[…]`"),
            });
        }
        _ => {}
    });
    sites
}

// ---- dist-no-panic (AST migration of the token rule) ------------------

fn dist_no_panic(symbols: &SymbolTable<'_>, ctxs: &[FileContext<'_>], out: &mut Vec<Diagnostic>) {
    for f in &symbols.fns {
        let pf = &symbols.files[f.file];
        if f.is_test || !pf.in_dist_src() || pf.is_test_file {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        callgraph::walk_own_exprs(body, &mut |e| match &e.kind {
            ExprKind::MethodCall { name, name_tok, .. } if name == "unwrap" || name == "expect" => {
                let t = &pf.tokens[*name_tok];
                push(
                    &ctxs[f.file],
                    "dist-no-panic",
                    t.line,
                    t.col,
                    format!(
                        "`.{name}()` in puffer-dist non-test code; route the failure through \
                         DistError instead"
                    ),
                    out,
                );
            }
            ExprKind::Macro { name, name_tok, .. } if is_panic_macro(name) => {
                let t = &pf.tokens[*name_tok];
                push(
                    &ctxs[f.file],
                    "dist-no-panic",
                    t.line,
                    t.col,
                    format!(
                        "`{name}!` in puffer-dist non-test code; a panicking aggregator cannot \
                         survive its own fault model — return DistError"
                    ),
                    out,
                );
            }
            _ => {}
        });
    }
}

// ---- dist-panic-reachability ------------------------------------------

fn dist_panic_reachability(
    symbols: &SymbolTable<'_>,
    ctxs: &[FileContext<'_>],
    out: &mut Vec<Diagnostic>,
) {
    let graph = CallGraph::build(symbols);
    let in_scope = |id: usize| {
        let f = &symbols.fns[id];
        let pf = &symbols.files[f.file];
        !f.is_test && pf.in_dist_src() && !pf.is_test_file
    };
    let roots: Vec<usize> = (0..symbols.fns.len())
        .filter(|&id| {
            in_scope(id) && DIST_ENTRY_POINTS.contains(&symbols.fns[id].def.name.as_str())
        })
        .collect();
    let pred = callgraph::reachable(&graph, &roots, &in_scope);
    let mut reached: Vec<usize> = pred.keys().copied().collect();
    reached.sort_unstable();
    for id in reached {
        let f = &symbols.fns[id];
        let pf = &symbols.files[f.file];
        let chain = callgraph::chain(symbols, &pred, id);
        for site in panic_sites(pf, f.def) {
            push(
                &ctxs[f.file],
                "dist-panic-reachability",
                site.line,
                site.col,
                format!(
                    "{} is reachable from a dist entry point (call chain: {chain}); a panic on \
                     this path kills the trainer mid-protocol — return DistError or prove the \
                     access in-bounds",
                    site.what
                ),
                out,
            );
        }
    }
}

// ---- lock-order-consistency + guard-across-blocking-op ----------------

/// A lock acquired at a call site: `pool.spawned.lock()` → label
/// `pool.spawned`.
fn lock_acquisition(e: &Expr) -> Option<String> {
    if let ExprKind::MethodCall { recv, name, args, .. } = &e.kind {
        if args.is_empty() && matches!(name.as_str(), "lock" | "read" | "write") {
            return Some(ast::receiver_label(recv));
        }
    }
    None
}

/// One "lock B acquired while lock A held" observation.
struct PairEvent {
    a: String,
    b: String,
    file: usize,
    line: u32,
    col: u32,
    fn_name: String,
}

/// One "blocking op while guard live" observation.
struct BlockEvent {
    guard: String,
    op: String,
    file: usize,
    line: u32,
    col: u32,
    guard_line: u32,
}

struct LiveGuard {
    label: String,
    /// The `let` binding holding the guard, if any (`drop(name)` releases
    /// it). Temporaries have `None` and die at the statement boundary.
    binding: Option<String>,
    line: u32,
}

struct LockWalk<'w, 'a> {
    symbols: &'w SymbolTable<'a>,
    /// Lock labels each function acquires anywhere in its body
    /// (closures excluded) — the one-level propagation source.
    acquires_of: &'w [Vec<String>],
    file: usize,
    fn_name: &'w str,
    self_ty: Option<&'a str>,
    live: Vec<LiveGuard>,
    pairs: Vec<PairEvent>,
    blocks: Vec<BlockEvent>,
}

impl LockWalk<'_, '_> {
    fn record_pairs_for(&mut self, b_label: &str, line: u32, col: u32) {
        for g in &self.live {
            if g.label != b_label {
                self.pairs.push(PairEvent {
                    a: g.label.clone(),
                    b: b_label.to_string(),
                    file: self.file,
                    line,
                    col,
                    fn_name: self.fn_name.to_string(),
                });
            }
        }
    }

    fn walk_block(&mut self, block: &Block) {
        let base = self.live.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { pat, init, els, .. } => {
                    let tmp_base = self.live.len();
                    if let Some(e) = init {
                        self.walk_expr(e);
                    }
                    if let Some(b) = els {
                        self.walk_block(b);
                    }
                    if pat == "_" || !init.as_ref().is_some_and(guard_escapes) {
                        // `let _ = x.lock();` drops the guard immediately,
                        // and `let n = x.lock().unwrap().len();` only ever
                        // holds it for the statement.
                        self.live.truncate(tmp_base);
                    } else {
                        // Guards acquired in the initializer live as long
                        // as the binding: to end of block or drop().
                        let name = pat
                            .split_whitespace()
                            .find(|w| !matches!(*w, "mut" | "ref" | "&"))
                            .unwrap_or(pat)
                            .to_string();
                        for g in &mut self.live[tmp_base..] {
                            g.binding = Some(name.clone());
                        }
                    }
                }
                Stmt::Expr { expr, .. } => {
                    let tmp_base = self.live.len();
                    // drop(g) releases the named guard for the rest of the
                    // block.
                    if let ExprKind::Call { path, args, .. } = &expr.kind {
                        if path.last().is_some_and(|s| s == "drop") && args.len() == 1 {
                            if let ExprKind::Path(name) = &args[0].kind {
                                self.live.retain(|g| g.binding.as_deref() != Some(name));
                                continue;
                            }
                        }
                    }
                    self.walk_expr(expr);
                    self.live.truncate(tmp_base);
                }
                Stmt::Item(_) => {}
            }
        }
        self.live.truncate(base);
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            // Deferred code: a closure defined while a guard is live does
            // not run while it is live.
            ExprKind::Closure(_) => return,
            ExprKind::Block(b) | ExprKind::Loop(b) => {
                self.walk_block(b);
                return;
            }
            ExprKind::If { cond, then, els } => {
                self.walk_expr(cond);
                self.walk_block(then);
                if let Some(els) = els {
                    self.walk_expr(els);
                }
                return;
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
                return;
            }
            ExprKind::For { iter, body } => {
                self.walk_expr(iter);
                self.walk_block(body);
                return;
            }
            ExprKind::Match { scrut, arms } => {
                self.walk_expr(scrut);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.walk_expr(g);
                    }
                    self.walk_expr(&arm.body);
                }
                return;
            }
            _ => {}
        }
        // Evaluate children first (receiver/args run before the outer
        // call), then classify this node.
        for child in expr_children(e) {
            self.walk_expr(child);
        }
        match &e.kind {
            ExprKind::MethodCall { name, args, name_tok: _, recv, .. } => {
                if let Some(label) = lock_acquisition(e) {
                    self.record_pairs_for(&label, e.span.line, e.span.col);
                    self.live.push(LiveGuard { label, binding: None, line: e.span.line });
                    return;
                }
                if BLOCKING_METHODS.contains(&(name.as_str(), args.len())) {
                    for g in self.live.iter().filter(|g| g.binding.is_some()) {
                        self.blocks.push(BlockEvent {
                            guard: g.label.clone(),
                            op: name.clone(),
                            file: self.file,
                            line: e.span.line,
                            col: e.span.col,
                            guard_line: g.line,
                        });
                    }
                }
                // One-level propagation through resolved method calls.
                if !self.live.is_empty() {
                    let callees = self.symbols.candidates_for_method(
                        self.file,
                        self.self_ty,
                        matches!(&recv.kind, ExprKind::Path(p) if p == "self"),
                        name,
                    );
                    self.propagate(&callees, e.span.line, e.span.col);
                }
            }
            ExprKind::Call { path, .. } if !self.live.is_empty() => {
                let callees = self.symbols.candidates_for_call(self.file, path);
                self.propagate(&callees, e.span.line, e.span.col);
            }
            _ => {}
        }
    }

    fn propagate(&mut self, callees: &[usize], line: u32, col: u32) {
        let mut seen: Vec<&str> = Vec::new();
        for &callee in callees {
            for b_label in &self.acquires_of[callee] {
                if !seen.contains(&b_label.as_str()) {
                    seen.push(b_label);
                    self.record_pairs_for(b_label, line, col);
                }
            }
        }
    }
}

/// Children of an expression, excluding block/control nodes (handled by
/// the caller) — used by the lock walker's evaluation-order traversal.
fn expr_children(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::Call { args, .. } | ExprKind::Macro { args, .. } => args.iter().collect(),
        ExprKind::MethodCall { recv, args, .. } => {
            let mut v: Vec<&Expr> = vec![recv];
            v.extend(args.iter());
            v
        }
        ExprKind::Field { base, .. } => vec![base],
        ExprKind::Index { base, index } => vec![base, index],
        ExprKind::Try(x) | ExprKind::Unary(x) => vec![x],
        ExprKind::Jump(x) => x.iter().map(|b| &**b).collect(),
        ExprKind::Chain(parts) | ExprKind::Tuple(parts) | ExprKind::Array(parts) => {
            parts.iter().collect()
        }
        ExprKind::StructLit { fields, .. } => fields.iter().collect(),
        _ => Vec::new(),
    }
}

fn lock_rules(
    symbols: &SymbolTable<'_>,
    ctxs: &[FileContext<'_>],
    enabled: &dyn Fn(&str) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    // Pass 1: per-fn acquisition sets (closures excluded) for one-level
    // propagation.
    let acquires_of: Vec<Vec<String>> = symbols
        .fns
        .iter()
        .map(|f| {
            let mut labels = Vec::new();
            if f.is_test {
                return labels;
            }
            if let Some(body) = &f.def.body {
                walk_no_closures(body, &mut |e| {
                    if let Some(label) = lock_acquisition(e) {
                        if !labels.contains(&label) {
                            labels.push(label);
                        }
                    }
                });
            }
            labels
        })
        .collect();

    // Pass 2: liveness walk per fn.
    let mut pairs = Vec::new();
    let mut blocks = Vec::new();
    for f in &symbols.fns {
        if f.is_test || symbols.files[f.file].is_test_file {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut w = LockWalk {
            symbols,
            acquires_of: &acquires_of,
            file: f.file,
            fn_name: &f.def.name,
            self_ty: f.self_ty,
            live: Vec::new(),
            pairs: Vec::new(),
            blocks: Vec::new(),
        };
        w.walk_block(body);
        pairs.extend(w.pairs);
        blocks.extend(w.blocks);
    }

    if enabled("lock-order-consistency") {
        // First observation of each direction; flag both sides of any
        // pair seen in both orders.
        let mut first: BTreeMap<(String, String), usize> = BTreeMap::new();
        for (i, p) in pairs.iter().enumerate() {
            first.entry((p.a.clone(), p.b.clone())).or_insert(i);
        }
        for ((a, b), &i) in &first {
            let Some(&j) = first.get(&(b.clone(), a.clone())) else { continue };
            let p = &pairs[i];
            let q = &pairs[j];
            push(
                &ctxs[p.file],
                "lock-order-consistency",
                p.line,
                p.col,
                format!(
                    "lock `{b}` acquired while `{a}` is held (in `{}`), but the opposite order \
                     occurs in `{}` at {}:{}; pick one acquisition order or deadlock under \
                     contention",
                    p.fn_name, q.fn_name, ctxs[q.file].rel_path, q.line
                ),
                out,
            );
        }
    }

    if enabled("guard-across-blocking-op") {
        let mut seen: Vec<(usize, u32, u32, String)> = Vec::new();
        for e in &blocks {
            let key = (e.file, e.line, e.col, e.guard.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            push(
                &ctxs[e.file],
                "guard-across-blocking-op",
                e.line,
                e.col,
                format!(
                    "`.{}()` while the `{}` guard (taken on line {}) is still live; a blocked \
                     channel op under a held lock deadlocks every other thread that needs it — \
                     drop the guard first",
                    e.op, e.guard, e.guard_line
                ),
                out,
            );
        }
    }
}

/// Whether a `let` initializer hands the acquired guard to the binding:
/// the acquisition is the outermost expression, possibly wrapped in
/// `unwrap`/`expect`/`?`/`&`. Anything deeper (`.lock().unwrap().len()`)
/// only holds the guard for the statement.
fn guard_escapes(e: &Expr) -> bool {
    if lock_acquisition(e).is_some() {
        return true;
    }
    match &e.kind {
        ExprKind::Try(inner) | ExprKind::Unary(inner) => guard_escapes(inner),
        ExprKind::MethodCall { recv, name, .. } if name == "unwrap" || name == "expect" => {
            guard_escapes(recv)
        }
        _ => false,
    }
}

/// Expression walk that skips closure bodies — used for the per-function
/// lock acquisition sets, where a closure's locks belong to whoever runs
/// the closure, not to the defining function's callers.
fn walk_no_closures<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    walk(e, f);
                }
                if let Some(b) = els {
                    walk_no_closures(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk(expr, f),
            Stmt::Item(_) => {}
        }
    }
    fn walk<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
        match &e.kind {
            ExprKind::Closure(_) => return,
            ExprKind::Block(b) | ExprKind::Loop(b) => {
                f(e);
                walk_no_closures(b, f);
                return;
            }
            ExprKind::If { cond, then, els } => {
                f(e);
                walk(cond, f);
                walk_no_closures(then, f);
                if let Some(x) = els {
                    walk(x, f);
                }
                return;
            }
            ExprKind::While { cond, body } => {
                f(e);
                walk(cond, f);
                walk_no_closures(body, f);
                return;
            }
            ExprKind::For { iter, body } => {
                f(e);
                walk(iter, f);
                walk_no_closures(body, f);
                return;
            }
            ExprKind::Match { scrut, arms } => {
                f(e);
                walk(scrut, f);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        walk(g, f);
                    }
                    walk(&arm.body, f);
                }
                return;
            }
            _ => {}
        }
        f(e);
        for child in expr_children(e) {
            walk(child, f);
        }
    }
}

// ---- nondeterministic-float-reduction ---------------------------------

fn float_reduction_exempt(rel: &str) -> bool {
    rel.contains("crates/tensor/src/")
        || rel.contains("crates/probe/")
        || rel.contains("crates/insight/")
}

/// The base variable a method chain hangs off: `m.values().map(f)` → `m`.
fn chain_base(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(p) => Some(p.as_str()),
        ExprKind::MethodCall { recv, .. } => chain_base(recv),
        ExprKind::Field { base, .. } => chain_base(base),
        ExprKind::Unary(x) | ExprKind::Try(x) => chain_base(x),
        ExprKind::Tuple(parts) if parts.len() == 1 => chain_base(&parts[0]),
        _ => None,
    }
}

/// Head of an initializer type: `HashMap::new()` / `HashMap::from(…)` →
/// `HashMap`.
fn init_type_head(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Call { path, .. } if path.len() >= 2 => Some(path[0].as_str()),
        ExprKind::MethodCall { recv, .. } => init_type_head(recv),
        _ => None,
    }
}

fn is_unordered_container(head: &str) -> bool {
    head == "HashMap" || head == "HashSet"
}

/// Whether a float-literal-ish expression seeds a `fold`.
fn float_seed(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Lit(text) => text.contains('.') || text.ends_with("f32") || text.ends_with("f64"),
        ExprKind::Path(p) => p.starts_with("f32::") || p.starts_with("f64::"),
        ExprKind::Unary(inner) => float_seed(inner),
        _ => false,
    }
}

/// Order-insensitive fold combinators: min/max commute, so iteration
/// order cannot change the result.
fn order_insensitive_combinator(e: &Expr) -> bool {
    matches!(
        &e.kind,
        ExprKind::Path(p) if matches!(p.as_str(), "f32::min" | "f32::max" | "f64::min" | "f64::max")
    )
}

fn nondeterministic_float_reduction(
    symbols: &SymbolTable<'_>,
    ctxs: &[FileContext<'_>],
    out: &mut Vec<Diagnostic>,
) {
    for f in &symbols.fns {
        let pf = &symbols.files[f.file];
        if f.is_test || pf.is_test_file || float_reduction_exempt(&pf.rel) {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        // Local bindings whose type is an unordered container, by name.
        let mut unordered_locals: Vec<String> = Vec::new();
        collect_unordered_locals(body, &mut unordered_locals);
        callgraph::walk_own_exprs(body, &mut |e| {
            let ExprKind::MethodCall { recv, name, name_tok, turbofish, args } = &e.kind else {
                return;
            };
            if !matches!(name.as_str(), "sum" | "fold" | "product") {
                return;
            }
            // Float evidence: a turbofish (`sum::<f32>()`) or a float fold
            // seed (`fold(0.0, …)` / `fold(f32::INFINITY, …)`).
            let float =
                turbofish.as_deref().is_some_and(|t| t.contains("f32") || t.contains("f64"))
                    || (name == "fold" && args.first().is_some_and(float_seed));
            if !float {
                return;
            }
            // min/max folds commute; order cannot matter.
            if name == "fold" && args.get(1).is_some_and(order_insensitive_combinator) {
                return;
            }
            // Order-unstable source: the chain bottoms out at a local
            // resolved to a HashMap/HashSet.
            let unstable =
                chain_base(recv).is_some_and(|base| unordered_locals.iter().any(|l| l == base));
            if !unstable {
                return;
            }
            let t = &pf.tokens[*name_tok];
            push(
                &ctxs[f.file],
                "nondeterministic-float-reduction",
                t.line,
                t.col,
                format!(
                    "float `.{name}()` over a HashMap/HashSet-backed iterator; hash iteration \
                     order varies between processes, so this reduction breaks the repo's \
                     bitwise-determinism contract — collect into a sorted order (or a BTreeMap) \
                     before reducing",
                ),
                out,
            );
        });
    }
}

/// Collects `let` bindings (this block and nested ones) whose type head —
/// annotation or initializer — is an unordered container.
fn collect_unordered_locals(block: &Block, out: &mut Vec<String>) {
    for_each_block(block, &mut |b| {
        for stmt in &b.stmts {
            let Stmt::Let { pat, ty_head, init, .. } = stmt else { continue };
            let annotated = ty_head.as_deref().is_some_and(is_unordered_container);
            let inferred =
                init.as_ref().and_then(init_type_head).is_some_and(is_unordered_container);
            if annotated || inferred {
                if let Some(name) =
                    pat.split_whitespace().find(|w| !matches!(*w, "mut" | "ref" | "&"))
                {
                    if !out.iter().any(|n| n == name) {
                        out.push(name.to_string());
                    }
                }
            }
        }
    });
}

// ---- discarded-result -------------------------------------------------

/// Whether a discarded call expression resolves to a `Result` return.
/// Returns the callee's display name when it does. Method resolution uses
/// the symbol table's same-crate boundary — `Option::expect` must not be
/// confused with some other crate's `fn expect`.
fn resolves_to_result(
    symbols: &SymbolTable<'_>,
    file: usize,
    caller_self_ty: Option<&str>,
    e: &Expr,
) -> Option<String> {
    match &e.kind {
        ExprKind::Call { path, .. } => {
            let name = path.last()?;
            // `std::fs::*` — external knowledge, never workspace-defined.
            if path.iter().any(|s| s == "fs") && FS_RESULT_FNS.contains(&name.as_str()) {
                return Some(format!("fs::{name}"));
            }
            let candidates = symbols.candidates_for_call(file, path);
            symbols.returns_result(&candidates).then(|| name.clone())
        }
        ExprKind::MethodCall { recv, name, args, .. } => {
            if STD_SHADOWED_METHODS.contains(&name.as_str()) {
                return None;
            }
            // Workspace definitions win over the external table: a local
            // `fn send(&self)` returning unit is not a channel send.
            let recv_is_self = matches!(&recv.kind, ExprKind::Path(p) if p == "self");
            let workspace = symbols.candidates_for_method(file, caller_self_ty, recv_is_self, name);
            if !workspace.is_empty() {
                return symbols.returns_result(&workspace).then(|| name.clone());
            }
            EXTERNAL_RESULT_METHODS.contains(&(name.as_str(), args.len())).then(|| name.clone())
        }
        _ => None,
    }
}

fn discarded_result(
    symbols: &SymbolTable<'_>,
    ctxs: &[FileContext<'_>],
    out: &mut Vec<Diagnostic>,
) {
    for f in &symbols.fns {
        let pf = &symbols.files[f.file];
        if f.is_test || pf.is_test_file {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        for_each_block(body, &mut |block| {
            for stmt in &block.stmts {
                let (expr, form) = match stmt {
                    Stmt::Let { pat, init: Some(e), .. } if pat == "_" => (e, "`let _ =`"),
                    Stmt::Expr { expr, semi: true } => (expr, "bare statement"),
                    _ => continue,
                };
                let Some(callee) = resolves_to_result(symbols, f.file, f.self_ty, expr) else {
                    continue;
                };
                push(
                    &ctxs[f.file],
                    "discarded-result",
                    expr.span.line,
                    expr.span.col,
                    format!(
                        "{form} silently discards the `Result` from `{callee}`; handle the \
                         error, propagate with `?`, or make a best-effort call explicit with \
                         `.ok()`",
                    ),
                    out,
                );
            }
        });
    }
}

/// Visits this block and every block nested in its expressions (closure
/// bodies and `let … else` blocks included, nested items excluded).
fn for_each_block<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Block)) {
    f(block);
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    expr_blocks(e, f);
                }
                if let Some(b) = els {
                    for_each_block(b, f);
                }
            }
            Stmt::Expr { expr, .. } => expr_blocks(expr, f),
            Stmt::Item(_) => {}
        }
    }
    fn expr_blocks<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Block)) {
        match &e.kind {
            ExprKind::Block(b) | ExprKind::Loop(b) => for_each_block(b, f),
            ExprKind::If { cond, then, els } => {
                expr_blocks(cond, f);
                for_each_block(then, f);
                if let Some(x) = els {
                    expr_blocks(x, f);
                }
            }
            ExprKind::While { cond, body } => {
                expr_blocks(cond, f);
                for_each_block(body, f);
            }
            ExprKind::For { iter, body } => {
                expr_blocks(iter, f);
                for_each_block(body, f);
            }
            ExprKind::Match { scrut, arms } => {
                expr_blocks(scrut, f);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        expr_blocks(g, f);
                    }
                    expr_blocks(&arm.body, f);
                }
            }
            ExprKind::Closure(inner) => expr_blocks(inner, f),
            _ => {
                for child in expr_children(e) {
                    expr_blocks(child, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_files(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources.iter().map(|(rel, src)| ParsedFile::parse(Path::new(rel), src)).collect()
    }

    fn run_all(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        check(&parse_files(sources), &|_| true)
    }

    fn run_rule(sources: &[(&str, &str)], rule: &str) -> Vec<Diagnostic> {
        check(&parse_files(sources), &|r| r == rule)
    }

    #[test]
    fn seeded_unwrap_three_deep_is_reached_with_chain() {
        let src = "\
pub struct Trainer;
impl Trainer {
    pub fn run(&self) { self.round(0); }
    fn round(&self, s: usize) { pack_refs(s); }
}
fn pack_refs(s: usize) { deep(s); }
fn deep(s: usize) { maybe(s).unwrap(); }
fn maybe(_s: usize) -> Option<u32> { None }";
        let diags = run_rule(&[("crates/dist/src/reachable.rs", src)], "dist-panic-reachability");
        let unwraps: Vec<_> = diags.iter().filter(|d| d.message.contains("`.unwrap()`")).collect();
        assert_eq!(unwraps.len(), 1, "{diags:?}");
        assert!(
            unwraps[0].message.contains("run → round → pack_refs → deep"),
            "chain missing: {}",
            unwraps[0].message
        );
        assert_eq!(unwraps[0].line, 7);
    }

    #[test]
    fn unreachable_panic_not_flagged_by_reachability() {
        let src = "fn orphan(x: Option<u32>) -> u32 { x.unwrap() }";
        let diags = run_rule(&[("crates/dist/src/x.rs", src)], "dist-panic-reachability");
        assert!(diags.is_empty(), "{diags:?}");
        // …but dist-no-panic still sees it.
        let diags = run_rule(&[("crates/dist/src/x.rs", src)], "dist-no-panic");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn reachability_sees_indexing_and_respects_suppression() {
        let src = "\
pub fn run_worker(xs: &[u32], i: usize) -> u32 {
    let a = xs[i];
    let b = xs[i + 1]; // lint:allow(dist-panic-reachability) — i+1 < len by construction
    a + b
}";
        let diags = run_rule(&[("crates/dist/src/w.rs", src)], "dist-panic-reachability");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("indexing `xs[…]`"));
    }

    #[test]
    fn test_code_is_invisible_to_reachability() {
        let src = "\
pub fn run_worker(x: Option<u32>) -> u32 { x.unwrap_or(0) }
#[cfg(test)]
mod tests {
    fn run(x: Option<u32>) { x.unwrap(); }
}";
        assert!(run_rule(&[("crates/dist/src/w.rs", src)], "dist-panic-reachability").is_empty());
    }

    #[test]
    fn dist_no_panic_ast_ignores_strings_and_tests() {
        let src = r##"
fn live(x: Option<u32>) -> u32 {
    let s = ".unwrap(";
    /* panic!("decoy") */
    let r = r#"panic!("x")"#;
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) { x.unwrap(); panic!("fine in tests"); }
}
"##;
        let diags = run_rule(&[("crates/dist/src/foo.rs", src)], "dist-no-panic");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn expect_and_macros_flagged() {
        let src = "fn f(x: Option<u32>) { x.expect(\"m\"); panic!(\"b\"); unreachable!() }";
        let diags = run_rule(&[("crates/dist/src/foo.rs", src)], "dist-no-panic");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "dist-no-panic"));
    }

    #[test]
    fn expect_method_name_without_call_not_flagged() {
        // `std::panic::catch_unwind` has `panic` as a path segment, not a
        // macro bang; a field named `expect` is not a call.
        let src = "fn f() { let _ = std::panic::catch_unwind(|| 1); let e = cfg.expect; }";
        assert!(run_rule(&[("crates/dist/src/foo.rs", src)], "dist-no-panic").is_empty());
    }

    #[test]
    fn dist_rules_do_not_apply_outside_dist() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }";
        assert!(run_rule(&[("crates/nn/src/foo.rs", src)], "dist-no-panic").is_empty());
        assert!(run_rule(&[("crates/nn/src/foo.rs", src)], "dist-panic-reachability").is_empty());
    }

    #[test]
    fn lock_order_inconsistency_flagged_both_sides() {
        let src = "\
fn ab(s: &S) {
    let g1 = s.a.lock();
    let g2 = s.b.lock();
    use_both(g1, g2);
}
fn ba(s: &S) {
    let g2 = s.b.lock();
    let g1 = s.a.lock();
    use_both(g1, g2);
}";
        let diags = run_rule(&[("crates/dist/src/l.rs", src)], "lock-order-consistency");
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.line == 3));
        assert!(diags.iter().any(|d| d.line == 8));
        assert!(diags[0].message.contains("opposite order"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "\
fn ab(s: &S) { let g1 = s.a.lock(); let g2 = s.b.lock(); use_both(g1, g2); }
fn ab2(s: &S) { let g1 = s.a.lock(); let g2 = s.b.lock(); use_both(g1, g2); }";
        assert!(run_rule(&[("crates/dist/src/l.rs", src)], "lock-order-consistency").is_empty());
    }

    #[test]
    fn lock_order_propagates_one_level() {
        let src = "\
fn outer(s: &S) {
    let g = s.a.lock();
    helper(s);
    drop(g);
}
fn helper(s: &S) { let h = s.b.lock(); use_it(h); }
fn reversed(s: &S) {
    let g = s.b.lock();
    let h = s.a.lock();
    use_both(g, h);
}";
        let diags = run_rule(&[("crates/dist/src/l.rs", src)], "lock-order-consistency");
        // outer: a → b (via helper); reversed: b → a. Both sides flagged.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.line == 3), "{diags:?}");
    }

    #[test]
    fn guard_across_recv_flagged_but_drop_releases() {
        let src = "\
fn bad(s: &S, rx: &Receiver<u32>) {
    let g = s.state.lock();
    let v = rx.recv();
    use_both(g, v);
}
fn good(s: &S, rx: &Receiver<u32>) {
    let g = s.state.lock();
    drop(g);
    let v = rx.recv();
    use_it(v);
}";
        let diags = run_rule(&[("crates/dist/src/g.rs", src)], "guard-across-blocking-op");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("`s.state`"));
    }

    #[test]
    fn guard_ends_at_block_boundary_and_closures_are_deferred() {
        let src = "\
fn scoped(s: &S, rx: &Receiver<u32>) {
    { let g = s.state.lock(); use_it(g); }
    let v = rx.recv();
    use_it(v);
}
fn deferred(s: &S, rx: &Receiver<u32>) {
    let g = s.spawned.lock();
    let work = move || rx.recv();
    use_both(g, work);
}";
        assert!(run_rule(&[("crates/dist/src/g.rs", src)], "guard-across-blocking-op").is_empty());
    }

    #[test]
    fn hashmap_float_sum_flagged_btreemap_and_slices_clean() {
        let src = "\
fn bad(xs: &[(u32, f32)]) -> f32 {
    let m: HashMap<u32, f32> = xs.iter().copied().collect();
    m.values().sum::<f32>()
}
fn good_btree(xs: &[(u32, f32)]) -> f32 {
    let m: BTreeMap<u32, f32> = xs.iter().copied().collect();
    m.values().sum::<f32>()
}
fn good_slice(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        let diags = run_rule(&[("crates/dist/src/f.rs", src)], "nondeterministic-float-reduction");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn minmax_folds_and_exempt_crates_are_clean() {
        let minmax = "\
fn extremes(xs: &[(u32, f32)]) -> f32 {
    let m = HashMap::from([(1u32, 1.0f32)]);
    m.values().fold(f32::INFINITY, f32::min)
}";
        assert!(run_rule(&[("crates/dist/src/f.rs", minmax)], "nondeterministic-float-reduction")
            .is_empty());
        let seeded_fold = "\
fn total(xs: &[(u32, f32)]) -> f32 {
    let m = HashMap::from([(1u32, 1.0f32)]);
    m.values().fold(0.0, |acc, v| acc + v)
}";
        assert_eq!(
            run_rule(&[("crates/dist/src/f.rs", seeded_fold)], "nondeterministic-float-reduction")
                .len(),
            1
        );
        // The deterministic kernels and the observability crates own their
        // reduction order.
        assert!(run_rule(
            &[("crates/tensor/src/kernel_sums.rs", seeded_fold)],
            "nondeterministic-float-reduction"
        )
        .is_empty());
        assert!(run_rule(
            &[("crates/probe/src/agg.rs", seeded_fold)],
            "nondeterministic-float-reduction"
        )
        .is_empty());
    }

    #[test]
    fn discarded_workspace_result_flagged() {
        let src = "\
fn save_all(p: &Path) -> DistResult<()> { Ok(()) }
fn caller(p: &Path) {
    let _ = save_all(p);
}";
        let diags = run_rule(&[("crates/dist/src/d.rs", src)], "discarded-result");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("save_all"));
    }

    #[test]
    fn discarded_sends_and_fs_flagged_ok_and_try_are_not() {
        let src = "\
fn notify(tx: &Sender<u32>) {
    let _ = tx.send(1);
    let _ = std::fs::remove_file(\"x\");
    tx.send(2).ok();
}
fn propagates(tx: &Sender<u32>) -> DistResult<()> {
    let _ = fallible()?;
    Ok(())
}
fn fallible() -> DistResult<u32> { Ok(1) }";
        let diags = run_rule(&[("crates/dist/src/d.rs", src)], "discarded-result");
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn non_result_discards_and_test_code_are_clean() {
        let src = "\
fn backward(&self) -> Tensor { Tensor }
fn warm(model: &M) {
    let _ = model.backward();
}
#[cfg(test)]
mod tests {
    fn t(tx: &Sender<u32>) { let _ = tx.send(1); }
}";
        assert!(run_rule(&[("crates/nn/src/d.rs", src)], "discarded-result").is_empty());
    }

    #[test]
    fn workspace_send_definition_overrides_external_table() {
        let src = "\
impl Bus { fn send(&self, v: u32) {} }
fn caller(bus: &Bus) { let _ = bus.send(1); }";
        assert!(run_rule(&[("crates/core/src/d.rs", src)], "discarded-result").is_empty());
    }

    #[test]
    fn rules_filter_limits_semantic_output() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }";
        let all = run_all(&[("crates/dist/src/x.rs", src)]);
        assert!(all.iter().any(|d| d.rule == "dist-no-panic"));
        let only = run_rule(&[("crates/dist/src/x.rs", src)], "discarded-result");
        assert!(only.is_empty());
    }
}
