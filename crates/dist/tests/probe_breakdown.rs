//! Satellite guarantee: the trainer's `EpochBreakdown` and the probe's
//! `dist`-category spans are the *same numbers* — `BreakdownAccumulator`
//! mirrors every duration it accumulates onto the trace, so the span sums
//! must equal the breakdown fields exactly (`Duration` equality, not
//! approximate). This file holds a single test because the probe's state
//! is process-global.

use puffer_compress::none::NoCompression;
use puffer_dist::cost::ClusterProfile;
use puffer_dist::fault::FaultPlan;
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RunOptions};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_probe as probe;
use puffer_tensor::Tensor;
use std::time::Duration;

fn mlp(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 16, true, seed).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(16, 3, true, seed + 1).unwrap()),
    ])
}

fn batches(n: usize, rows: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n)
        .map(|b| {
            let x = Tensor::randn(&[rows, 6], 1.0, 300 + b as u64);
            let labels = (0..rows).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

/// Sums the durations of every `dist`-category complete span with `name`.
fn span_sum(events: &[probe::TraceEvent], name: &str) -> Duration {
    events
        .iter()
        .filter(|e| e.phase == 'X' && e.cat == "dist" && e.name == name)
        .map(|e| e.dur)
        .sum()
}

#[test]
fn breakdown_equals_probe_span_sums_exactly() {
    probe::reset();
    probe::configure(probe::ProbeConfig::in_memory());

    // Inject a non-finite gradient so the run contains a skipped step:
    // its compute must appear in both the breakdown and the span sums
    // (the `EpochBreakdown::total` invariant), with no encode/comm/decode.
    let cfg = DistConfig {
        workers: 2,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(2),
    };
    let opts =
        RunOptions { faults: FaultPlan::new(11).with_nonfinite(0, 1), ..RunOptions::default() };
    let mut comp = NoCompression::new();
    let out = train_data_parallel_with(|_| mlp(21), &batches(4, 8), &mut comp, &cfg, &opts)
        .expect("faulty run must degrade, not fail");
    assert_eq!(out.breakdown.skipped_steps, 1, "the NaN step must be skipped");

    let events = probe::take_events();
    let b = out.breakdown;
    // The comm phase is named after its collective (NoCompression sums on
    // an allreduce), so per-collective histograms and α–β fits fall out of
    // the span family.
    assert_eq!(span_sum(&events, "compute"), b.compute, "compute spans ≠ breakdown.compute");
    assert_eq!(span_sum(&events, "encode"), b.encode, "encode spans ≠ breakdown.encode");
    assert_eq!(span_sum(&events, "allreduce"), b.comm, "allreduce spans ≠ breakdown.comm");
    assert_eq!(span_sum(&events, "decode"), b.decode, "decode spans ≠ breakdown.decode");
    // And therefore total() == the sum over all four phase span sums.
    let phases = ["compute", "encode", "allreduce", "decode"];
    let total: Duration = phases.iter().map(|p| span_sum(&events, p)).sum();
    assert_eq!(total, b.total(), "total() must equal the probe's phase span sum");
    // Every phase span carries its step, so a round can be reassembled
    // from the trace alone.
    assert!(events
        .iter()
        .filter(|e| e.phase == 'X' && e.cat == "dist" && phases.contains(&e.name))
        .all(|e| e.args.iter().any(|(k, _)| *k == "step")));

    // The skipped step's round played no encode/comm/decode: exactly one
    // compute span carries the skipped marker, and there is one fewer
    // encode span than compute spans.
    let skipped_spans = events
        .iter()
        .filter(|e| {
            e.phase == 'X' && e.name == "compute" && e.args.iter().any(|(k, _)| *k == "skipped")
        })
        .count();
    assert_eq!(skipped_spans, 1);
    let n = |name| {
        events.iter().filter(|e| e.phase == 'X' && e.cat == "dist" && e.name == name).count()
    };
    assert_eq!(n("compute"), n("encode") + 1);

    // The skip itself surfaced as a structured fault event with step
    // attribution.
    assert!(events.iter().any(|e| e.phase == 'i' && e.cat == "fault" && e.name == "step_skipped"));

    probe::reset();
}
