//! Noise-aware comparison of two `BENCH_*.json` documents.
//!
//! Every numeric leaf is classified by its key: timing suffixes
//! (`*_ns`/`*_us`/`*_ms`/`*_s`) are lower-better, throughput-shaped keys
//! (`gflops`, `speedup*`, `*throughput*`) are higher-better, boolean
//! `pass`/`all_pass` leaves are hard gates, and everything else is
//! informational. A metric only counts as a **regression** when it moves
//! in the bad direction by more than the relative threshold *and* by more
//! than an absolute noise floor (1 ms for timings), so micro-benchmarks
//! jittering around a few hundred microseconds cannot fail a build.
//!
//! Schema evolution is deliberately non-fatal: keys present on only one
//! side are reported as notes, never as regressions — a bench that gains
//! a field must not break the gate that compares it to an old baseline.

use puffer_probe::json::Json;

/// Default relative threshold: a bad-direction move under 40% is noise.
pub const DEFAULT_THRESHOLD: f64 = 0.4;

/// How a numeric leaf is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Smaller is better (timings); carries an absolute noise floor.
    LowerBetter,
    /// Larger is better (throughput, speedup).
    HigherBetter,
    /// Boolean gate: `true → false` is always a regression.
    Gate,
    /// Reported but never gated.
    Info,
}

/// Classifies a dotted-path leaf key and returns its kind plus the
/// absolute noise floor in the metric's own units.
#[must_use]
pub fn classify(path: &str) -> (MetricKind, f64) {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf == "pass" || leaf == "all_pass" {
        return (MetricKind::Gate, 0.0);
    }
    // Timing suffixes: floor is 1 ms expressed in the suffix's unit.
    if leaf.ends_with("_ns") {
        return (MetricKind::LowerBetter, 1e6);
    }
    if leaf.ends_with("_us") {
        return (MetricKind::LowerBetter, 1e3);
    }
    if leaf.ends_with("_ms") {
        return (MetricKind::LowerBetter, 1.0);
    }
    if leaf.ends_with("_s") {
        return (MetricKind::LowerBetter, 1e-3);
    }
    if leaf.contains("gflops") || leaf.contains("speedup") || leaf.contains("throughput") {
        return (MetricKind::HigherBetter, 0.0);
    }
    (MetricKind::Info, 0.0)
}

/// Comparison options.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative threshold for a bad-direction move (0.4 = 40%).
    pub threshold: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { threshold: DEFAULT_THRESHOLD }
    }
}

/// One compared numeric or boolean leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the leaf (array elements by index).
    pub path: String,
    /// Metric classification.
    pub kind: MetricKind,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// `new / old` (1.0 when the baseline is 0).
    pub ratio: f64,
    /// Bad-direction move beyond threshold and floor.
    pub regressed: bool,
    /// Good-direction move beyond threshold.
    pub improved: bool,
}

/// The full comparison of two documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every compared leaf.
    pub entries: Vec<DiffEntry>,
    /// Structural observations (added/removed keys, type changes) — never
    /// regressions.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// The leaves that regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regressed).collect()
    }

    /// Renders the comparison as a deterministic text table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let regressions = self.regressions();
        let _ = writeln!(
            out,
            "bench_diff: {} leaves compared, {} regression(s), {} note(s)",
            self.entries.len(),
            regressions.len(),
            self.notes.len()
        );
        for e in &self.entries {
            if !e.regressed && !e.improved {
                continue;
            }
            let _ = writeln!(
                out,
                "  [{}] {}: {} -> {} ({:+.1}%)",
                if e.regressed { "REGRESSED" } else { "improved" },
                e.path,
                fmt_num(e.old),
                fmt_num(e.new),
                (e.ratio - 1.0) * 100.0
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  [note] {n}");
        }
        if regressions.is_empty() {
            let _ = writeln!(out, "  ok: no regressions beyond threshold");
        }
        out
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

fn compare_leaf(path: &str, old: f64, new: f64, opts: DiffOptions, report: &mut DiffReport) {
    let (kind, floor) = classify(path);
    let ratio = if old == 0.0 {
        if new == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        new / old
    };
    let (regressed, improved) = match kind {
        MetricKind::LowerBetter => (
            new > old * (1.0 + opts.threshold) && (new - old) > floor,
            new < old / (1.0 + opts.threshold) && (old - new) > floor,
        ),
        MetricKind::HigherBetter => (
            new < old / (1.0 + opts.threshold) && (old - new) > floor,
            new > old * (1.0 + opts.threshold) && (new - old) > floor,
        ),
        MetricKind::Gate | MetricKind::Info => (false, false),
    };
    report.entries.push(DiffEntry {
        path: path.to_string(),
        kind,
        old,
        new,
        ratio,
        regressed,
        improved,
    });
}

fn walk(path: &str, old: &Json, new: &Json, opts: DiffOptions, report: &mut DiffReport) {
    match (old, new) {
        (Json::Obj(of), Json::Obj(nf)) => {
            for (k, ov) in of {
                match nf.iter().find(|(nk, _)| nk == k) {
                    Some((_, nv)) => walk(&join(path, k), ov, nv, opts, report),
                    None => report.notes.push(format!("{} removed in candidate", join(path, k))),
                }
            }
            for (k, _) in nf {
                if !of.iter().any(|(ok, _)| ok == k) {
                    report.notes.push(format!("{} added in candidate", join(path, k)));
                }
            }
        }
        (Json::Arr(oa), Json::Arr(na)) => {
            if oa.len() != na.len() {
                report.notes.push(format!("{path}: length {} -> {}", oa.len(), na.len()));
            }
            for (i, (ov, nv)) in oa.iter().zip(na.iter()).enumerate() {
                walk(&join(path, &i.to_string()), ov, nv, opts, report);
            }
        }
        (Json::Num(o), Json::Num(n)) => compare_leaf(path, *o, *n, opts, report),
        (Json::Bool(o), Json::Bool(n)) => {
            let (kind, _) = classify(path);
            let gate = kind == MetricKind::Gate;
            report.entries.push(DiffEntry {
                path: path.to_string(),
                kind,
                old: f64::from(u8::from(*o)),
                new: f64::from(u8::from(*n)),
                ratio: 1.0,
                regressed: gate && *o && !*n,
                improved: gate && !*o && *n,
            });
        }
        (Json::Str(o), Json::Str(n)) => {
            if o != n {
                report.notes.push(format!("{path}: \"{o}\" -> \"{n}\""));
            }
        }
        (Json::Null, Json::Null) => {}
        _ => report.notes.push(format!("{path}: type changed")),
    }
}

/// Compares two parsed bench documents.
#[must_use]
pub fn diff(old: &Json, new: &Json, opts: DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    walk("", old, new, opts, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_probe::json::parse;

    const BASELINE: &str = r#"{
      "bench": "gemm",
      "results": [
        {"m": 256, "kind": "square", "median_s": 0.0100, "gflops": 42.5, "speedup_vs_1_thread": 3.8},
        {"m": 512, "kind": "square", "median_s": 0.0800, "gflops": 40.1, "speedup_vs_1_thread": 3.6}
      ],
      "all_pass": true
    }"#;

    #[test]
    fn identical_documents_have_no_regressions() {
        let a = parse(BASELINE).unwrap();
        let rep = diff(&a, &a, DiffOptions::default());
        assert!(rep.regressions().is_empty(), "{}", rep.render());
        assert!(rep.notes.is_empty());
        assert!(rep.entries.len() >= 7, "numeric + gate leaves compared");
        // Deterministic rendering.
        assert_eq!(rep.render(), diff(&a, &a, DiffOptions::default()).render());
    }

    #[test]
    fn a_2x_time_regression_is_caught_and_attributed() {
        let a = parse(BASELINE).unwrap();
        let b = parse(&BASELINE.replace("\"median_s\": 0.0800", "\"median_s\": 0.1600")).unwrap();
        let rep = diff(&a, &b, DiffOptions::default());
        let regs = rep.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "results.1.median_s");
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
        assert!(rep.render().contains("REGRESSED"));
    }

    #[test]
    fn improvements_and_sub_threshold_noise_pass() {
        let a = parse(BASELINE).unwrap();
        // 2× faster + 20% slower elsewhere: both inside the gate.
        let b = parse(
            &BASELINE
                .replace("\"median_s\": 0.0800", "\"median_s\": 0.0400")
                .replace("\"median_s\": 0.0100", "\"median_s\": 0.0120"),
        )
        .unwrap();
        let rep = diff(&a, &b, DiffOptions::default());
        assert!(rep.regressions().is_empty(), "{}", rep.render());
        assert!(rep.entries.iter().any(|e| e.improved));
    }

    #[test]
    fn sub_floor_absolute_moves_never_regress() {
        // 3× relative but only 200µs absolute — below the 1ms floor.
        let a = parse("{\"warmup_s\": 0.0001}").unwrap();
        let b = parse("{\"warmup_s\": 0.0003}").unwrap();
        assert!(diff(&a, &b, DiffOptions::default()).regressions().is_empty());
        // Same move in a _us-suffixed key: 100µs → 300µs, still sub-floor.
        let a = parse("{\"apply_p99_us\": 100.0}").unwrap();
        let b = parse("{\"apply_p99_us\": 300.0}").unwrap();
        assert!(diff(&a, &b, DiffOptions::default()).regressions().is_empty());
        // But a macro move in the same key regresses.
        let b = parse("{\"apply_p99_us\": 90000.0}").unwrap();
        let a = parse("{\"apply_p99_us\": 10000.0}").unwrap();
        assert_eq!(diff(&a, &b, DiffOptions::default()).regressions().len(), 1);
    }

    #[test]
    fn throughput_metrics_gate_in_the_opposite_direction() {
        let a = parse(BASELINE).unwrap();
        let b = parse(&BASELINE.replace("\"gflops\": 42.5", "\"gflops\": 20.0")).unwrap();
        let rep = diff(&a, &b, DiffOptions::default());
        assert_eq!(rep.regressions().len(), 1);
        assert_eq!(rep.regressions()[0].path, "results.0.gflops");
        // Rising time-suffix metrics regress, rising throughput does not.
        let b = parse(&BASELINE.replace("\"gflops\": 42.5", "\"gflops\": 90.0")).unwrap();
        assert!(diff(&a, &b, DiffOptions::default()).regressions().is_empty());
    }

    #[test]
    fn gate_flips_and_schema_drift() {
        let a = parse(BASELINE).unwrap();
        let b = parse(&BASELINE.replace("\"all_pass\": true", "\"all_pass\": false")).unwrap();
        let rep = diff(&a, &b, DiffOptions::default());
        assert_eq!(rep.regressions().len(), 1);
        assert_eq!(rep.regressions()[0].path, "all_pass");
        // Added/removed keys are notes, not regressions.
        let b = parse(&BASELINE.replace("\"all_pass\": true", "\"all_pass\": true, \"extra\": 1"))
            .unwrap();
        let rep = diff(&a, &b, DiffOptions::default());
        assert!(rep.regressions().is_empty());
        assert_eq!(rep.notes.len(), 1);
        assert!(rep.notes[0].contains("added"));
    }

    #[test]
    fn custom_threshold_tightens_the_gate() {
        let a = parse("{\"step_ms\": 100.0}").unwrap();
        let b = parse("{\"step_ms\": 125.0}").unwrap();
        assert!(diff(&a, &b, DiffOptions::default()).regressions().is_empty(), "25% < 40%");
        let tight = DiffOptions { threshold: 0.1 };
        assert_eq!(diff(&a, &b, tight).regressions().len(), 1, "25% > 10%");
    }
}
