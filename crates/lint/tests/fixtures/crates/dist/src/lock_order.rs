//! Lock-order fixture: `ab` acquires `p.a` then `p.b` while `ba` reverses
//! the order (both sides must be flagged). The `c`/`d` pair reverses too,
//! but each conflicting site carries an allow; the test module reverses a
//! pair as well and must stay invisible.

use std::sync::Mutex;

#[derive(Default)]
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
    d: Mutex<u32>,
}

pub fn ab(p: &Pair) -> u32 {
    let ga = p.a.lock();
    let gb = p.b.lock();
    combine(&ga, &gb)
}

pub fn ba(p: &Pair) -> u32 {
    let gb = p.b.lock();
    let ga = p.a.lock();
    combine(&ga, &gb)
}

pub fn cd(p: &Pair) -> u32 {
    let gc = p.c.lock();
    // lint:allow(lock-order-consistency) — fixture: annotated half of a reversed pair
    let gd = p.d.lock();
    combine(&gc, &gd)
}

pub fn dc(p: &Pair) -> u32 {
    let gd = p.d.lock();
    // lint:allow(lock-order-consistency) — fixture: the other annotated half
    let gc = p.c.lock();
    combine(&gc, &gd)
}

fn combine(x: &u32, y: &u32) -> u32 {
    *x + *y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_order_in_tests_is_exempt() {
        let p = Pair::default();
        let gb = p.b.lock();
        let ga = p.a.lock();
        drop((ga, gb));
    }
}
