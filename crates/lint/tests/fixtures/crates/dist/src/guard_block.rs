//! Guard-across-blocking-op fixture: a channel send under a live mutex
//! guard, a suppressed variant, a drop-first variant, and a test-only
//! offender that must stay invisible.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Shared {
    inner: Mutex<u32>,
}

pub fn sends_under_guard(s: &Shared, tx: &Sender<u32>) {
    let g = s.inner.lock();
    tx.send(1).ok();
    drop(g);
}

pub fn suppressed(s: &Shared, tx: &Sender<u32>) {
    let g = s.inner.lock();
    // lint:allow(guard-across-blocking-op) — fixture: annotated as intentional
    tx.send(1).ok();
    drop(g);
}

pub fn drops_first(s: &Shared, tx: &Sender<u32>) {
    let g = s.inner.lock();
    drop(g);
    tx.send(1).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn guard_across_send_in_tests_is_exempt() {
        let s = Shared { inner: Mutex::new(0) };
        let (tx, rx) = channel();
        let g = s.inner.lock();
        tx.send(1).ok();
        drop((g, rx));
    }
}
