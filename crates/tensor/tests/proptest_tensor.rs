//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use puffer_tensor::f16::round_f16;
use puffer_tensor::matmul::{
    matmul, matmul_nt, matmul_tn, matmul_with_profile, parallel_threshold, set_parallel_threshold,
    MatmulProfile,
};
use puffer_tensor::pool::{num_threads, set_num_threads};
use puffer_tensor::stats::{l2_norm, rel_error, top_k_indices};
use puffer_tensor::svd::{svd_jacobi, truncated_svd};
use puffer_tensor::Tensor;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_involution(t in tensor_strategy(5, 7)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(4, 5),
        b in tensor_strategy(5, 3),
        c in tensor_strategy(5, 3),
    ) {
        let lhs = matmul(&a, &(&b + &c)).unwrap();
        let rhs = &matmul(&a, &b).unwrap() + &matmul(&a, &c).unwrap();
        prop_assert!(rel_error(&lhs, &rhs) < 1e-4);
    }

    #[test]
    fn matmul_transpose_identity(a in tensor_strategy(4, 6), b in tensor_strategy(4, 3)) {
        // (Aᵀ B) computed fused equals the explicit version.
        let fused = matmul_tn(&a, &b).unwrap();
        let explicit = matmul(&a.transpose(), &b).unwrap();
        prop_assert!(rel_error(&explicit, &fused) < 1e-4);
    }

    #[test]
    fn matmul_nt_identity(a in tensor_strategy(4, 6), b in tensor_strategy(3, 6)) {
        let fused = matmul_nt(&a, &b).unwrap();
        let explicit = matmul(&a, &b.transpose()).unwrap();
        prop_assert!(rel_error(&explicit, &fused) < 1e-4);
    }

    #[test]
    fn svd_reconstruction_and_orthogonality(a in tensor_strategy(8, 5)) {
        let f = svd_jacobi(&a).unwrap();
        prop_assert!(rel_error(&a, &f.reconstruct()) < 1e-3);
        // Singular values are non-increasing and non-negative.
        for w in f.s.windows(2) {
            prop_assert!(w[0] + 1e-5 >= w[1]);
        }
        prop_assert!(f.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn truncated_svd_error_never_exceeds_full_norm(a in tensor_strategy(8, 6)) {
        let f = truncated_svd(&a, 3).unwrap();
        let rec = f.reconstruct();
        let err = l2_norm(&(&a - &rec));
        prop_assert!(err <= l2_norm(&a) + 1e-3);
    }

    #[test]
    fn balanced_split_preserves_product(a in tensor_strategy(7, 6)) {
        let f = truncated_svd(&a, 4).unwrap();
        let (u, vt) = f.split_balanced();
        let prod = matmul(&u, &vt).unwrap();
        prop_assert!(rel_error(&f.reconstruct(), &prod) < 1e-3);
    }

    #[test]
    fn f16_round_is_monotone(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_f16(lo) <= round_f16(hi));
    }

    #[test]
    fn f16_error_bound(x in -60000.0f32..60000.0) {
        let r = round_f16(x);
        // Max relative error for normals, absolute bound for subnormals.
        let bound = (x.abs() * 2.0f32.powi(-10)).max(2.0f32.powi(-24));
        prop_assert!((r - x).abs() <= bound);
    }

    #[test]
    fn top_k_has_max_energy(v in proptest::collection::vec(-5.0f32..5.0, 1..40), k in 1usize..10) {
        let k = k.min(v.len());
        let abs: Vec<f32> = v.iter().map(|x| x.abs()).collect();
        let picked = top_k_indices(&abs, k);
        let picked_energy: f32 = picked.iter().map(|&i| abs[i] * abs[i]).sum();
        // Any other k-subset has no more energy: compare with sorted tail.
        let mut sorted = abs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let best: f32 = sorted[..k].iter().map(|x| x * x).sum();
        prop_assert!((picked_energy - best).abs() < 1e-4);
    }
}

proptest! {
    // Fewer cases than the block above: each case runs three full GEMMs at
    // up to ~101×260×130 under four thread counts.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_gemm_bitwise_deterministic_across_threads(
        idx in 0usize..4,
        seed in 0u64..500,
    ) {
        // Sizes straddle every level of the blocked engine: the MR=6 row
        // and NR=16 column micro-tiles, the KC=256 depth block (k=257/260
        // forces a second, short KC iteration), and the MC=96 row block.
        const SIZES: [(usize, usize, usize); 4] =
            [(1, 1, 1), (7, 257, 18), (96, 96, 96), (101, 260, 130)];
        let (m, k, n) = SIZES[idx];
        let a = Tensor::randn(&[m, k], 1.0, seed);
        let b = Tensor::randn(&[k, n], 1.0, seed.wrapping_add(1));
        let at = Tensor::randn(&[k, m], 1.0, seed.wrapping_add(2));
        let bt = Tensor::randn(&[n, k], 1.0, seed.wrapping_add(3));

        let prev_threshold = parallel_threshold();
        let prev_threads = num_threads();
        // Threshold 0 forces even the 1×1 case through the pool dispatch
        // path, so partitioning logic itself is exercised at every size.
        set_parallel_threshold(0);

        let mut reference = None;
        for &t in &[1usize, 2, 4, 8] {
            set_num_threads(t);
            let c = matmul_with_profile(&a, &b, MatmulProfile::Optimized).unwrap();
            let tn = matmul_tn(&at, &b).unwrap();
            let nt = matmul_nt(&a, &bt).unwrap();
            match &reference {
                None => reference = Some((c, tn, nt)),
                Some((c1, tn1, nt1)) => {
                    // Bitwise equality: Tensor PartialEq compares raw f32s.
                    prop_assert_eq!(c1, &c, "matmul differs at {} threads", t);
                    prop_assert_eq!(tn1, &tn, "matmul_tn differs at {} threads", t);
                    prop_assert_eq!(nt1, &nt, "matmul_nt differs at {} threads", t);
                }
            }
        }

        set_num_threads(prev_threads);
        set_parallel_threshold(prev_threshold);
    }
}

#[test]
fn conv_and_elementwise_bitwise_deterministic_across_threads() {
    use puffer_tensor::conv::{col2im, im2col, ConvGeometry};

    let geo = ConvGeometry { c_in: 3, h: 13, w: 11, k: 3, stride: 2, padding: 1 };
    let x = Tensor::randn(&[2, 3, 13, 11], 1.0, 77);
    let cols_grad = Tensor::randn(&[geo.patch_rows(), 2 * geo.h_out() * geo.w_out()], 1.0, 78);
    let big = Tensor::randn(&[517, 123], 1.0, 79);

    let prev_threshold = parallel_threshold();
    let prev_threads = num_threads();
    set_parallel_threshold(0);

    let mut reference = None;
    for &t in &[1usize, 2, 8] {
        set_num_threads(t);
        let cols = im2col(&x, &geo).unwrap();
        let img = col2im(&cols_grad, &geo, 2).unwrap();
        let mapped = big.map(|v| v * 1.5 - 0.25);
        let mut scaled = big.clone();
        scaled.scale(0.125);
        let mut axpyd = big.clone();
        axpyd.axpy(-0.5, &mapped).unwrap();
        let state = (cols, img, mapped, scaled, axpyd);
        match &reference {
            None => reference = Some(state),
            Some(r) => assert_eq!(r, &state, "threaded kernels diverged at {t} threads"),
        }
    }

    set_num_threads(prev_threads);
    set_parallel_threshold(prev_threshold);
}
