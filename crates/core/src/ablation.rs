//! The paper's accuracy-mitigation ablation (Tables 8, 9, 21, 22):
//! low-rank-from-scratch vs hybrid-without-warm-up vs hybrid-with-warm-up,
//! averaged over seeds.

use crate::report::TrainReport;
use crate::trainer::{train, ModelPlan, TrainConfig};
use puffer_data::images::ImageDataset;
use puffer_models::resnet::{ResNet, ResNetConfig, ResNetHybridPlan};
use puffer_nn::Result;

/// The three configurations of the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationArm {
    /// Every factorizable layer low-rank, random init, no warm-up
    /// ("Low-rank" rows of Tables 8/21/22).
    LowRankFromScratch,
    /// Hybrid architecture, random factor init, no warm-up.
    HybridNoWarmup,
    /// Hybrid architecture with vanilla warm-up (full Pufferfish).
    HybridWithWarmup,
}

impl AblationArm {
    /// All three arms in table order.
    pub fn all() -> [AblationArm; 3] {
        [
            AblationArm::LowRankFromScratch,
            AblationArm::HybridNoWarmup,
            AblationArm::HybridWithWarmup,
        ]
    }

    /// Paper row label.
    pub fn label(&self) -> &'static str {
        match self {
            AblationArm::LowRankFromScratch => "Low-rank (from scratch)",
            AblationArm::HybridNoWarmup => "Hybrid (wo. vanilla warm-up)",
            AblationArm::HybridWithWarmup => "Hybrid (w. vanilla warm-up)",
        }
    }
}

/// Result of one arm averaged across seeds.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Which arm.
    pub arm: AblationArm,
    /// Mean final test loss across seeds.
    pub mean_loss: f32,
    /// Std-dev of final test loss.
    pub std_loss: f32,
    /// Mean final test accuracy.
    pub mean_accuracy: f32,
    /// Std-dev of final test accuracy.
    pub std_accuracy: f32,
    /// Reports per seed.
    pub reports: Vec<TrainReport>,
}

/// Runs one ablation arm on a scaled ResNet-18 across `seeds`.
///
/// # Errors
///
/// Propagates trainer errors.
pub fn run_resnet18_arm(
    arm: AblationArm,
    data: &ImageDataset,
    scale: f32,
    epochs: usize,
    warmup_epochs: usize,
    rank_ratio: f32,
    seeds: &[u64],
) -> Result<AblationResult> {
    let mut losses = Vec::new();
    let mut accs = Vec::new();
    let mut reports = Vec::new();
    for &seed in seeds {
        let net = ResNet::new(ResNetConfig::resnet18(scale, data.config().classes, seed))?;
        let (plan, warmup) = match arm {
            AblationArm::LowRankFromScratch => {
                (ModelPlan::ResNetHybrid(ResNetHybridPlan::all_layers(rank_ratio)), 0)
            }
            AblationArm::HybridNoWarmup => {
                let mut p = ResNetHybridPlan::resnet18_paper();
                p.rank_ratio = rank_ratio;
                (ModelPlan::ResNetHybrid(p), 0)
            }
            AblationArm::HybridWithWarmup => {
                let mut p = ResNetHybridPlan::resnet18_paper();
                p.rank_ratio = rank_ratio;
                (ModelPlan::ResNetHybrid(p), warmup_epochs)
            }
        };
        let mut cfg = TrainConfig::cifar_small(epochs, warmup);
        cfg.seed = seed;
        let out = train(net, plan, data, &cfg)?;
        losses.push(out.report.final_eval_loss());
        accs.push(out.report.final_test_accuracy());
        reports.push(out.report);
    }
    let (mean_loss, std_loss) = mean_std(&losses);
    let (mean_accuracy, std_accuracy) = mean_std(&accs);
    Ok(AblationResult { arm, mean_loss, std_loss, mean_accuracy, std_accuracy, reports })
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f32>() / xs.len() as f32;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_data::images::ImageDatasetConfig;

    #[test]
    fn arms_have_labels() {
        for arm in AblationArm::all() {
            assert!(!arm.label().is_empty());
        }
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn ablation_arm_runs_end_to_end() {
        let data = ImageDataset::generate(ImageDatasetConfig {
            classes: 3,
            channels: 3,
            size: 16,
            train: 48,
            test: 24,
            noise: 0.2,
            seed: 9,
        });
        let res = run_resnet18_arm(AblationArm::HybridWithWarmup, &data, 0.0625, 2, 1, 0.25, &[1])
            .unwrap();
        assert_eq!(res.reports.len(), 1);
        assert_eq!(res.reports[0].switch_epoch, Some(1));
        assert!(res.mean_loss.is_finite());
    }

    #[test]
    fn low_rank_arm_is_smallest() {
        let data = ImageDataset::generate(ImageDatasetConfig {
            classes: 3,
            channels: 3,
            size: 16,
            train: 24,
            test: 12,
            noise: 0.2,
            seed: 10,
        });
        let lr = run_resnet18_arm(AblationArm::LowRankFromScratch, &data, 0.0625, 1, 0, 0.25, &[1])
            .unwrap();
        let hy =
            run_resnet18_arm(AblationArm::HybridNoWarmup, &data, 0.0625, 1, 0, 0.25, &[1]).unwrap();
        assert!(
            lr.reports[0].hybrid_params < hy.reports[0].hybrid_params,
            "all-low-rank must be smaller than the hybrid"
        );
    }
}
