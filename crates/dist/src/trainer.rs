//! A real multi-threaded, fault-tolerant, **elastic** data-parallel
//! trainer.
//!
//! Worker threads each hold an identical model replica and a shard of
//! every global batch. Per step: the aggregator broadcasts a `Step`
//! message naming the round and the current member set, workers compute
//! real gradients (forward/backward), the aggregator plays one
//! compression round (exact mean for vanilla SGD), and every worker
//! applies the same update — the synchronous data-parallel SGD the
//! paper's prototype implements with allreduce. Communication cost is
//! accounted by the α–β model; computation and encode/decode are measured
//! wall-clock.
//!
//! On top of that baseline the trainer is **fault-tolerant**
//! ([`train_data_parallel_with`]): a seeded [`FaultPlan`] injects
//! stragglers, crashes, dropped/corrupted messages and non-finite
//! gradients, and the aggregator degrades gracefully instead of
//! panicking — it times slow workers out with bounded retry/backoff,
//! detects crashed workers by probing their channels, re-normalizes the
//! gradient mean over the survivors, skips steps with non-finite
//! gradients (AMP-style), and periodically checkpoints parameters +
//! optimizer momentum + compressor state so a killed run can resume
//! **bitwise identically** ([`crate::checkpoint::DistCheckpoint`]).
//!
//! It is also **elastic** ([`crate::membership`]): a
//! [`MembershipPlan`] schedules mid-run joins and voluntary leaves.
//! A joiner is admitted at a round boundary for which the aggregator
//! holds catch-up state (the checkpoint-leader snapshot of the previous
//! round): it loads parameters + momentum + buffers from the latest
//! checkpoint (the on-disk PUFT file when the boundary is a periodic
//! checkpoint, an in-memory copy otherwise), takes over a re-sharded
//! slice of the remaining data stream, and enters lockstep at the next
//! `Step` broadcast. Departures — voluntary or crash — shrink the active
//! set the same way, and [`crate::cost::HeteroProfile`] re-prices α/β for
//! whatever member set is live each round.
//!
//! Gradient exchange is **bucketed** ([`crate::bucket`]): every worker
//! splits its packed flat gradient into size-targeted buckets
//! ([`RunOptions::bucket_bytes`] / `PUFFER_BUCKET_BYTES`), assigned by
//! walking the layer list in reverse so the first buckets to fill are the
//! first the backward pass finalizes — each bucket ships as its own
//! message the moment backward reaches it, and the aggregator reduces a
//! bucket eagerly once every expected member delivered it. The apply
//! order is pinned (worker-id order per bucket, buckets concatenated),
//! so the final parameters are **bitwise identical** to the
//! one-flat-bucket run at any bucket size, worker count, or collective
//! algorithm; the default (`usize::MAX`) *is* the one-flat-bucket run.
//! Per-bucket communication is priced by the selected
//! [`CollectiveAlgo`] (ring, binary tree, or two-level hierarchical —
//! [`RunOptions::collective`] / `PUFFER_COLLECTIVE`) and laid on an
//! overlap timeline against the measured per-bucket readiness offsets:
//! the share of comm hidden under still-running backward is *overlapped*,
//! the remainder is *exposed* ([`EpochBreakdown::comm_exposed`]).
//! Compressors that cannot aggregate per-bucket
//! ([`GradCompressor::supports_bucketed_overlap`] is false) still ride
//! the bucketed transport: the aggregator reassembles each worker's flat
//! buffer and plays the classic whole-tensor round, with all comm
//! exposed.
//!
//! Worker compute runs on `puffer-tensor`'s threaded kernels; for the
//! duration of a run the tensor pool is capped so that
//! `members × pool threads` does not oversubscribe the hardware
//! (`PUFFER_NUM_THREADS` still sets the outer bound). The cap is
//! re-priced on every membership epoch change and restored by an RAII
//! guard even if the run errors (see [`PoolWidthGuard`], which lives in
//! the membership module — the only place allowed to touch pool width).

use crate::breakdown::{round_comm_time, BreakdownAccumulator, BucketComm, EpochBreakdown};
use crate::bucket::{BucketPlan, BucketedReducer, ReadyTracker};
use crate::checkpoint::DistCheckpoint;
use crate::cost::{hier_group, ClusterProfile, CollectiveAlgo};
use crate::error::{DistError, DistResult};
use crate::fault::{any_nonfinite, message_checksum, FaultPlan, FaultReport};
use crate::membership::{
    MemberEvent, MemberEventKind, Membership, MembershipPlan, EV_CATCH_UP, EV_CRASHED, EV_JOINED,
    EV_LEFT, PROBE_CATEGORY, ROW_TYPE,
};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use puffer_compress::pack::{pack_refs_with, unpack, PackLayout};
use puffer_compress::{AggregationKind, GradCompressor, RoundStats};
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_nn::optim::Sgd;
use puffer_probe as probe;
use puffer_tensor::Tensor;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

pub use crate::membership::PoolWidthGuard;

/// Configuration of a data-parallel run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Initial worker (node) count; workers `0..workers` are active at
    /// step 0. A [`MembershipPlan`] may add ids beyond this range mid-run.
    pub workers: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Cluster profile for communication accounting.
    pub profile: ClusterProfile,
}

impl DistConfig {
    /// A `workers`-node run with the paper's CNN hyper-parameters on a
    /// p3-like network.
    pub fn p3(workers: usize, lr: f32) -> Self {
        DistConfig {
            workers,
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            profile: ClusterProfile::p3_like(workers),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidConfig`] for zero workers, non-finite
    /// hyper-parameters, or a malformed cluster profile.
    pub fn validate(&self) -> DistResult<()> {
        if self.workers == 0 {
            return Err(DistError::InvalidConfig { reason: "workers must be at least 1".into() });
        }
        for (name, v) in
            [("lr", self.lr), ("momentum", self.momentum), ("weight_decay", self.weight_decay)]
        {
            if !v.is_finite() {
                return Err(DistError::InvalidConfig {
                    reason: format!("{name} must be finite, got {v}"),
                });
            }
        }
        let ok = self.profile.alpha.is_finite()
            && self.profile.alpha >= 0.0
            && self.profile.beta.is_finite()
            && self.profile.beta >= 0.0;
        if !ok {
            return Err(DistError::InvalidConfig {
                reason: "profile α/β must be finite and non-negative".into(),
            });
        }
        Ok(())
    }
}

/// How the aggregator reacts to slow or silent workers.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// How long the aggregator waits for a step's contributions before
    /// probing for crashes.
    pub step_timeout: Duration,
    /// How many timeout rounds to grant before declaring missing
    /// contributions lost and degrading around them.
    pub max_retries: u32,
    /// Multiplicative backoff applied to the timeout per retry round.
    pub backoff: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { step_timeout: Duration::from_secs(5), max_retries: 3, backoff: 2.0 }
    }
}

impl RecoveryPolicy {
    fn validate(&self) -> DistResult<()> {
        if self.step_timeout == Duration::ZERO {
            return Err(DistError::InvalidConfig {
                reason: "step_timeout must be positive".into(),
            });
        }
        if !self.backoff.is_finite() || self.backoff < 1.0 {
            return Err(DistError::InvalidConfig { reason: "backoff must be ≥ 1".into() });
        }
        Ok(())
    }
}

/// Environment variable naming the gradient bucket size in bytes for
/// comm/compute overlap (consulted when [`RunOptions::bucket_bytes`] is
/// `None`; unset or unparsable means one flat bucket).
pub const ENV_BUCKET_BYTES: &str = "PUFFER_BUCKET_BYTES";

/// Robustness knobs of a run: fault injection, recovery, heterogeneous
/// cost accounting, checkpoint/resume, and elastic membership. The
/// default is a clean static-fleet run on a homogeneous cluster with no
/// checkpointing — exactly the pre-fault trainer.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Faults to inject (deterministic, seeded).
    pub faults: FaultPlan,
    /// Timeout/retry policy for slow or dead workers.
    pub recovery: RecoveryPolicy,
    /// Per-node network parameters; `None` prices every round with
    /// `cfg.profile` (node count still tracks the live member set).
    pub hetero: Option<crate::cost::HeteroProfile>,
    /// Periodic checkpointing policy.
    pub checkpoint: crate::checkpoint::CheckpointPolicy,
    /// Resume from this checkpoint instead of starting at step 0.
    pub resume: Option<DistCheckpoint>,
    /// Scheduled joins and voluntary leaves (deterministic churn).
    pub membership: MembershipPlan,
    /// Gradient bucket size in bytes: the flat buffer is split into
    /// DDP-style buckets assigned in reverse-backward order, each sent
    /// (and, when the compressor allows it, reduced and priced) as soon
    /// as its gradients are final. `None` consults [`ENV_BUCKET_BYTES`],
    /// defaulting to `usize::MAX` — one bucket, byte- and
    /// timeline-identical to the synchronous flat path. `Some(0)` is
    /// rejected by validation.
    pub bucket_bytes: Option<usize>,
    /// Collective algorithm pricing the overlap-eligible allreduce rounds
    /// (ring, binary tree, or two-level hierarchical). Changes *pricing*
    /// only — the reduction arithmetic is pinned, so final parameters are
    /// bitwise-identical across algorithms. `None` consults
    /// [`crate::cost::ENV_COLLECTIVE`], defaulting to ring.
    pub collective: Option<CollectiveAlgo>,
}

impl RunOptions {
    /// The effective bucket size: the explicit option, else the
    /// environment, else one flat bucket.
    fn resolve_bucket_bytes(&self) -> DistResult<usize> {
        match self.bucket_bytes {
            Some(0) => {
                Err(DistError::InvalidConfig { reason: "bucket_bytes must be nonzero".into() })
            }
            Some(b) => Ok(b),
            None => Ok(std::env::var(ENV_BUCKET_BYTES)
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&b| b > 0)
                .unwrap_or(usize::MAX)),
        }
    }

    /// The effective collective: the explicit option, else the
    /// environment, else ring.
    fn resolve_collective(&self) -> CollectiveAlgo {
        self.collective.or_else(CollectiveAlgo::from_env).unwrap_or_default()
    }
}

/// Result of a data-parallel run.
#[derive(Debug)]
pub struct DistOutcome {
    /// Accumulated compute/encode/comm/decode decomposition.
    pub breakdown: EpochBreakdown,
    /// Mean training loss per executed step (over the contributing
    /// workers; `NaN` for steps where every contribution was lost).
    pub step_losses: Vec<f32>,
    /// Final parameter values of the lowest-indexed surviving replica
    /// (all survivors are bitwise identical).
    pub final_params: Vec<Tensor>,
    /// Account of every degradation the run absorbed.
    pub faults: FaultReport,
    /// Paths of the checkpoints written during the run, in step order.
    pub checkpoints: Vec<PathBuf>,
    /// Membership transition audit log (joins, rejoins, leaves, crashes)
    /// in occurrence order; empty for a static clean run.
    pub membership: Vec<MemberEvent>,
    /// Membership epoch at the end of the run.
    pub final_epoch: u64,
}

/// One bucket of one worker's per-step gradient contribution. The full
/// flat buffer (the paper's single-allreduce pack, §4.1, encoded straight
/// from the live `Param::grad` borrows) is split into [`BucketPlan`]
/// buckets in reverse-backward order; each travels as its own message
/// with its own checksum and readiness offset, so the aggregator can
/// start reducing (and the α–β timeline can start pricing) a bucket
/// before the sender's remaining buckets even exist. The default plan is
/// one bucket — exactly the old flat protocol. The layout is derived once
/// per worker and shared by reference.
struct GradMsg {
    worker: usize,
    step: usize,
    /// Bucket index in [`BucketPlan`] ready order.
    bucket: usize,
    /// Total buckets this round (protocol check: must match the
    /// aggregator's own plan).
    buckets: usize,
    /// This bucket's slice of the flat gradient buffer.
    payload: Tensor,
    layout: Arc<PackLayout>,
    /// Microseconds into the worker's compute at which this bucket's
    /// gradients were final (straggler delay included, clamped to the
    /// total compute time) — drives the modeled overlap timeline.
    ready_us: u64,
    loss: f32,
    compute: Duration,
    /// FNV-1a over this bucket's payload only: corruption rejects the
    /// whole contribution but is *detected* per bucket.
    checksum: u64,
}

enum WorkerMsg {
    Grads(GradMsg),
    Fatal { worker: usize, reason: String },
}

/// Aggregator-side per-worker round bookkeeping: the scalar metadata of a
/// contribution whose payload lives in the [`BucketedReducer`] slot.
struct Contribution {
    loss: f32,
    compute: Duration,
    /// Per-bucket readiness offsets (µs into the worker's compute).
    ready_us: Vec<u64>,
}

#[derive(Clone)]
enum AggMsg {
    /// Begin round `step` under membership `epoch`. `members` is the
    /// ascending active set; a worker re-shards its slice of the stream
    /// when its (rank, member count) changes.
    Step { step: usize, epoch: u64, members: Arc<Vec<usize>> },
    /// Apply this aggregated gradient (packed flat, same layout as the
    /// worker's own contribution); if `snapshot`, report post-update
    /// state for checkpointing/catch-up.
    Mean { flat: Tensor, snapshot: bool },
    /// Skip this step without updating (non-finite guard tripped or no
    /// usable contribution survived); if `snapshot`, report the — still
    /// valid — unchanged state.
    Skip { snapshot: bool },
    /// Liveness probe; carries no state change.
    Ping,
    /// Retire voluntarily: exit now without reporting final parameters.
    Retire,
    /// The run is over: report final parameters and exit.
    Finish,
}

/// Where a mid-run joiner obtains its catch-up state.
enum CatchUp {
    /// Load the periodic checkpoint file written at the admission
    /// boundary (the "latest PUFT checkpoint" path).
    Disk(PathBuf),
    /// The same state handed over in memory (checkpointing to disk is
    /// disabled or the boundary is not a periodic one).
    Memory(Arc<DistCheckpoint>),
}

/// Final parameters reported by a finished worker: `(worker index, params)`.
type FinalParams = (usize, Vec<Tensor>);

/// Post-update state reported by the checkpoint leader:
/// `(next step, params, velocity, buffers)`.
type Snapshot = (usize, Vec<Tensor>, Vec<Tensor>, Vec<Tensor>);

/// Runs synchronous data-parallel SGD over `global_batches` with no
/// injected faults and default recovery (see
/// [`train_data_parallel_with`]).
///
/// `factory(worker)` must build **identical** replicas for every worker
/// (same seed). Each global batch is split row-wise into equal member
/// shards (trailing remainder rows are dropped, as with PyTorch's
/// DistributedSampler padding semantics).
///
/// # Errors
///
/// Returns [`DistError::InvalidConfig`] / [`DistError::BatchTooSmall`] on
/// bad inputs and the other [`DistError`] variants on runtime failures.
pub fn train_data_parallel<M, F>(
    factory: F,
    global_batches: &[(Tensor, Vec<usize>)],
    compressor: &mut dyn GradCompressor,
    cfg: &DistConfig,
) -> DistResult<DistOutcome>
where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    train_data_parallel_with(factory, global_batches, compressor, cfg, &RunOptions::default())
}

/// Runs synchronous data-parallel SGD with fault injection, graceful
/// degradation, heterogeneous cost accounting, checkpoint/resume, and
/// elastic membership.
///
/// Fault semantics (see [`FaultPlan`]):
///
/// * **stragglers** stretch a worker's measured compute (a real sleep);
///   the aggregator waits `recovery.step_timeout` with bounded
///   retry/backoff, then degrades around the missing contribution;
/// * **crashed** workers are detected by probing their channels; the
///   member is dropped and the gradient mean is re-normalized over the
///   survivors (the compression round only sees collected contributions);
/// * **corrupted** messages fail their checksum and are discarded (the
///   sender stays live);
/// * **non-finite** gradients trip an AMP-style guard: the step is
///   skipped on every replica (no optimizer update anywhere) and recorded
///   in the breakdown, keeping replicas in lockstep.
///
/// Membership semantics (see [`MembershipPlan`]):
///
/// * a **join** scheduled at step `s` is admitted at the first round
///   boundary `u ≥ max(s, start + 1)` for which the aggregator holds a
///   leader snapshot of the previous round; the joiner catches up from
///   that state (the on-disk checkpoint when the boundary is a periodic
///   one) and participates from round `u` on;
/// * a **leave** scheduled at step `s` retires the member before round
///   `s` begins; it reports no final parameters;
/// * every transition bumps the membership **epoch**; workers re-shard
///   the remaining data stream over the new member set, the tensor-pool
///   width cap is re-priced, and [`crate::cost::HeteroProfile`] prices
///   each round for the members actually live.
///
/// The run errors only when it cannot possibly continue: every worker is
/// dead, a worker reports a fatal error, a thread panics, a checkpoint
/// cannot be written, or the churn schedule is inconsistent with reality
/// (e.g. a join targeting an active member).
///
/// # Errors
///
/// See [`DistError`].
pub fn train_data_parallel_with<M, F>(
    factory: F,
    global_batches: &[(Tensor, Vec<usize>)],
    compressor: &mut dyn GradCompressor,
    cfg: &DistConfig,
    opts: &RunOptions,
) -> DistResult<DistOutcome>
where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    cfg.validate()?;
    opts.recovery.validate()?;
    let bucket_bytes = opts.resolve_bucket_bytes()?;
    let collective = opts.resolve_collective();
    let plan = &opts.membership;
    plan.validate()?;
    let steps = global_batches.len();

    // The largest fleet the run can ever assemble: the initial workers
    // plus every planned joiner. Batches, the hetero profile, and leave
    // targets are all validated against it up front.
    let mut all_ids: BTreeSet<usize> = (0..cfg.workers).collect();
    all_ids.extend(plan.join_ids());
    let max_fleet = all_ids.len();
    for b in global_batches {
        let rows = b.1.len();
        if rows < max_fleet {
            return Err(DistError::BatchTooSmall { rows, workers: max_fleet });
        }
    }
    if let Some(w) = plan.leave_ids().into_iter().find(|w| !all_ids.contains(w)) {
        return Err(DistError::Membership {
            reason: format!(
                "worker {w} is scheduled to leave but is neither an initial worker nor a \
                 planned joiner"
            ),
        });
    }
    if let Some(h) = &opts.hetero {
        let ids: Vec<usize> = all_ids.iter().copied().collect();
        h.validate_members(&ids)?;
    }

    let start_step = match &opts.resume {
        Some(ck) => {
            if ck.step > steps {
                return Err(DistError::Checkpoint {
                    reason: format!(
                        "checkpoint resumes at step {} but the run has only {steps} batches",
                        ck.step
                    ),
                });
            }
            if !compressor.restore_state(&ck.compressor) {
                return Err(DistError::Checkpoint {
                    reason: format!(
                        "compressor {} rejected the checkpoint state",
                        compressor.name()
                    ),
                });
            }
            ck.step
        }
        None => 0,
    };

    // The member set the run starts with: a checkpoint with a recorded
    // member list restores exactly that fleet (and continues its epoch
    // sequence); a legacy checkpoint — or a fresh run — activates all
    // configured workers.
    let membership = match &opts.resume {
        Some(ck) if !ck.members.is_empty() => {
            if let Some(&w) = ck.members.iter().find(|w| !all_ids.contains(w)) {
                return Err(DistError::Membership {
                    reason: format!(
                        "checkpoint member {w} is neither an initial worker nor a planned joiner"
                    ),
                });
            }
            Membership::with_epoch(ck.members.iter().copied(), ck.epoch)
        }
        _ => Membership::new(0..cfg.workers),
    };

    let mut pool_guard = PoolWidthGuard::cap_for(membership.active_count());

    let (to_agg, from_workers): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();
    let (param_tx, param_rx): (Sender<FinalParams>, Receiver<FinalParams>) = unbounded();
    let (snap_tx, snap_rx): (Sender<Snapshot>, Receiver<Snapshot>) = unbounded();

    let ctx = AggCtx {
        cfg,
        opts,
        steps,
        start_step,
        bucket_bytes,
        collective,
        factory: &factory,
        batches: global_batches,
        to_agg,
        param_tx,
        snap_tx,
    };
    let pool_guard_ref = &mut pool_guard;
    let agg = crossbeam::scope(|scope| {
        run_aggregator(&ctx, scope, membership, &from_workers, &snap_rx, compressor, pool_guard_ref)
    })
    .map_err(|_| DistError::WorkerPanicked)??;

    // The aggregator context holds channel templates (it needs them to
    // spawn joiners mid-run); drop them so `param_rx` terminates now that
    // every worker has been joined by the scope.
    drop(ctx);

    // The lowest-indexed survivor's parameters stand for the run (all
    // survivors applied identical updates).
    let mut finals: Option<FinalParams> = None;
    for (w, params) in param_rx.iter() {
        let replace = match &finals {
            Some((best, _)) => w < *best,
            None => true,
        };
        if replace {
            finals = Some((w, params));
        }
    }
    let final_params = match finals {
        Some((_, p)) => p,
        None => return Err(DistError::AllWorkersDead { step: steps }),
    };
    Ok(DistOutcome {
        breakdown: agg.breakdown,
        step_losses: agg.step_losses,
        final_params,
        faults: agg.report,
        checkpoints: agg.checkpoints,
        membership: agg.membership,
        final_epoch: agg.final_epoch,
    })
}

/// Everything the aggregator needs to drive a run, including the channel
/// templates and model factory it uses to spawn mid-run joiners.
struct AggCtx<'a, F> {
    cfg: &'a DistConfig,
    opts: &'a RunOptions,
    steps: usize,
    start_step: usize,
    /// Resolved bucket size (option → env → `usize::MAX`).
    bucket_bytes: usize,
    /// Resolved pricing collective (option → env → ring).
    collective: CollectiveAlgo,
    factory: &'a F,
    batches: &'a [(Tensor, Vec<usize>)],
    to_agg: Sender<WorkerMsg>,
    param_tx: Sender<FinalParams>,
    snap_tx: Sender<Snapshot>,
}

struct WorkerCtx<'a> {
    worker: usize,
    /// First global step this worker participates in (0 for initial
    /// members of a fresh run; the admission boundary for joiners).
    entry_step: usize,
    /// Resolved gradient bucket size in bytes.
    bucket_bytes: usize,
    batches: &'a [(Tensor, Vec<usize>)],
    rx: Receiver<AggMsg>,
    to_agg: Sender<WorkerMsg>,
    param_tx: Sender<FinalParams>,
    snap_tx: Sender<Snapshot>,
    cfg: &'a DistConfig,
    opts: &'a RunOptions,
    catch_up: Option<CatchUp>,
}

/// Spawns one member thread (initial worker or mid-run joiner) and
/// registers its command channel.
fn spawn_member<'env, M, F>(
    ctx: &AggCtx<'env, F>,
    scope: &crossbeam::thread::Scope<'env>,
    senders: &mut BTreeMap<usize, Sender<AggMsg>>,
    worker: usize,
    entry_step: usize,
    catch_up: Option<CatchUp>,
) where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    let (tx, rx) = unbounded();
    senders.insert(worker, tx);
    let to_agg = ctx.to_agg.clone();
    let param_tx = ctx.param_tx.clone();
    let snap_tx = ctx.snap_tx.clone();
    let factory = ctx.factory;
    let cfg = ctx.cfg;
    let opts = ctx.opts;
    let batches = ctx.batches;
    let bucket_bytes = ctx.bucket_bytes;
    scope.spawn(move |_| {
        let model = factory(worker);
        let wctx = WorkerCtx {
            worker,
            entry_step,
            bucket_bytes,
            batches,
            rx,
            to_agg,
            param_tx,
            snap_tx,
            cfg,
            opts,
            catch_up,
        };
        run_worker(wctx, model);
    });
}

fn report_fatal(ctx: &WorkerCtx<'_>, step: usize, reason: String) {
    probe::event(
        "fault",
        "worker_fatal",
        vec![("worker", ctx.worker.into()), ("step", step.into())],
    );
    // Best-effort: if the aggregator is already gone there is nobody left
    // to tell.
    ctx.to_agg.send(WorkerMsg::Fatal { worker: ctx.worker, reason }).ok();
}

fn note_catch_up(worker: usize, ck: &DistCheckpoint, source: &'static str) {
    probe::event(
        PROBE_CATEGORY,
        EV_CATCH_UP,
        vec![
            ("worker", worker.into()),
            ("step", ck.step.into()),
            ("epoch", ck.epoch.into()),
            ("source", source.into()),
        ],
    );
    probe::metrics_row(
        ROW_TYPE,
        &[
            ("kind", "catch_up".into()),
            ("worker", worker.into()),
            ("step", ck.step.into()),
            ("epoch", ck.epoch.into()),
        ],
    );
}

/// Emits probe attribution (event + JSONL row) for the latest membership
/// transition.
fn note_member_event(ev: Option<&MemberEvent>) {
    let Some(ev) = ev else { return };
    let name = match ev.kind {
        MemberEventKind::Join | MemberEventKind::Rejoin => EV_JOINED,
        MemberEventKind::Leave => EV_LEFT,
        MemberEventKind::Crash => EV_CRASHED,
    };
    probe::event(
        PROBE_CATEGORY,
        name,
        vec![
            ("worker", ev.worker.into()),
            ("step", ev.step.into()),
            ("epoch", ev.epoch.into()),
            ("kind", ev.kind.name().into()),
        ],
    );
    probe::metrics_row(
        ROW_TYPE,
        &[
            ("kind", ev.kind.name().into()),
            ("worker", ev.worker.into()),
            ("step", ev.step.into()),
            ("epoch", ev.epoch.into()),
        ],
    );
}

/// Records `worker` as crashed: drops its command channel, retires it
/// from the membership (bumping the epoch), and emits fault + membership
/// attribution. Idempotent for an already departed worker.
fn mark_crashed(
    membership: &mut Membership,
    senders: &mut BTreeMap<usize, Sender<AggMsg>>,
    report: &mut FaultReport,
    worker: usize,
    step: usize,
) {
    senders.remove(&worker);
    if !membership.is_active(worker) {
        return;
    }
    membership.crash(worker, step);
    report.crashed.push((worker, step));
    probe::counter_add("dist.crashes", 1);
    probe::event(
        "fault",
        "crash_detected",
        vec![
            ("worker", worker.into()),
            ("step", step.into()),
            ("survivors", membership.active_count().into()),
        ],
    );
    note_member_event(membership.log().last());
}

/// The worker loop. Never panics: channel failures mean the aggregator is
/// gone (a fatal error elsewhere) and the worker just exits; its own
/// fatal conditions are reported via [`WorkerMsg::Fatal`]. An injected
/// crash exits without a word — the aggregator must *detect* it.
fn run_worker<M: Layer>(ctx: WorkerCtx<'_>, mut model: M) {
    let w = ctx.worker;
    let faults = &ctx.opts.faults;
    let mut opt = Sgd::new(ctx.cfg.lr, ctx.cfg.momentum, ctx.cfg.weight_decay);
    match &ctx.catch_up {
        Some(CatchUp::Disk(path)) => {
            let ck = match DistCheckpoint::load(path) {
                Ok(ck) => ck,
                Err(e) => {
                    report_fatal(&ctx, ctx.entry_step, format!("catch-up load failed: {e}"));
                    return;
                }
            };
            if !load_resume_state(&mut model, &mut opt, &ck) {
                report_fatal(
                    &ctx,
                    ctx.entry_step,
                    "catch-up checkpoint does not match the model".into(),
                );
                return;
            }
            note_catch_up(w, &ck, "disk");
        }
        Some(CatchUp::Memory(ck)) => {
            if !load_resume_state(&mut model, &mut opt, ck) {
                report_fatal(
                    &ctx,
                    ctx.entry_step,
                    "catch-up checkpoint does not match the model".into(),
                );
                return;
            }
            note_catch_up(w, ck, "memory");
        }
        None => {
            if let Some(ck) = &ctx.opts.resume {
                if !load_resume_state(&mut model, &mut opt, ck) {
                    report_fatal(
                        &ctx,
                        ctx.entry_step,
                        "resume checkpoint does not match the model".into(),
                    );
                    return;
                }
                probe::event(
                    "dist",
                    "checkpoint_resumed",
                    vec![("worker", w.into()), ("step", ck.step.into())],
                );
            }
        }
    }
    // Gradient shapes are fixed for the whole run: derive the flat
    // layout and its bucket plan once and reuse them every round.
    let layout = {
        let params = model.params();
        let grad_refs: Vec<&Tensor> = params.iter().map(|p| &p.grad).collect();
        Arc::new(PackLayout::of_refs(&grad_refs))
    };
    let plan = BucketPlan::new(&layout, ctx.bucket_bytes);
    let mut tracker = ReadyTracker::new(&plan);
    // This member's shard of the remaining stream, re-extracted only when
    // its (rank, member count) changes — a clean static run extracts once
    // and the steady state stays allocation-free.
    let mut epoch_seen: Option<u64> = None;
    let (mut rank, mut count) = (0usize, 0usize);
    let mut shard_base = ctx.entry_step;
    let mut shard: Vec<(Tensor, Vec<usize>)> = Vec::new();
    loop {
        let (step, epoch, members) = match ctx.rx.recv() {
            Ok(AggMsg::Step { step, epoch, members }) => (step, epoch, members),
            Ok(AggMsg::Ping) => continue,
            Ok(AggMsg::Retire) => {
                probe::event("dist", "worker_retired", vec![("worker", w.into())]);
                return;
            }
            Ok(AggMsg::Finish) => break,
            // A verdict outside a round cannot happen in lockstep; drain it.
            Ok(AggMsg::Mean { .. }) | Ok(AggMsg::Skip { .. }) => continue,
            Err(_) => return, // aggregator shut down
        };
        if epoch_seen != Some(epoch) {
            let first = epoch_seen.is_none();
            epoch_seen = Some(epoch);
            let Ok(new_rank) = members.binary_search(&w) else {
                // The broadcast member set excludes us: retire quietly.
                return;
            };
            let new_count = members.len();
            if first || (new_rank, new_count) != (rank, count) {
                rank = new_rank;
                count = new_count;
                shard_base = step;
                if !first {
                    probe::counter_add("dist.reshards", 1);
                }
                shard = match resharded(ctx.batches, step, rank, count) {
                    Ok(s) => s,
                    Err(e) => {
                        report_fatal(&ctx, step, e.to_string());
                        return;
                    }
                };
            }
        }
        if faults.should_crash_since(w, step, ctx.entry_step) {
            probe::event(
                "fault",
                "worker_crash",
                vec![("worker", w.into()), ("step", step.into())],
            );
            return; // channels drop; the aggregator's probe sees the death
        }
        let Some((images, labels)) = shard.get(step - shard_base) else {
            // A broadcast step outside our extracted shard is a protocol
            // bug; report it instead of panicking mid-round.
            report_fatal(&ctx, step, format!("step {step} outside shard from {shard_base}"));
            return;
        };
        let sp = probe::timed_span_with("dist", "worker_compute", || {
            vec![("worker", w.into()), ("step", step.into())]
        });
        let clock = probe::Stopwatch::start();
        tracker.start_step();
        model.zero_grad();
        let logits = model.forward(images, Mode::Train);
        let (loss, dl) = match softmax_cross_entropy(&logits, labels, 0.0) {
            Ok(v) => v,
            Err(e) => {
                report_fatal(&ctx, step, e.to_string());
                return;
            }
        };
        // Backward announces gradient readiness layer by layer (reverse
        // order); the tracker stamps each bucket with the compute offset
        // at which its last gradient finalized — the overlap timeline's
        // inputs.
        let _ = model.backward_with_ready(&dl, &mut |first| {
            tracker.on_ready(first, clock.elapsed().as_micros() as u64);
        });
        tracker.finish(clock.elapsed().as_micros() as u64);
        // Serialize straight from the borrowed gradients into one flat
        // buffer (no per-tensor clones), then split per bucket below.
        let mut flat = {
            let params = model.params();
            let grad_refs: Vec<&Tensor> = params.iter().map(|p| &p.grad).collect();
            pack_refs_with(&layout, &grad_refs)
        };
        let measured = sp.finish();
        let delay = faults.compute_delay(w, step, measured);
        if delay > Duration::ZERO {
            probe::event(
                "fault",
                "straggler_delay",
                vec![
                    ("worker", w.into()),
                    ("step", step.into()),
                    ("delay_us", (delay.as_micros() as u64).into()),
                ],
            );
            std::thread::sleep(delay);
        }
        let compute = measured + delay;
        let delay_us = delay.as_micros() as u64;
        let compute_us = compute.as_micros() as u64;
        // Non-finite injection happens before checksumming (the worker
        // "really" computed it); bit corruption after (it happens on the
        // wire, so a checksum catches it). Both act on the full flat
        // buffer / the whole message set, exactly as on the flat path —
        // bucketing changes how the payload is sliced, not what faults
        // see.
        faults.inject_nonfinite(w, step, std::slice::from_mut(&mut flat));
        let mut payloads: Vec<Tensor> = if plan.buckets() == 1 {
            vec![flat]
        } else {
            (0..plan.buckets())
                .map(|b| {
                    let r = plan.range(b);
                    let mut t = Tensor::zeros(&[r.len()]);
                    // lint:allow(dist-panic-reachability) — plan ranges cover exactly the flat buffer
                    t.as_mut_slice().copy_from_slice(&flat.as_slice()[r]);
                    t
                })
                .collect()
        };
        let checksums: Vec<u64> =
            payloads.iter().map(|p| message_checksum(std::slice::from_ref(p))).collect();
        // One seeded bit flip lands in exactly one bucket's payload; that
        // bucket's checksum catches it at the aggregator.
        faults.corrupt_message(w, step, &mut payloads);

        let buckets = payloads.len();
        let mut aggregator_gone = false;
        for (b, (payload, checksum)) in payloads.into_iter().zip(checksums).enumerate() {
            // A straggler's buckets were ready during backward but only
            // reach the wire after the injected sleep: readiness shifts by
            // the delay, capped at the full compute time.
            // lint:allow(dist-panic-reachability) — payloads and the tracker share the plan's bucket count
            let ready_us = (tracker.ready_us()[b] + delay_us).min(compute_us);
            let mut pending = Some(WorkerMsg::Grads(GradMsg {
                worker: w,
                step,
                bucket: b,
                buckets,
                payload,
                layout: Arc::clone(&layout),
                ready_us,
                loss,
                compute,
                checksum,
            }));
            let mut attempt = 0u32;
            let sent = loop {
                if !faults.drops_message(w, step, attempt) {
                    match pending.take() {
                        Some(msg) => break ctx.to_agg.send(msg).is_ok(),
                        None => break true,
                    }
                }
                probe::counter_add("dist.dropped_messages", 1);
                probe::event(
                    "fault",
                    "message_dropped",
                    vec![
                        ("worker", w.into()),
                        ("step", step.into()),
                        ("bucket", b.into()),
                        ("attempt", attempt.into()),
                    ],
                );
                if attempt >= ctx.opts.recovery.max_retries {
                    break true; // bucket lost for good; the aggregator degrades
                }
                attempt += 1;
                std::thread::sleep(Duration::from_millis(u64::from(attempt)));
            };
            if !sent {
                aggregator_gone = true;
                break;
            }
        }
        if aggregator_gone {
            return;
        }
        // Wait for this step's verdict, consuming liveness probes.
        loop {
            match ctx.rx.recv() {
                Ok(AggMsg::Ping) => {}
                Ok(AggMsg::Skip { snapshot }) => {
                    if snapshot {
                        send_snapshot(step + 1, &model, &opt, &ctx.snap_tx);
                    }
                    break;
                }
                Ok(AggMsg::Mean { flat: mean, snapshot }) => {
                    let ap = probe::timed_span_with("dist", "apply", || {
                        vec![("worker", w.into()), ("step", step.into())]
                    });
                    for (p, g) in model.params_mut().into_iter().zip(unpack(&mean, &layout)) {
                        p.grad = g;
                    }
                    opt.step(&mut model.params_mut());
                    let _ = ap.finish();
                    if snapshot {
                        send_snapshot(step + 1, &model, &opt, &ctx.snap_tx);
                    }
                    break;
                }
                Ok(AggMsg::Retire) => {
                    probe::event("dist", "worker_retired", vec![("worker", w.into())]);
                    return;
                }
                // Lockstep forbids a new round before this one's verdict.
                Ok(AggMsg::Step { .. }) | Ok(AggMsg::Finish) => {}
                Err(_) => return, // aggregator shut down
            }
        }
    }
    let finals: Vec<Tensor> = model.params().iter().map(|p| p.value.clone()).collect();
    // Best-effort: the trainer may already have collected enough replicas.
    ctx.param_tx.send((w, finals)).ok();
}

/// Reports post-round replica state to the aggregator for checkpointing
/// and joiner catch-up.
fn send_snapshot<M: Layer>(next_step: usize, model: &M, opt: &Sgd, snap_tx: &Sender<Snapshot>) {
    let params = model.params().iter().map(|p| p.value.clone()).collect();
    // Best-effort: a closed snapshot channel just means the aggregator is
    // shutting down.
    snap_tx.send((next_step, params, opt.velocity().to_vec(), model.buffers())).ok();
}

/// Extracts one member's shard of every batch from `from` on, for its
/// rank within a `count`-member set.
fn resharded(
    batches: &[(Tensor, Vec<usize>)],
    from: usize,
    rank: usize,
    count: usize,
) -> DistResult<Vec<(Tensor, Vec<usize>)>> {
    // lint:allow(dist-panic-reachability) — `from` is clamped to len; the worst case is an empty slice
    batches[from.min(batches.len())..].iter().map(|b| shard_batch(b, rank, count)).collect()
}

/// Loads checkpointed parameters, buffers, and optimizer momentum into a
/// freshly built replica. Returns `false` on any shape/count mismatch.
fn load_resume_state<M: Layer>(model: &mut M, opt: &mut Sgd, ck: &DistCheckpoint) -> bool {
    {
        let mut params = model.params_mut();
        if params.len() != ck.params.len() {
            return false;
        }
        for (p, c) in params.iter_mut().zip(&ck.params) {
            if p.value.shape() != c.shape() {
                return false;
            }
            p.value = c.clone();
        }
    }
    if model.buffers().len() != ck.buffers.len() {
        return false;
    }
    if !ck.buffers.is_empty() {
        model.load_buffers(&ck.buffers);
    }
    if !ck.velocity.is_empty() && ck.velocity.len() != ck.params.len() {
        return false;
    }
    opt.set_velocity(ck.velocity.clone());
    true
}

struct AggOutput {
    breakdown: EpochBreakdown,
    step_losses: Vec<f32>,
    report: FaultReport,
    checkpoints: Vec<PathBuf>,
    membership: Vec<MemberEvent>,
    final_epoch: u64,
}

/// The aggregator loop: processes the membership boundary (leaves, join
/// admission with catch-up, periodic checkpoints), broadcasts each round,
/// collects contributions with timeout/retry, detects crashes,
/// re-normalizes the mean over survivors, and prices the round for the
/// live member set.
fn run_aggregator<'env, M, F>(
    ctx: &AggCtx<'env, F>,
    scope: &crossbeam::thread::Scope<'env>,
    mut membership: Membership,
    from_workers: &Receiver<WorkerMsg>,
    snap_rx: &Receiver<Snapshot>,
    compressor: &mut dyn GradCompressor,
    pool_guard: &mut PoolWidthGuard,
) -> DistResult<AggOutput>
where
    M: Layer + Send,
    F: Fn(usize) -> M + Sync,
{
    let recovery = &ctx.opts.recovery;
    let plan = &ctx.opts.membership;
    let mut senders: BTreeMap<usize, Sender<AggMsg>> = BTreeMap::new();
    for w in membership.active() {
        spawn_member(ctx, scope, &mut senders, w, ctx.start_step, None);
    }
    // Join requests at or before the resume point were already satisfied
    // by the original run: a checkpoint at step `u` implies the leader
    // snapshot at `u` succeeded, which implies every join pending at `u`
    // was admitted there. Whether those members later departed is encoded
    // in the checkpointed member set — replaying the admission would
    // resurrect them and diverge from the original run.
    let mut admitted: BTreeSet<(usize, usize)> = plan.joins_through(ctx.start_step).collect();

    let mut acc = BreakdownAccumulator::new();
    let mut step_losses = Vec::with_capacity(ctx.steps.saturating_sub(ctx.start_step));
    let mut report = FaultReport::default();
    // Bucketed reduction state, created from the first contribution's
    // layout and reused (buffers and all) for every later round.
    let mut reducer: Option<BucketedReducer> = None;
    let mut round_layout: Option<Arc<PackLayout>> = None;
    let mut checkpoints: Vec<PathBuf> = Vec::new();
    // Leader snapshot of the previous round, keyed by the boundary step
    // it describes; feeds both periodic checkpoints and joiner catch-up.
    let mut pending_snapshot: Option<Snapshot> = None;
    let mut members_arc: Arc<Vec<usize>> = Arc::new(membership.active());
    let mut broadcast_epoch = membership.epoch();

    for step in ctx.start_step..ctx.steps {
        // ---- Membership boundary: leaves, then join admission, then the
        // checkpoint that records the post-transition member set. ----
        let leavers: Vec<usize> = plan.leaves_at(step).collect();
        for wk in leavers {
            if !membership.is_active(wk) {
                continue; // departed earlier (e.g. crashed); nothing to retire
            }
            let ok = senders.get(&wk).is_some_and(|tx| tx.send(AggMsg::Retire).is_ok());
            senders.remove(&wk);
            if ok {
                membership.leave(wk, step)?;
                note_member_event(membership.log().last());
            } else {
                mark_crashed(&mut membership, &mut senders, &mut report, wk, step);
            }
        }
        let pending: Vec<(usize, usize)> =
            plan.joins_through(step).filter(|key| !admitted.contains(key)).collect();
        let snap_ready = pending_snapshot.as_ref().is_some_and(|s| s.0 == step);
        let mut admitted_now: Vec<usize> = Vec::new();
        if snap_ready {
            for &(wk, sched) in &pending {
                if membership.is_active(wk) {
                    return Err(DistError::Membership {
                        reason: format!(
                            "worker {wk} is scheduled to join at step {sched} but is already \
                             an active member"
                        ),
                    });
                }
                membership.join(wk, step)?;
                note_member_event(membership.log().last());
                admitted.insert((wk, sched));
                admitted_now.push(wk);
            }
        } else if !pending.is_empty() {
            // No catch-up state for this boundary (start of a run, or the
            // leader snapshot failed): the requests stay pending and are
            // retried at the next boundary.
            probe::counter_add("dist.join_deferrals", pending.len() as u64);
        }
        let want_ckpt_here = ctx.opts.checkpoint.is_enabled()
            && step > ctx.start_step
            && step.is_multiple_of(ctx.opts.checkpoint.every);
        if (want_ckpt_here || !admitted_now.is_empty()) && snap_ready {
            if let Some((s, params, velocity, buffers)) = pending_snapshot.take() {
                let ck = DistCheckpoint {
                    step: s,
                    params,
                    velocity,
                    buffers,
                    compressor: compressor.state_snapshot(),
                    members: membership.active(),
                    epoch: membership.epoch(),
                };
                let mut on_disk: Option<PathBuf> = None;
                if want_ckpt_here {
                    if let Some(path) = ctx.opts.checkpoint.path_for(s) {
                        ck.save(&path)?;
                        probe::counter_add("dist.checkpoint_writes", 1);
                        probe::event("dist", "checkpoint_written", vec![("step", s.into())]);
                        checkpoints.push(path.clone());
                        on_disk = Some(path);
                    }
                }
                let shared = Arc::new(ck);
                for &wk in &admitted_now {
                    let catch_up = match &on_disk {
                        Some(p) => CatchUp::Disk(p.clone()),
                        None => CatchUp::Memory(Arc::clone(&shared)),
                    };
                    spawn_member(ctx, scope, &mut senders, wk, step, Some(catch_up));
                }
            }
        }
        // ---- Epoch sync: refresh the broadcast member view and re-price
        // the tensor-pool width for the current member count. ----
        if membership.epoch() != broadcast_epoch {
            broadcast_epoch = membership.epoch();
            members_arc = Arc::new(membership.active());
            pool_guard.recap(membership.active_count());
        }

        let round_sp = probe::timed_span_with("dist", "round", || {
            vec![
                ("step", step.into()),
                ("epoch", broadcast_epoch.into()),
                ("live", members_arc.len().into()),
            ]
        });

        // ---- Begin the round: a crashed member fails the send. ----
        for &x in members_arc.clone().iter() {
            let msg =
                AggMsg::Step { step, epoch: broadcast_epoch, members: Arc::clone(&members_arc) };
            let sent = senders.get(&x).is_some_and(|tx| tx.send(msg).is_ok());
            if !sent {
                mark_crashed(&mut membership, &mut senders, &mut report, x, step);
            }
        }
        if membership.active_count() == 0 {
            return Err(DistError::AllWorkersDead { step });
        }

        // ---- Collect this step's contributions from live members, one
        // bucket message at a time. A bucket is spliced into its sender's
        // reducer slot on arrival, and any bucket every expected member
        // has delivered is reduced *eagerly* — the reduction work tracks
        // the message stream instead of waiting for the slowest sender's
        // last bucket. The apply order stays pinned regardless (see
        // [`BucketedReducer`]). ----
        let mut expected: BTreeSet<usize> = membership.active().into_iter().collect();
        let mut expected_vec: Vec<usize> = expected.iter().copied().collect();
        let mut got: BTreeMap<usize, Contribution> = BTreeMap::new();
        let mut done: BTreeSet<usize> = BTreeSet::new();
        if let Some(r) = reducer.as_mut() {
            r.start_round();
        }
        let mut timeout = recovery.step_timeout;
        let mut retries = 0u32;
        while done.len() < expected.len() {
            match from_workers.recv_timeout(timeout) {
                Ok(WorkerMsg::Fatal { worker, reason }) => {
                    return Err(DistError::WorkerFailed { worker, reason });
                }
                Ok(WorkerMsg::Grads(m)) => {
                    if m.step != step || !expected.contains(&m.worker) {
                        // A straggler's bucket from an already-closed step
                        // (or from an already-rejected sender): discard.
                        report.stale_messages += 1;
                        probe::counter_add("dist.stale_messages", 1);
                        probe::event(
                            "fault",
                            "stale_message",
                            vec![
                                ("worker", m.worker.into()),
                                ("msg_step", m.step.into()),
                                ("step", step.into()),
                            ],
                        );
                        continue;
                    }
                    if reducer.is_none() {
                        // First contribution of the run fixes the bucket
                        // plan (every worker derives the identical layout).
                        let mut r =
                            BucketedReducer::new(BucketPlan::new(&m.layout, ctx.bucket_bytes));
                        r.start_round();
                        reducer = Some(r);
                        round_layout = Some(Arc::clone(&m.layout));
                    }
                    let Some(red) = reducer.as_mut() else { continue };
                    if m.buckets != red.plan().buckets()
                        || message_checksum(std::slice::from_ref(&m.payload)) != m.checksum
                    {
                        // Bit corruption on the wire (or a protocol
                        // mismatch): the first bad bucket rejects the whole
                        // contribution once; the worker stays live.
                        report.corrupted_messages += 1;
                        probe::counter_add("dist.corrupted_messages", 1);
                        probe::event(
                            "fault",
                            "message_corrupted",
                            vec![
                                ("worker", m.worker.into()),
                                ("step", step.into()),
                                ("bucket", m.bucket.into()),
                            ],
                        );
                        expected.remove(&m.worker);
                        expected_vec.retain(|&x| x != m.worker);
                        done.remove(&m.worker);
                        got.remove(&m.worker);
                        continue;
                    }
                    if !red.accept(m.worker, m.bucket, m.payload.as_slice()) {
                        // Duplicate bucket delivery: stale, discard.
                        report.stale_messages += 1;
                        probe::counter_add("dist.stale_messages", 1);
                        continue;
                    }
                    let c = got.entry(m.worker).or_insert_with(|| Contribution {
                        loss: m.loss,
                        compute: m.compute,
                        ready_us: vec![0; m.buckets],
                    });
                    // lint:allow(dist-panic-reachability) — accept() verified bucket < buckets above
                    c.ready_us[m.bucket] = m.ready_us;
                    if red.complete(m.worker) {
                        done.insert(m.worker);
                    }
                    red.try_reduce(&expected_vec);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Probe the missing members: a crashed worker dropped
                    // its receiver, so the probe send fails.
                    let missing: Vec<usize> =
                        expected.iter().copied().filter(|x| !done.contains(x)).collect();
                    for x in missing {
                        let alive = senders.get(&x).is_some_and(|tx| tx.send(AggMsg::Ping).is_ok());
                        if !alive {
                            expected.remove(&x);
                            expected_vec.retain(|&y| y != x);
                            got.remove(&x);
                            mark_crashed(&mut membership, &mut senders, &mut report, x, step);
                        }
                    }
                    if membership.active_count() == 0 {
                        return Err(DistError::AllWorkersDead { step });
                    }
                    if done.len() >= expected.len() {
                        break; // crashes explained every missing member
                    }
                    retries += 1;
                    probe::counter_add("dist.retries", 1);
                    if retries > recovery.max_retries {
                        let lost = expected.len() - done.len();
                        report.lost_contributions += lost;
                        probe::counter_add("dist.lost_contributions", lost as u64);
                        probe::event(
                            "fault",
                            "contribution_lost",
                            vec![("step", step.into()), ("lost", lost.into())],
                        );
                        break; // degrade: proceed with what arrived
                    }
                    timeout = Duration::from_secs_f64(timeout.as_secs_f64() * recovery.backoff);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(DistError::AllWorkersDead { step });
                }
            }
        }
        if membership.active_count() == 0 {
            return Err(DistError::AllWorkersDead { step });
        }

        // Contributors: members that delivered every bucket intact, in
        // worker-id order (the pinned reduction order).
        let contributors: Vec<usize> =
            done.iter().copied().filter(|x| expected.contains(x)).collect();
        let slowest = contributors
            .iter()
            .filter_map(|x| got.get(x).map(|c| c.compute))
            .max()
            .unwrap_or_default();
        let loss_mean = if contributors.is_empty() {
            f32::NAN
        } else {
            contributors.iter().filter_map(|x| got.get(x).map(|c| c.loss)).sum::<f32>()
                / contributors.len() as f32
        };

        // The *next* boundary needs catch-up state if a periodic
        // checkpoint falls on it or a join is waiting for admission.
        let next_step = step + 1;
        let want_ckpt =
            ctx.opts.checkpoint.is_enabled() && next_step.is_multiple_of(ctx.opts.checkpoint.every);
        let pending_join = next_step < ctx.steps
            && plan.joins_through(next_step).any(|key| !admitted.contains(&key));
        let want_state = want_ckpt || pending_join;
        // The lowest-indexed live member doubles as snapshot leader.
        let leader = senders.keys().next().copied();

        // ---- AMP-style guard: a poisoned gradient (or a round with no
        // usable contribution) skips the step on every replica. The
        // unchanged state is still valid, so snapshots proceed. ----
        let poisoned = contributors.iter().any(|x| {
            reducer
                .as_ref()
                .and_then(|r| r.assembled(*x))
                .is_some_and(|t| any_nonfinite(std::slice::from_ref(t)))
        });
        if contributors.is_empty() || poisoned {
            if let Some(r) = reducer.as_mut() {
                r.mark_dirty();
            }
            let ids: Vec<usize> = senders.keys().copied().collect();
            for x in ids {
                let snapshot = want_state && Some(x) == leader;
                let sent =
                    senders.get(&x).is_some_and(|tx| tx.send(AggMsg::Skip { snapshot }).is_ok());
                if !sent {
                    mark_crashed(&mut membership, &mut senders, &mut report, x, step);
                }
            }
            report.skipped_steps.push(step);
            probe::event(
                "fault",
                "step_skipped",
                vec![("step", step.into()), ("contributors", contributors.len().into())],
            );
            acc.record_skipped(step, slowest);
            step_losses.push(loss_mean);
            probe::metrics_row(
                "dist_step",
                &[
                    ("step", step.into()),
                    ("loss", loss_mean.into()),
                    ("contributors", contributors.len().into()),
                    ("live", membership.active_count().into()),
                    ("skipped", 1usize.into()),
                ],
            );
            collect_snapshot(
                ctx,
                snap_rx,
                &membership,
                &mut report,
                &mut pending_snapshot,
                want_state,
                want_ckpt,
                leader,
                next_step,
            );
            round_sp.finish();
            continue;
        }

        // ---- One aggregation round over the collected contributions. ----
        let n_contributors = contributors.len();
        let (Some(red), Some(layout)) = (reducer.as_mut(), round_layout.as_ref()) else {
            // Unreachable: a non-empty contributor set implies at least one
            // accepted message, which created the reducer. Degrade to skip.
            continue;
        };

        // ---- Price the round for the member set actually live. ----
        let live_vec: Vec<usize> = membership.active();
        let (profile, jitter) = match &ctx.opts.hetero {
            Some(h) => (h.effective(&live_vec)?, h.jitter_factor(step as u64)),
            None => (ClusterProfile { nodes: live_vec.len(), ..ctx.cfg.profile }, 1.0),
        };

        let (mean_flat, wire_bytes) = if compressor.supports_bucketed_overlap() {
            // Pinned-order bucket finalize: bitwise equal to unpacking the
            // flats and running the compressor's exact mean, at any bucket
            // size. Each bucket's collective is priced with the selected
            // algorithm and laid on a modeled timeline that starts when the
            // slowest contributor produced that bucket's gradients — the
            // comm time hidden under still-running backward is the round's
            // *overlapped* share, the remainder is exposed.
            let bplan = red.plan();
            let mut bucket_comms: Vec<BucketComm> = Vec::with_capacity(bplan.buckets());
            let mut cursor = Duration::ZERO;
            for b in 0..bplan.buckets() {
                let ready_us = contributors
                    .iter()
                    .filter_map(|x| got.get(x).and_then(|c| c.ready_us.get(b).copied()))
                    .max()
                    .unwrap_or(0);
                let ready = Duration::from_micros(ready_us).min(slowest);
                let start = ready.max(cursor);
                let t = profile.allreduce_with(ctx.collective, bplan.bytes(b)).mul_f64(jitter);
                let end = start + t;
                let exposed = end.saturating_sub(start.max(slowest));
                bucket_comms.push(BucketComm {
                    bytes_per_worker: bplan.bytes(b),
                    wire_bytes: bplan.bytes(b) * n_contributors,
                    comm: t,
                    exposed,
                });
                cursor = end;
            }
            let t0 = probe::Stopwatch::start();
            let mean = red.finalize(&contributors);
            let mut flat = Tensor::zeros(&[mean.len()]);
            flat.as_mut_slice().copy_from_slice(mean.as_slice());
            let decode_time = t0.elapsed();
            let stats = RoundStats::new(
                layout.total_bytes(),
                n_contributors,
                AggregationKind::AllReduce,
                Duration::ZERO,
                decode_time,
            );
            let group = match ctx.collective {
                CollectiveAlgo::Hierarchical { group } => Some(hier_group(profile.nodes, group)),
                _ => None,
            };
            acc.record_overlapped(
                step,
                ctx.collective.span_name(),
                group,
                profile.nodes,
                &bucket_comms,
                slowest,
                &stats,
            );
            (flat, stats.encoded_bytes)
        } else {
            // The compressor needs whole tensors: reassemble each
            // contributor's flat buffer, unpack, and run the classic round.
            // All comm happens after the slowest backward, so it is fully
            // exposed.
            let contributions: Vec<Vec<Tensor>> = contributors
                .iter()
                .filter_map(|x| red.assembled(*x))
                .map(|flat| unpack(flat, layout))
                .collect();
            red.mark_dirty();
            let (mean, stats) = compressor.round(&contributions);
            let comm = round_comm_time(&profile, compressor.aggregation(), &stats).mul_f64(jitter);
            acc.record_with_comm(
                step,
                compressor.aggregation(),
                profile.nodes,
                comm,
                slowest,
                &stats,
            );
            let mean_refs: Vec<&Tensor> = mean.iter().collect();
            (pack_refs_with(layout, &mean_refs), stats.encoded_bytes)
        };
        step_losses.push(loss_mean);
        probe::metrics_row(
            "dist_step",
            &[
                ("step", step.into()),
                ("loss", loss_mean.into()),
                ("contributors", n_contributors.into()),
                ("live", live_vec.len().into()),
                ("bytes", wire_bytes.into()),
            ],
        );

        // ---- Broadcast the verdict (same flat layout the workers used to
        // encode their contributions). ----
        let ids: Vec<usize> = senders.keys().copied().collect();
        for x in ids {
            let snapshot = want_state && Some(x) == leader;
            let msg = AggMsg::Mean { flat: mean_flat.clone(), snapshot };
            let sent = senders.get(&x).is_some_and(|tx| tx.send(msg).is_ok());
            if !sent {
                mark_crashed(&mut membership, &mut senders, &mut report, x, step);
            }
        }

        collect_snapshot(
            ctx,
            snap_rx,
            &membership,
            &mut report,
            &mut pending_snapshot,
            want_state,
            want_ckpt,
            leader,
            next_step,
        );
        round_sp.finish();
    }

    // ---- Final boundary: a periodic checkpoint falling exactly on the
    // end of the run is still written. ----
    let want_ckpt_final = ctx.opts.checkpoint.is_enabled()
        && ctx.steps > ctx.start_step
        && ctx.steps.is_multiple_of(ctx.opts.checkpoint.every);
    if want_ckpt_final && pending_snapshot.as_ref().is_some_and(|s| s.0 == ctx.steps) {
        if let Some((s, params, velocity, buffers)) = pending_snapshot.take() {
            let ck = DistCheckpoint {
                step: s,
                params,
                velocity,
                buffers,
                compressor: compressor.state_snapshot(),
                members: membership.active(),
                epoch: membership.epoch(),
            };
            if let Some(path) = ctx.opts.checkpoint.path_for(s) {
                ck.save(&path)?;
                probe::counter_add("dist.checkpoint_writes", 1);
                probe::event("dist", "checkpoint_written", vec![("step", s.into())]);
                checkpoints.push(path);
            }
        }
    }

    // ---- Finish: survivors report their final parameters. ----
    let ids: Vec<usize> = senders.keys().copied().collect();
    for x in ids {
        let sent = senders.get(&x).is_some_and(|tx| tx.send(AggMsg::Finish).is_ok());
        if !sent {
            mark_crashed(&mut membership, &mut senders, &mut report, x, ctx.steps);
        }
    }
    report.survivors = membership.active_count();
    Ok(AggOutput {
        breakdown: acc.breakdown(),
        step_losses,
        report,
        checkpoints,
        final_epoch: membership.epoch(),
        membership: membership.into_log(),
    })
}

/// Collects the leader's post-round snapshot for the upcoming boundary.
/// A missed snapshot when a periodic checkpoint is due is a recorded
/// checkpoint failure; joins waiting on it are simply deferred.
#[allow(clippy::too_many_arguments)]
fn collect_snapshot<F>(
    ctx: &AggCtx<'_, F>,
    snap_rx: &Receiver<Snapshot>,
    membership: &Membership,
    report: &mut FaultReport,
    pending_snapshot: &mut Option<Snapshot>,
    want_state: bool,
    want_ckpt: bool,
    leader: Option<usize>,
    next_step: usize,
) {
    if !want_state {
        *pending_snapshot = None;
        return;
    }
    let recovery = &ctx.opts.recovery;
    let deadline = recovery.step_timeout * (recovery.max_retries + 1);
    let leader_alive = leader.is_some_and(|l| membership.is_active(l));
    *pending_snapshot = if leader_alive {
        snap_rx.recv_timeout(deadline).ok().filter(|(s, ..)| *s == next_step)
    } else {
        None
    };
    if pending_snapshot.is_none() && want_ckpt {
        report.checkpoint_failures += 1;
        probe::counter_add("dist.checkpoint_failures", 1);
        probe::event("fault", "checkpoint_failed", vec![("step", next_step.into())]);
    }
}

/// Extracts member `w`'s rows of a global batch (rows split evenly across
/// `workers` members; remainder rows dropped). Delegates the row
/// arithmetic to [`puffer_data::shard`], the crate-neutral re-sharding
/// helper the elastic trainer also uses mid-run.
///
/// # Errors
///
/// Returns [`DistError::BatchTooSmall`] if the batch has fewer rows than
/// members and [`DistError::Shard`] on shape arithmetic failures.
pub fn shard_batch(
    batch: &(Tensor, Vec<usize>),
    w: usize,
    workers: usize,
) -> DistResult<(Tensor, Vec<usize>)> {
    if workers == 0 {
        return Err(DistError::InvalidConfig { reason: "workers must be at least 1".into() });
    }
    let (images, labels) = batch;
    puffer_data::shard::shard_rows(images, labels, w, workers).map_err(|e| match e {
        puffer_data::shard::ShardError::EmptyShard { rows, members } => {
            DistError::BatchTooSmall { rows, workers: members }
        }
        other => DistError::Shard { reason: other.to_string() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_compress::none::NoCompression;
    use puffer_compress::powersgd::PowerSgd;
    use puffer_compress::signum::Signum;
    use puffer_nn::activation::Relu;
    use puffer_nn::linear::Linear;
    use puffer_nn::Sequential;

    fn mlp(seed_base: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(6, 16, true, seed_base).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 3, true, seed_base + 1).unwrap()),
        ])
    }

    fn synthetic_batches(n_batches: usize, batch: usize) -> Vec<(Tensor, Vec<usize>)> {
        (0..n_batches)
            .map(|b| {
                let x = Tensor::randn(&[batch, 6], 1.0, 100 + b as u64);
                let labels = (0..batch).map(|i| (i + b) % 3).collect();
                (x, labels)
            })
            .collect()
    }

    #[test]
    fn two_workers_match_single_process_sgd() {
        // With an exact-mean compressor and equal shards, data-parallel SGD
        // equals full-batch single-process SGD step for step.
        let batches = synthetic_batches(5, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        let mut comp = NoCompression::new();
        let out = train_data_parallel(|_| mlp(1), &batches, &mut comp, &cfg).unwrap();
        assert!(out.faults.is_clean(), "clean run must report no faults: {:?}", out.faults);
        assert_eq!(out.faults.survivors, 2);
        assert!(out.membership.is_empty(), "static run must log no transitions");
        assert_eq!(out.final_epoch, 0);

        // Reference: single process on the full batches.
        let mut model = mlp(1);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for (x, labels) in &batches {
            model.zero_grad();
            let logits = model.forward(x, Mode::Train);
            let (_, dl) = softmax_cross_entropy(&logits, labels, 0.0).unwrap();
            let _ = model.backward(&dl);
            opt.step(&mut model.params_mut());
        }
        for (dist_p, ref_p) in out.final_params.iter().zip(model.params()) {
            let err = puffer_tensor::stats::rel_error(&ref_p.value, dist_p);
            assert!(err < 1e-4, "divergence {err}");
        }
    }

    #[test]
    fn replicas_stay_synchronized() {
        // Worker count > 2, several steps: all replicas' final params equal
        // (we check worker 0 against a rerun with permuted worker ids by
        // reusing deterministic seeds).
        let batches = synthetic_batches(4, 8);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(4),
        };
        let mut comp = NoCompression::new();
        let a = train_data_parallel(|_| mlp(3), &batches, &mut comp, &cfg).unwrap();
        let mut comp = NoCompression::new();
        let b = train_data_parallel(|_| mlp(3), &batches, &mut comp, &cfg).unwrap();
        assert_eq!(a.final_params, b.final_params, "run must be deterministic");
        assert_eq!(a.step_losses.len(), 4);
    }

    #[test]
    fn bucketed_runs_are_bitwise_identical_to_one_flat_bucket() {
        // The bucketed overlap path must change *scheduling only*: final
        // parameters are bitwise identical to the one-flat-bucket run at
        // any bucket size and under any collective algorithm (the algo
        // changes pricing, never arithmetic).
        let batches = synthetic_batches(4, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(2),
        };
        let run = |bucket_bytes: usize, collective: CollectiveAlgo| {
            let opts = RunOptions {
                bucket_bytes: Some(bucket_bytes),
                collective: Some(collective),
                ..Default::default()
            };
            let mut comp = NoCompression::new();
            train_data_parallel_with(|_| mlp(11), &batches, &mut comp, &cfg, &opts).unwrap()
        };
        let flat = run(usize::MAX, CollectiveAlgo::Ring);
        // The MLP has 227 params (908 bytes): 256-byte buckets split every
        // layer, 4 KiB collapses back to a single bucket.
        for bytes in [256usize, 4096] {
            for algo in [
                CollectiveAlgo::Ring,
                CollectiveAlgo::Tree,
                CollectiveAlgo::Hierarchical { group: 0 },
            ] {
                let out = run(bytes, algo);
                assert_eq!(
                    out.final_params, flat.final_params,
                    "bucket_bytes={bytes} algo={algo:?} must be bitwise identical"
                );
                assert!(out.faults.is_clean(), "{:?}", out.faults);
                assert!(out.breakdown.comm > Duration::ZERO);
                assert!(
                    out.breakdown.comm_exposed <= out.breakdown.comm,
                    "exposed comm is a subset of total comm"
                );
            }
        }
    }

    #[test]
    fn bucketed_transport_is_transparent_to_ineligible_compressors() {
        // A compressor that needs whole tensors (PowerSGD's per-matrix
        // factorization) still rides the bucketed transport: the aggregator
        // reassembles the flats, and results match the flat run bitwise.
        let batches = synthetic_batches(3, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(2),
        };
        let run = |bytes: usize| {
            let opts = RunOptions { bucket_bytes: Some(bytes), ..Default::default() };
            let mut comp = PowerSgd::new(2, 9);
            train_data_parallel_with(|_| mlp(13), &batches, &mut comp, &cfg, &opts).unwrap()
        };
        let flat = run(usize::MAX);
        let bucketed = run(128);
        assert_eq!(flat.final_params, bucketed.final_params);
        // Without bucketed overlap, every comm nanosecond is exposed.
        assert_eq!(bucketed.breakdown.comm, bucketed.breakdown.comm_exposed);
    }

    #[test]
    fn bucket_options_resolve_and_zero_is_rejected() {
        let opts = RunOptions { bucket_bytes: Some(0), ..Default::default() };
        assert!(matches!(opts.resolve_bucket_bytes(), Err(DistError::InvalidConfig { .. })));

        let opts = RunOptions {
            bucket_bytes: Some(1 << 20),
            collective: Some(CollectiveAlgo::Tree),
            ..Default::default()
        };
        assert_eq!(opts.resolve_bucket_bytes().unwrap(), 1 << 20);
        assert_eq!(opts.resolve_collective(), CollectiveAlgo::Tree);

        // Defaults (when the env knobs are unset): one flat bucket, ring.
        let opts = RunOptions::default();
        if std::env::var(ENV_BUCKET_BYTES).is_err() {
            assert_eq!(opts.resolve_bucket_bytes().unwrap(), usize::MAX);
        }
        if std::env::var(crate::cost::ENV_COLLECTIVE).is_err() {
            assert_eq!(opts.resolve_collective(), CollectiveAlgo::Ring);
        }

        // The full entry point surfaces the zero-bucket error too.
        let batches = synthetic_batches(1, 4);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        let opts = RunOptions { bucket_bytes: Some(0), ..Default::default() };
        let mut comp = NoCompression::new();
        let err =
            train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &cfg, &opts).unwrap_err();
        assert!(matches!(err, DistError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn powersgd_rounds_run_and_losses_decrease() {
        let batches = synthetic_batches(30, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(2),
        };
        let mut comp = PowerSgd::new(2, 9);
        let out = train_data_parallel(|_| mlp(5), &batches, &mut comp, &cfg).unwrap();
        let early: f32 = out.step_losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = out.step_losses[25..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "PowerSGD training diverged: {early} -> {late}");
        assert!(out.breakdown.comm > Duration::ZERO);
    }

    #[test]
    fn signum_uses_allgather_accounting() {
        let batches = synthetic_batches(2, 8);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.01,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::p3_like(4),
        };
        let mut comp = Signum::new(0.9);
        let out = train_data_parallel(|_| mlp(7), &batches, &mut comp, &cfg).unwrap();
        assert!(out.breakdown.comm > Duration::ZERO);
        assert!(out.breakdown.decode > Duration::ZERO);
    }

    #[test]
    fn undersized_batch_rejected() {
        let batches = synthetic_batches(1, 2);
        let cfg = DistConfig {
            workers: 4,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(4),
        };
        let mut comp = NoCompression::new();
        let err = train_data_parallel(|_| mlp(1), &batches, &mut comp, &cfg).unwrap_err();
        assert_eq!(err, DistError::BatchTooSmall { rows: 2, workers: 4 });
    }

    #[test]
    fn planned_joiners_raise_the_batch_floor() {
        // Two joiners on top of 3 initial workers: every batch must be able
        // to feed the 5-member fleet the run can grow into.
        let batches = synthetic_batches(2, 4);
        let cfg = DistConfig {
            workers: 3,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(3),
        };
        let opts = RunOptions {
            membership: MembershipPlan::none().with_join(3, 1).with_join(4, 1),
            ..Default::default()
        };
        let mut comp = NoCompression::new();
        let err =
            train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &cfg, &opts).unwrap_err();
        assert_eq!(err, DistError::BatchTooSmall { rows: 4, workers: 5 });
    }

    #[test]
    fn plan_referencing_unknown_ids_rejected() {
        let batches = synthetic_batches(2, 8);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        // A leave for a worker that is neither initial nor a planned joiner.
        let opts = RunOptions {
            membership: MembershipPlan::none().with_leave(9, 1),
            ..Default::default()
        };
        let mut comp = NoCompression::new();
        let err =
            train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &cfg, &opts).unwrap_err();
        assert!(matches!(err, DistError::Membership { .. }), "{err}");
        // A joiner outside the hetero profile is a typed UnknownMember error.
        let opts = RunOptions {
            membership: MembershipPlan::none().with_join(5, 1),
            hetero: Some(crate::cost::HeteroProfile::uniform(ClusterProfile::p3_like(2))),
            ..Default::default()
        };
        let mut comp = NoCompression::new();
        let err =
            train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &cfg, &opts).unwrap_err();
        assert_eq!(err, DistError::UnknownMember { worker: 5, nodes: 2 });
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = DistConfig::p3(2, 0.1);
        cfg.workers = 0;
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        let mut cfg = DistConfig::p3(2, f32::NAN);
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        cfg = DistConfig::p3(2, 0.1);
        cfg.momentum = f32::INFINITY;
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        cfg = DistConfig::p3(2, 0.1);
        cfg.profile.alpha = -1.0;
        assert!(matches!(cfg.validate(), Err(DistError::InvalidConfig { .. })));
        assert!(DistConfig::p3(4, 0.1).validate().is_ok());
    }

    #[test]
    fn bad_recovery_policy_rejected() {
        let batches = synthetic_batches(1, 4);
        let cfg = DistConfig {
            workers: 2,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            profile: ClusterProfile::zero_cost(2),
        };
        let opts = RunOptions {
            recovery: RecoveryPolicy { step_timeout: Duration::ZERO, ..Default::default() },
            ..Default::default()
        };
        let mut comp = NoCompression::new();
        let err =
            train_data_parallel_with(|_| mlp(1), &batches, &mut comp, &cfg, &opts).unwrap_err();
        assert!(matches!(err, DistError::InvalidConfig { .. }));
    }

    #[test]
    fn shard_batch_extracts_contiguous_rows() {
        let batch = (Tensor::randn(&[6, 2], 1.0, 1), vec![0, 1, 2, 0, 1, 2]);
        let (x, labels) = shard_batch(&batch, 1, 3).unwrap();
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(labels, vec![2, 0]);
        assert_eq!(x.as_slice(), &batch.0.as_slice()[4..8]);
        assert!(shard_batch(&batch, 3, 3).is_err());
    }

    #[test]
    fn pool_guard_restores_width() {
        let before = puffer_tensor::pool::num_threads();
        {
            let _g = PoolWidthGuard::cap_for(64);
            assert!(puffer_tensor::pool::num_threads() <= before);
        }
        assert_eq!(puffer_tensor::pool::num_threads(), before);
    }
}
