//! Panic-reachability fixture: a seeded `.unwrap()` three calls below
//! `Trainer::run`, a reachable indexing site, a suppressed slice access,
//! and a test-only panic that must stay invisible to the call-graph walk.

pub struct Trainer {
    steps: Vec<u32>,
}

impl Trainer {
    pub fn run(&self) -> u32 {
        self.round(0)
    }

    fn round(&self, step: usize) -> u32 {
        pack_refs(&self.steps, step)
    }
}

fn pack_refs(steps: &[u32], step: usize) -> u32 {
    deep_unwrap(steps, step)
}

fn deep_unwrap(steps: &[u32], step: usize) -> u32 {
    let direct = steps[step];
    let checked = steps.get(step + 1).copied().unwrap();
    // lint:allow(dist-panic-reachability) — fixture: the allow must hold on the next line
    let suppressed = steps[step + 2];
    direct + checked + suppressed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_in_tests_are_invisible_to_the_walk() {
        let t = Trainer { steps: vec![1, 2, 3] };
        let v: Option<u32> = Some(t.run());
        v.unwrap();
    }
}
