//! **Figure 4(c)**: DDP scalability — per-epoch time of vanilla vs
//! Pufferfish ResNet-50 under PyTorch-DDP-style bucketed, overlapped
//! allreduce across 2/4/8/16 nodes, plus end-to-end convergence at 8
//! nodes.
//!
//! Per-batch forward/backward times are measured on the real bench-scale
//! models; gradient sizes use the **full-scale** ledgers (what determines
//! real DDP traffic); bucketing/overlap use the 25 MB DDP model. Shape
//! under reproduction: Pufferfish's per-epoch speedup grows with node
//! count (paper: 1.52× at 16 nodes).

use puffer_bench::scale::RunScale;
use puffer_bench::table::Table;
use puffer_bench::{record_result, setups};
use puffer_dist::cost::ClusterProfile;
use puffer_dist::ddp::{simulate_step, DEFAULT_BUCKET_BYTES};
use puffer_models::resnet::ResNetHybridPlan;
use puffer_models::spec::{resnet50_imagenet, SpecVariant};
use puffer_models::units::FactorInit;
use puffer_nn::layer::{Layer, Mode};
use puffer_nn::loss::softmax_cross_entropy;
use puffer_probe::Stopwatch;
use puffer_tensor::Tensor;
use std::time::Duration;

/// Measures mean (forward, backward) time per batch.
fn fwd_bwd_time<M: Layer>(
    model: &mut M,
    images: &Tensor,
    labels: &[usize],
    reps: usize,
) -> (Duration, Duration) {
    let (mut fwd, mut bwd) = (Duration::ZERO, Duration::ZERO);
    for _ in 0..reps {
        model.zero_grad();
        let t0 = Stopwatch::start();
        let logits = model.forward(images, Mode::Train);
        fwd += t0.elapsed();
        let (_, dl) = softmax_cross_entropy(&logits, labels, 0.0).expect("loss");
        let t0 = Stopwatch::start();
        let _ = model.backward(&dl);
        bwd += t0.elapsed();
    }
    (fwd / reps as u32, bwd / reps as u32)
}

fn main() {
    let scale = RunScale::from_env();
    let data = setups::imagenet_lite_data(scale);
    let classes = data.config().classes;
    let reps = scale.pick(2, 5);
    let steps_per_epoch = scale.pick(20, 100);
    let (images, labels) = &data.train_batches(32, 0)[0];

    // Measured compute at bench scale for the vanilla model. At 1/64 width
    // the conv5_x-only factorization's compute saving is inside CPU noise
    // (and the added 1x1 layers even cost overhead), so Pufferfish's
    // compute is derived from the measured vanilla times via the exact
    // full-scale MAC ratio (4.09G -> 3.53G, Table 5 ledgers) — the same
    // extrapolation Figure 4(a) prints.
    let mut vanilla = setups::resnet50(classes, 1);
    let (fv, bv) = fwd_bwd_time(&mut vanilla, images, &labels.clone(), reps);
    let mut puffer = vanilla
        .to_hybrid(&ResNetHybridPlan::resnet50_paper(), FactorInit::WarmStart)
        .expect("hybrid");
    let (fp_raw, bp_raw) = fwd_bwd_time(&mut puffer, images, &labels.clone(), reps);
    let mac_ratio = resnet50_imagenet(SpecVariant::Pufferfish).macs() as f64
        / resnet50_imagenet(SpecVariant::Vanilla).macs() as f64;
    let fp = Duration::from_secs_f64(fv.as_secs_f64() * mac_ratio);
    let bp = Duration::from_secs_f64(bv.as_secs_f64() * mac_ratio);
    let _ = (fp_raw, bp_raw);

    // Full-scale gradient layouts (what DDP actually ships).
    let vanilla_layers: Vec<usize> = resnet50_imagenet(SpecVariant::Vanilla)
        .layers
        .iter()
        .map(|l| l.params as usize * 4)
        .collect();
    let puffer_layers: Vec<usize> = resnet50_imagenet(SpecVariant::Pufferfish)
        .layers
        .iter()
        .map(|l| l.params as usize * 4)
        .collect();

    println!("== Figure 4(c): DDP per-epoch scaling, ResNet-50, {steps_per_epoch} steps/epoch ==");
    println!("compute/batch: vanilla fwd {:.1}ms bwd {:.1}ms (measured) | pufferfish fwd {:.1}ms bwd {:.1}ms (MAC-ratio {:.3})\n",
        fv.as_secs_f64() * 1e3, bv.as_secs_f64() * 1e3, fp.as_secs_f64() * 1e3, bp.as_secs_f64() * 1e3, mac_ratio);

    let mut t =
        Table::new(vec!["nodes", "vanilla s/epoch", "pufferfish s/epoch", "speedup", "paper"]);
    for nodes in [2usize, 4, 8, 16] {
        let profile = ClusterProfile::p3_like(nodes);
        let sv = simulate_step(fv, bv, &vanilla_layers, DEFAULT_BUCKET_BYTES, &profile);
        let sp = simulate_step(fp, bp, &puffer_layers, DEFAULT_BUCKET_BYTES, &profile);
        let ev = sv.total.as_secs_f64() * steps_per_epoch as f64;
        let ep = sp.total.as_secs_f64() * steps_per_epoch as f64;
        t.row(vec![
            nodes.to_string(),
            format!("{ev:.2}"),
            format!("{ep:.2}"),
            format!("{:.2}x", ev / ep),
            if nodes == 16 { "1.52x".into() } else { String::new() },
        ]);
        record_result("fig4c_ddp", &format!("nodes={nodes} vanilla={ev:.3} pufferfish={ep:.3}"));
    }
    t.print();

    // On CPU, compute per batch is ~10x a V100's, so communication hides
    // entirely behind backward and the speedup stays flat in the node
    // count. Re-run the same bucketed-overlap simulation with the paper's
    // compute regime (~100 ms per batch-32 forward+backward on a V100,
    // Goyal et al.-era throughput) to expose the scaling shape.
    println!("\nV100-like compute regime (fwd 30ms / bwd 70ms per batch):");
    let fv100 = Duration::from_millis(30);
    let bv100 = Duration::from_millis(70);
    let fp100 = Duration::from_secs_f64(fv100.as_secs_f64() * mac_ratio);
    let bp100 = Duration::from_secs_f64(bv100.as_secs_f64() * mac_ratio);
    let mut t =
        Table::new(vec!["nodes", "vanilla s/epoch", "pufferfish s/epoch", "speedup", "paper"]);
    for nodes in [2usize, 4, 8, 16] {
        let profile = ClusterProfile::p3_like(nodes);
        let sv = simulate_step(fv100, bv100, &vanilla_layers, DEFAULT_BUCKET_BYTES, &profile);
        let sp = simulate_step(fp100, bp100, &puffer_layers, DEFAULT_BUCKET_BYTES, &profile);
        let ev = sv.total.as_secs_f64() * steps_per_epoch as f64;
        let ep = sp.total.as_secs_f64() * steps_per_epoch as f64;
        t.row(vec![
            nodes.to_string(),
            format!("{ev:.2}"),
            format!("{ep:.2}"),
            format!("{:.2}x", ev / ep),
            if nodes == 16 { "1.52x".into() } else { String::new() },
        ]);
        record_result(
            "fig4c_ddp",
            &format!("v100-like nodes={nodes} vanilla={ev:.3} pufferfish={ep:.3}"),
        );
    }
    t.print();

    // End-to-end convergence at 8 nodes: real training of both models on
    // the threaded data-parallel trainer.
    println!("\nend-to-end convergence check (8 worker threads, real gradients):");
    let epochs = scale.pick(1, 2);
    let mut comp = puffer_compress::none::NoCompression::new();
    let batches: Vec<_> = (0..epochs).flat_map(|e| data.train_batches(32, e as u64)).collect();
    let cfg = puffer_dist::trainer::DistConfig::p3(8, 0.02);
    let out = puffer_dist::trainer::train_data_parallel(
        |_| setups::resnet50(classes, 9),
        &batches,
        &mut comp,
        &cfg,
    )
    .expect("ddp run");
    let early: f32 =
        out.step_losses.iter().take(3).sum::<f32>() / out.step_losses.len().clamp(1, 3) as f32;
    let late_n = out.step_losses.len().clamp(1, 3);
    let late: f32 = out.step_losses.iter().rev().take(late_n).sum::<f32>() / late_n as f32;
    println!(
        "vanilla DDP loss (3-step means): {early:.3} -> {late:.3} over {} steps",
        out.step_losses.len()
    );
    record_result("fig4c_ddp", &format!("ddp-8node loss {early:.3} -> {late:.3}"));
}
