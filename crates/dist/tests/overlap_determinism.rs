//! Satellite guarantee: the bucketed comm/compute-overlap path changes
//! *scheduling and pricing only*. Final parameters are bitwise identical
//! to the synchronous one-flat-bucket run at every bucket size and worker
//! count, under every collective algorithm, and under fault injection
//! (straggler sleeps, dropped bucket messages, wire corruption).
//!
//! The model here is deliberately large (~2 MiB of gradients) so a 1 MiB
//! bucket target genuinely splits it into several buckets while 4 MiB
//! collapses back to one — both must match the `usize::MAX` flat run.

use puffer_compress::none::NoCompression;
use puffer_dist::cost::{ClusterProfile, CollectiveAlgo};
use puffer_dist::fault::FaultPlan;
use puffer_dist::trainer::{train_data_parallel_with, DistConfig, RecoveryPolicy, RunOptions};
use puffer_nn::activation::Relu;
use puffer_nn::linear::Linear;
use puffer_nn::Sequential;
use puffer_tensor::Tensor;
use std::time::Duration;

const MIB: usize = 1 << 20;

/// ~532k parameters (~2.03 MiB): a 1 MiB bucket target yields ≥2 buckets.
fn big_mlp(seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::new(6, 512, true, seed).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(512, 1024, true, seed + 1).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(1024, 3, true, seed + 2).unwrap()),
    ])
}

fn batches(n: usize, rows: usize) -> Vec<(Tensor, Vec<usize>)> {
    (0..n)
        .map(|b| {
            let x = Tensor::randn(&[rows, 6], 1.0, 900 + b as u64);
            let labels = (0..rows).map(|i| (i + b) % 3).collect();
            (x, labels)
        })
        .collect()
}

fn cfg(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        profile: ClusterProfile::p3_like(workers),
    }
}

/// Fast-failing recovery so timeout paths resolve in milliseconds.
fn quick_recovery() -> RecoveryPolicy {
    RecoveryPolicy { step_timeout: Duration::from_millis(80), max_retries: 2, backoff: 2.0 }
}

fn run(
    workers: usize,
    bucket_bytes: usize,
    collective: CollectiveAlgo,
    faults: FaultPlan,
) -> Vec<Tensor> {
    let opts = RunOptions {
        bucket_bytes: Some(bucket_bytes),
        collective: Some(collective),
        faults,
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let out =
        train_data_parallel_with(|_| big_mlp(31), &batches(2, 8), &mut comp, &cfg(workers), &opts)
            .expect("run must degrade gracefully, not fail");
    out.final_params
}

#[test]
fn clean_runs_are_bitwise_identical_across_bucket_sizes_and_workers() {
    for workers in [1usize, 2, 4] {
        let flat = run(workers, usize::MAX, CollectiveAlgo::Ring, FaultPlan::none());
        for bucket_bytes in [MIB, 4 * MIB] {
            let bucketed = run(workers, bucket_bytes, CollectiveAlgo::Ring, FaultPlan::none());
            assert_eq!(
                bucketed, flat,
                "workers={workers} bucket_bytes={bucket_bytes} diverged from the flat run"
            );
        }
    }
}

#[test]
fn collective_algorithm_only_reprices_never_rewrites() {
    let flat = run(2, usize::MAX, CollectiveAlgo::Ring, FaultPlan::none());
    for algo in [
        CollectiveAlgo::Tree,
        CollectiveAlgo::Hierarchical { group: 0 },
        CollectiveAlgo::Hierarchical { group: 2 },
    ] {
        let out = run(2, MIB, algo, FaultPlan::none());
        assert_eq!(out, flat, "algo {algo:?} must be bitwise identical to the ring flat run");
    }
}

#[test]
fn straggler_keeps_bucketed_run_bitwise_identical() {
    // A 3× straggler shifts every bucket's wire time but no arithmetic.
    let plan = || FaultPlan::new(23).with_slowdown(1, 3.0);
    let flat = run(2, usize::MAX, CollectiveAlgo::Ring, plan());
    let bucketed = run(2, MIB, CollectiveAlgo::Ring, plan());
    assert_eq!(bucketed, flat);
}

#[test]
fn dropped_bucket_messages_recover_to_the_same_parameters() {
    // `with_drop` swallows each message's first send attempt at step 1 —
    // on the bucketed path that is a drop of every bucket mid-stream, each
    // recovered by its own retry. The aggregate must be unchanged.
    let plan = || FaultPlan::new(13).with_drop(1, 1);
    let flat = run(2, usize::MAX, CollectiveAlgo::Ring, plan());
    let bucketed = run(2, MIB, CollectiveAlgo::Ring, plan());
    assert_eq!(bucketed, flat);
}

#[test]
fn corrupted_bucket_rejects_the_whole_contribution_once() {
    // One seeded bit flip lands in exactly one bucket; its checksum fails
    // and the sender's whole step-1 contribution is rejected — the same
    // verdict the flat path reaches when its single message is corrupted.
    let plan = || FaultPlan::new(19).with_corrupt(1, 1);
    let opts = |bucket_bytes: usize| RunOptions {
        bucket_bytes: Some(bucket_bytes),
        collective: Some(CollectiveAlgo::Ring),
        faults: plan(),
        recovery: quick_recovery(),
        ..RunOptions::default()
    };
    let mut comp = NoCompression::new();
    let flat = train_data_parallel_with(
        |_| big_mlp(31),
        &batches(2, 8),
        &mut comp,
        &cfg(2),
        &opts(usize::MAX),
    )
    .unwrap();
    let mut comp = NoCompression::new();
    let bucketed =
        train_data_parallel_with(|_| big_mlp(31), &batches(2, 8), &mut comp, &cfg(2), &opts(MIB))
            .unwrap();
    assert_eq!(flat.faults.corrupted_messages, 1);
    assert_eq!(
        bucketed.faults.corrupted_messages, 1,
        "one flipped bit must reject one contribution exactly once, not once per bucket"
    );
    assert_eq!(bucketed.final_params, flat.final_params);
}
